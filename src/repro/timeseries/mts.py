"""Container for sensor-based multivariate time series (MTS).

The paper (Section III-A) represents an MTS ``T`` with ``n`` sensors as an
``n x |T|`` matrix: one row per sensor, one column per time point.  This
module provides :class:`MultivariateTimeSeries`, a thin validated wrapper
around that matrix that the rest of the library builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class MultivariateTimeSeries:
    """An ``n``-sensor multivariate time series stored as an ``(n, T)`` matrix.

    Parameters
    ----------
    values:
        Array of shape ``(n_sensors, length)``.  Rows are sensors, columns are
        time points, matching the paper's ``T = (s_1, ..., s_n)^T`` layout.
    sensor_names:
        Optional human-readable names, one per sensor.  Defaults to
        ``sensor_0 .. sensor_{n-1}``.
    allow_missing:
        When True, NaN entries are accepted and mean "no reading from this
        sensor at this time point" (dropped packets, dead sensors).  The
        default rejects any non-finite value, matching the paper's clean-feed
        assumption.  Infinities are invalid either way — they are corrupt
        readings, not absent ones.

    Notes
    -----
    The container is immutable by convention: ``values`` is stored with the
    writeable flag cleared so accidental in-place edits raise instead of
    silently corrupting shared data.
    """

    values: np.ndarray
    sensor_names: tuple[str, ...] = field(default=())
    allow_missing: bool = False

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(
                f"MTS values must be 2-D (n_sensors, length), got shape {values.shape}"
            )
        if values.shape[0] == 0 or values.shape[1] == 0:
            raise ValueError(f"MTS must be non-empty, got shape {values.shape}")
        if self.allow_missing:
            if np.isinf(values).any():
                raise ValueError("MTS values must not contain inf (NaN marks missing)")
        elif not np.isfinite(values).all():
            raise ValueError(
                "MTS values must be finite (no NaN/inf); "
                "pass allow_missing=True to accept NaN as a missing reading"
            )
        values = values.copy()
        values.setflags(write=False)
        object.__setattr__(self, "values", values)

        names = self.sensor_names
        if not names:
            names = tuple(f"sensor_{i}" for i in range(values.shape[0]))
        else:
            names = tuple(str(name) for name in names)
            if len(names) != values.shape[0]:
                raise ValueError(
                    f"got {len(names)} sensor names for {values.shape[0]} sensors"
                )
            if len(set(names)) != len(names):
                raise ValueError("sensor names must be unique")
        object.__setattr__(self, "sensor_names", names)

    @property
    def n_sensors(self) -> int:
        """Number of sensors ``n`` (rows)."""
        return self.values.shape[0]

    @property
    def length(self) -> int:
        """Number of time points ``|T|`` (columns)."""
        return self.values.shape[1]

    def __len__(self) -> int:
        return self.length

    def missing_mask(self) -> np.ndarray:
        """Boolean ``(n, T)`` mask: True where a reading is missing (NaN)."""
        return np.isnan(self.values)

    def missing_fraction(self) -> float:
        """Fraction of all readings that are missing (0.0 for a clean MTS)."""
        if not self.allow_missing:
            return 0.0
        return float(np.isnan(self.values).mean())

    def sensor(self, index: int) -> np.ndarray:
        """Return the (read-only) time series of one sensor."""
        return self.values[index]

    def sensor_index(self, name: str) -> int:
        """Return the row index of the sensor called ``name``."""
        try:
            return self.sensor_names.index(name)
        except ValueError:
            raise KeyError(f"unknown sensor name: {name!r}") from None

    def slice_time(self, start: int, stop: int) -> "MultivariateTimeSeries":
        """Return the sub-series covering time points ``[start, stop)``.

        ``start``/``stop`` follow normal Python slicing, except that an empty
        result is an error: a window of zero time points is never meaningful.
        """
        if not 0 <= start < stop <= self.length:
            raise ValueError(
                f"invalid time slice [{start}, {stop}) for length {self.length}"
            )
        return MultivariateTimeSeries(
            self.values[:, start:stop], self.sensor_names, self.allow_missing
        )

    def select_sensors(self, indices: Sequence[int]) -> "MultivariateTimeSeries":
        """Return the sub-series containing only the given sensor rows."""
        indices = list(indices)
        if not indices:
            raise ValueError("select_sensors needs at least one sensor index")
        names = tuple(self.sensor_names[i] for i in indices)
        return MultivariateTimeSeries(self.values[indices, :], names, self.allow_missing)

    def iter_sensors(self) -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(name, series)`` pairs, one per sensor."""
        for name, row in zip(self.sensor_names, self.values):
            yield name, row

    def concat(self, other: "MultivariateTimeSeries") -> "MultivariateTimeSeries":
        """Append ``other`` after this series along the time axis.

        Both series must have the same sensors in the same order.  Used to
        stitch a historical (warm-up) segment onto a live segment.
        """
        if other.sensor_names != self.sensor_names:
            raise ValueError("cannot concat MTS with different sensors")
        return MultivariateTimeSeries(
            np.hstack([self.values, other.values]),
            self.sensor_names,
            self.allow_missing or other.allow_missing,
        )

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[float]],
        sensor_names: Sequence[str] | None = None,
        allow_missing: bool = False,
    ) -> "MultivariateTimeSeries":
        """Build an MTS from a sequence of per-sensor rows."""
        return cls(np.asarray(rows, dtype=np.float64), tuple(sensor_names or ()), allow_missing)
