"""Per-sensor scaling utilities.

The baselines (LOF/ECOD/IForest/USAD/RCoders) and the univariate methods all
assume comparably-scaled inputs; CAD itself is scale-invariant because
Pearson correlation already removes per-sensor offset and scale.  Scalers
are fitted on one segment (training / history) and applied to another so no
test-time information leaks into the fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StandardScaler:
    """Per-row z-score scaler fitted on an ``(n, T)`` matrix."""

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, values: np.ndarray) -> "StandardScaler":
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"expected (n, T) matrix, got shape {values.shape}")
        mean = values.mean(axis=1)
        std = values.std(axis=1)
        std = np.where(std <= 1e-12, 1.0, std)
        return cls(mean=mean, std=std)

    def transform(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] != self.mean.shape[0]:
            raise ValueError(
                f"scaler fitted on {self.mean.shape[0]} sensors, got {values.shape[0]}"
            )
        return (values - self.mean[:, None]) / self.std[:, None]

    @classmethod
    def fit_transform(cls, values: np.ndarray) -> np.ndarray:
        return cls.fit(values).transform(values)


@dataclass(frozen=True)
class MinMaxScaler:
    """Per-row min-max scaler mapping the fitted range to [0, 1]."""

    low: np.ndarray
    span: np.ndarray

    @classmethod
    def fit(cls, values: np.ndarray) -> "MinMaxScaler":
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"expected (n, T) matrix, got shape {values.shape}")
        low = values.min(axis=1)
        span = values.max(axis=1) - low
        span = np.where(span <= 1e-12, 1.0, span)
        return cls(low=low, span=span)

    def transform(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] != self.low.shape[0]:
            raise ValueError(
                f"scaler fitted on {self.low.shape[0]} sensors, got {values.shape[0]}"
            )
        return (values - self.low[:, None]) / self.span[:, None]

    @classmethod
    def fit_transform(cls, values: np.ndarray) -> np.ndarray:
        return cls.fit(values).transform(values)


def zscore(series: np.ndarray) -> np.ndarray:
    """Z-normalise a 1-D series; a constant series maps to all zeros."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("zscore expects a 1-D series")
    std = series.std()
    if std <= 1e-12:
        return np.zeros_like(series)
    return (series - series.mean()) / std


def minmax_unit(scores: np.ndarray) -> np.ndarray:
    """Rescale an arbitrary score vector into [0, 1].

    Used to put every method's anomaly scores on the common scale the
    threshold grid search (paper Section VI-A) expects.  A constant score
    vector maps to all zeros ("nothing stands out").
    """
    scores = np.asarray(scores, dtype=np.float64)
    low = scores.min()
    span = scores.max() - low
    if span <= 1e-12:
        return np.zeros_like(scores)
    return (scores - low) / span
