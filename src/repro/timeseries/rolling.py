"""Incremental rolling Pearson correlation across overlapping windows.

Consecutive CAD rounds share ``window - step`` columns, yet the seed
pipeline recomputes the full Pearson matrix from scratch every round at
O(n^2 * w).  :class:`RollingCorrelation` instead maintains per-sensor sums
and the pairwise cross-product matrix of the current window, and advances
them with rank-``step`` BLAS updates (``added @ added.T`` minus
``evicted @ evicted.T``) at O(n^2 * s) per round.

Numerical safety:

* Sums are kept relative to a per-sensor *baseline* (the window means
  captured at the last exact refresh), so the accumulated cross products
  stay well-conditioned even when raw readings sit far from zero.
* Every ``refresh_every``-th round the matrix is recomputed exactly with
  :func:`repro.timeseries.pearson_matrix`, bounding floating-point drift.
  The refresh is anchored to the *absolute* round counter
  (``round % refresh_every == 0``), never to "rounds since last refresh" —
  this is what lets the parallel offline pipeline chop a detection run
  into refresh-aligned chunks whose per-chunk kernels reproduce the
  sequential kernel's float state bit for bit.
* A window containing non-finite readings falls back to
  :func:`repro.timeseries.pearson_matrix_masked` (the degraded-data path)
  and marks the kernel dirty; the next clean round triggers an exact
  refresh instead of updating from poisoned sums.
* If a window does not actually overlap the previous one as promised
  (``prev[:, step:] != window[:, :w - step]``), the kernel notices and
  refreshes exactly, so arbitrary ``update`` calls are always correct —
  just slower than the steady-state incremental path.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .correlation import pearson_matrix_masked


class RollingCorrelation:
    """Rolling Pearson-matrix kernel for overlapping ``(n, w)`` windows.

    Parameters
    ----------
    n_sensors:
        Number of rows of every window.
    window:
        Window length ``w`` (columns per window).
    step:
        Stride between consecutive windows.  ``step >= window`` disables
        the incremental path entirely (windows share no columns).
    refresh_every:
        Exact-recompute cadence in rounds; 1 means "always exact".
    min_overlap:
        Forwarded to :func:`pearson_matrix_masked` on degraded rounds.
    """

    __slots__ = (
        "n_sensors",
        "window",
        "step",
        "refresh_every",
        "min_overlap",
        "_baseline",
        "_sums",
        "_cross",
        "_prev",
        "_round",
        "_dirty",
    )

    def __init__(
        self,
        n_sensors: int,
        window: int,
        step: int,
        refresh_every: int = 64,
        min_overlap: int = 2,
    ) -> None:
        if n_sensors < 1:
            raise ValueError(f"need at least 1 sensor, got {n_sensors}")
        if window < 2:
            raise ValueError(f"window length must be >= 2, got {window}")
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {refresh_every}")
        self.n_sensors = n_sensors
        self.window = window
        self.step = step
        self.refresh_every = refresh_every
        self.min_overlap = min_overlap
        self._baseline: np.ndarray | None = None
        self._sums: np.ndarray | None = None
        self._cross: np.ndarray | None = None
        self._prev: np.ndarray | None = None
        self._round = 0
        self._dirty = False

    @property
    def rounds_seen(self) -> int:
        """Number of ``update`` calls since construction or :meth:`reset`."""
        return self._round

    @property
    def next_update_is_anchor(self) -> bool:
        """True when the *next* :meth:`update` falls on an exact-refresh round.

        The delta TSG builder aligns its full re-ranks to this schedule.
        Note it is a statement about the refresh *cadence* only — a dirty
        or non-overlapping window can force an exact refresh on any round —
        but cadence is all the delta engine needs: anchors guarantee a
        from-scratch re-rank at least every ``refresh_every`` rounds, and
        the separation certificate keeps off-anchor rounds exact on its
        own.  (No per-row "changed correlation" bound is exported from the
        rank-2 update: the normalisation couples every entry of the matrix
        to the evicted/added columns, so any such bound would be all-rows
        almost every round.)
        """
        return self._round % self.refresh_every == 0

    def reset(self) -> None:
        """Forget all state; the next update behaves like round 0."""
        self._baseline = None
        self._sums = None
        self._cross = None
        self._prev = None
        self._round = 0
        self._dirty = False

    def seek(self, round_index: int) -> None:
        """Position a *fresh* kernel at an absolute round index.

        Parallel offline detection starts one kernel per chunk; a chunk
        whose first round is an exact-refresh anchor needs no history, only
        the right round counter so later anchors line up.  Seeking a kernel
        that has already seen data would silently desynchronise the refresh
        schedule, so it is rejected.
        """
        if self._round != 0 or self._prev is not None:
            raise ValueError("seek is only valid on a fresh kernel")
        if round_index < 0:
            raise ValueError(f"round index must be >= 0, got {round_index}")
        self._round = int(round_index)

    def update(self, window: np.ndarray, *, assume_finite: bool = False) -> np.ndarray:
        """Correlation matrix of ``window``, advanced incrementally.

        Equivalent to ``pearson_matrix(window)`` within ~1e-9 on finite
        data and *exactly* equal on refresh rounds; degraded windows take
        the masked path like the sequential detector does.

        ``assume_finite=True`` skips the O(n*w) finiteness sweep — pass it
        only when the caller has already validated the window (the
        detector pipeline checks finiteness before the kernel runs).
        """
        window = np.asarray(window, dtype=np.float64)
        if window.shape != (self.n_sensors, self.window):
            raise ValueError(
                f"expected window of shape ({self.n_sensors}, {self.window}), "
                f"got {window.shape}"
            )

        if not assume_finite and not np.isfinite(window).all():
            # Degraded round: the masked estimator handles missing data;
            # the running sums would be poisoned, so skip them and force
            # an exact rebuild on the next clean round.
            corr = pearson_matrix_masked(window, self.min_overlap)
            self._dirty = True
            self._prev = window
            self._round += 1
            return corr

        if self._needs_refresh(window):
            corr = self._refresh(window)
        else:
            corr = self._advance(window)
        # Kept by reference, not copied: an O(n*w) copy per round would
        # rival the rank-s update itself.  Callers must not mutate a window
        # after passing it in (the detector pipeline never does).
        self._prev = window
        self._round += 1
        return corr

    # ------------------------------------------------------------------
    # internals

    def _needs_refresh(self, window: np.ndarray) -> bool:
        if self._round % self.refresh_every == 0:
            return True  # anchor refresh — keeps parallel chunks aligned
        if self._dirty or self._prev is None or self.step >= self.window:
            return True
        # A dirty flag covers every non-finite previous window, so a clean
        # (not dirty) prev is finite by construction — no per-round
        # isfinite sweep needed here.
        shared = self.window - self.step
        prev_tail = self._prev[:, self.step :]
        head = window[:, :shared]
        if self._same_memory(prev_tail, head):
            # Consecutive windows sliced from one base array: the overlap
            # comparison would compare a memory region with itself, so the
            # O(n*w) check collapses to this O(1) identity test.
            return False
        return not np.array_equal(prev_tail, head)

    @staticmethod
    def _same_memory(a: np.ndarray, b: np.ndarray) -> bool:
        return (
            a.__array_interface__["data"][0] == b.__array_interface__["data"][0]
            and a.strides == b.strides
            and a.shape == b.shape
        )

    def _refresh(self, window: np.ndarray) -> np.ndarray:
        # Inlined replica of pearson_matrix (bit-identical arithmetic, so
        # refresh rounds stay *exactly* equal to the from-scratch path) —
        # inlined because the O(n^2 * w) unit @ unit.T product then doubles
        # as the source of the cross-product accumulator: cross is rebuilt
        # as corr * outer(norms, norms) in O(n^2) instead of paying a
        # second shifted @ shifted.T GEMM.
        baseline = window.mean(axis=1)
        centered = window - baseline[:, None]
        norms = np.sqrt((centered * centered).sum(axis=1))
        constant = norms <= 1e-12
        safe_norms = np.where(constant, 1.0, norms)
        unit = centered / safe_norms[:, None]
        corr = unit @ unit.T
        np.clip(corr, -1.0, 1.0, out=corr)
        np.fill_diagonal(corr, 1.0)
        if constant.any():
            corr[constant, :] = 0.0
            corr[:, constant] = 0.0

        # The rebuilt cross differs from an exact shifted @ shifted.T by
        # ~1 ulp (normalise-then-multiply vs multiply-then-normalise, plus
        # the clip/diagonal pinning) — far inside the kernel's 1e-9
        # equivalence budget, and the next anchor wipes it anyway.
        self._baseline = baseline
        self._sums = centered.sum(axis=1)
        self._cross = corr * np.outer(safe_norms, safe_norms)
        self._dirty = False
        return corr

    def _advance(self, window: np.ndarray) -> np.ndarray:
        assert self._prev is not None and self._baseline is not None
        step = self.step
        # One rank-2s GEMM instead of two rank-s ones: stack the added and
        # evicted columns, negate the evicted side of the left factor, and
        # the product is added@added.T - evicted@evicted.T in a single pass.
        right = np.empty((self.n_sensors, 2 * step))
        right[:, :step] = window[:, self.window - step :]
        right[:, :step] -= self._baseline[:, None]
        right[:, step:] = self._prev[:, :step]
        right[:, step:] -= self._baseline[:, None]
        left = right.copy()
        left[:, step:] *= -1.0
        self._sums += right[:, :step].sum(axis=1)
        self._sums -= right[:, step:].sum(axis=1)
        self._cross += left @ right.T
        return self._corr_from_sums()

    def _corr_from_sums(self) -> np.ndarray:
        assert self._sums is not None and self._cross is not None
        w = float(self.window)
        # cov[i, j] = sum_t (x_i(t) - mean_i)(x_j(t) - mean_j); the baseline
        # shift cancels out of the algebra but keeps the sums small.
        corr = np.outer(self._sums, self._sums / -w)
        corr += self._cross
        var = np.clip(np.diag(corr), 0.0, None).copy()
        norms = np.sqrt(var)
        constant = norms <= 1e-12
        inv_norms = 1.0 / np.where(constant, 1.0, norms)
        corr *= inv_norms[:, None]
        corr *= inv_norms[None, :]
        np.clip(corr, -1.0, 1.0, out=corr)
        np.fill_diagonal(corr, 1.0)
        if constant.any():
            corr[constant, :] = 0.0
            corr[:, constant] = 0.0
        return corr

    # ------------------------------------------------------------------
    # checkpoint support

    def to_state(self) -> dict[str, Any]:
        """Serializable snapshot (plain floats / lists, no pickle needed)."""
        return {
            "n_sensors": self.n_sensors,
            "window": self.window,
            "step": self.step,
            "refresh_every": self.refresh_every,
            "min_overlap": self.min_overlap,
            "round": self._round,
            "dirty": self._dirty,
            "baseline": None if self._baseline is None else self._baseline.tolist(),
            "sums": None if self._sums is None else self._sums.tolist(),
            "cross": None if self._cross is None else self._cross.tolist(),
            "prev": None if self._prev is None else self._prev.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "RollingCorrelation":
        kernel = cls(
            n_sensors=int(state["n_sensors"]),
            window=int(state["window"]),
            step=int(state["step"]),
            refresh_every=int(state["refresh_every"]),
            min_overlap=int(state["min_overlap"]),
        )
        kernel._round = int(state["round"])
        kernel._dirty = bool(state["dirty"])
        for name in ("baseline", "sums", "cross", "prev"):
            value = state.get(name)
            setattr(
                kernel,
                f"_{name}",
                None if value is None else np.asarray(value, dtype=np.float64),
            )
        return kernel
