"""Time-series substrate: MTS container, windowing, correlation, scaling."""

from .correlation import (
    autocorrelation,
    pearson,
    pearson_matrix,
    pearson_matrix_masked,
    top_k_neighbors,
)
from .mts import MultivariateTimeSeries
from .normalization import MinMaxScaler, StandardScaler, minmax_unit, zscore
from .rolling import RollingCorrelation
from .periodicity import estimate_mts_period, estimate_period
from .windows import WindowSpec, iter_windows, window_matrix

__all__ = [
    "MultivariateTimeSeries",
    "WindowSpec",
    "iter_windows",
    "window_matrix",
    "pearson",
    "pearson_matrix",
    "pearson_matrix_masked",
    "top_k_neighbors",
    "RollingCorrelation",
    "autocorrelation",
    "StandardScaler",
    "MinMaxScaler",
    "zscore",
    "minmax_unit",
    "estimate_period",
    "estimate_mts_period",
]
