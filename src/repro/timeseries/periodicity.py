"""Dominant period estimation from the autocorrelation function.

The paper's experimental setup (Section VI-A) sets the pattern length of
SAND/SAND*/NormA "based on the autocorrelation function"; this module
provides that estimator.
"""

from __future__ import annotations

import numpy as np

from .correlation import autocorrelation


def estimate_period(
    series: np.ndarray,
    min_period: int = 4,
    max_period: int | None = None,
    default: int = 32,
) -> int:
    """Estimate the dominant period of a 1-D series.

    The estimate is the lag of the highest autocorrelation peak (a local
    maximum that is also positive) in ``[min_period, max_period]``.  When no
    such peak exists — white noise, trends, constant series — ``default`` is
    returned so callers always get a usable pattern length.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("estimate_period expects a 1-D series")
    t = series.size
    if max_period is None:
        max_period = max(min_period, t // 4)
    max_period = min(max_period, t - 2)
    if max_period < min_period or t < 3:
        return default

    acf = autocorrelation(series, max_lag=max_period + 1)
    best_lag = 0
    best_value = 0.0
    for lag in range(min_period, max_period + 1):
        value = acf[lag]
        if value <= 0:
            continue
        if acf[lag - 1] < value and value >= acf[lag + 1] and value > best_value:
            best_lag = lag
            best_value = value
    return best_lag if best_lag else default


def estimate_mts_period(
    values: np.ndarray,
    min_period: int = 4,
    max_period: int | None = None,
    default: int = 32,
) -> int:
    """Median per-sensor period of an ``(n, T)`` matrix.

    Gives a single pattern length to share across sensors when running a
    univariate method per sensor, which is how the paper extends UTS methods
    to the MTS setting.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"expected (n, T) matrix, got shape {values.shape}")
    periods = [
        estimate_period(row, min_period=min_period, max_period=max_period, default=default)
        for row in values
    ]
    return int(np.median(periods))
