"""Pearson correlation between sensor time series (paper Section III-B).

TSG edges carry the Pearson correlation of two sensors' readings inside one
window.  Constant sensors (zero variance within the window) have an undefined
correlation; the paper's graphs simply never gain strong edges for them, so
we define their correlation with everything as 0 rather than NaN.
"""

from __future__ import annotations

import numpy as np


def pearson_matrix(window: np.ndarray) -> np.ndarray:
    """Pairwise Pearson correlations of the rows of an ``(n, w)`` window.

    Returns an ``(n, n)`` symmetric matrix with unit diagonal (except for
    constant rows, whose whole row/column — including the diagonal — is 0,
    signalling "no usable correlation information").

    This is a vectorised re-implementation of :func:`numpy.corrcoef` with the
    constant-row behaviour pinned down, because TSG construction depends on
    it: a sensor that flat-lines must not keep phantom strong edges.
    """
    window = np.asarray(window, dtype=np.float64)
    if window.ndim != 2:
        raise ValueError(f"window must be 2-D, got shape {window.shape}")
    n, w = window.shape
    if w < 2:
        raise ValueError(f"window length must be >= 2 to correlate, got {w}")

    centered = window - window.mean(axis=1, keepdims=True)
    norms = np.sqrt((centered * centered).sum(axis=1))
    constant = norms <= 1e-12

    safe_norms = np.where(constant, 1.0, norms)
    unit = centered / safe_norms[:, None]
    corr = unit @ unit.T
    # Clamp numerical overshoot so downstream thresholds behave.
    np.clip(corr, -1.0, 1.0, out=corr)
    np.fill_diagonal(corr, 1.0)

    if constant.any():
        corr[constant, :] = 0.0
        corr[:, constant] = 0.0
    return corr


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation of two 1-D series (0.0 if either is constant)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("pearson expects two 1-D arrays of equal length")
    if x.size < 2:
        raise ValueError("need at least 2 points to correlate")
    xc = x - x.mean()
    yc = y - y.mean()
    nx = np.sqrt((xc * xc).sum())
    ny = np.sqrt((yc * yc).sum())
    if nx <= 1e-12 or ny <= 1e-12:
        return 0.0
    return float(np.clip((xc @ yc) / (nx * ny), -1.0, 1.0))


def top_k_neighbors(corr: np.ndarray, k: int) -> np.ndarray:
    """Indices of each row's ``k`` most-correlated *other* rows.

    Neighbours are ranked by absolute correlation, matching the paper's
    pruning rule ``|w(e)| < tau`` which treats strong negative correlation as
    informative structure too.

    Returns an ``(n, k)`` integer array.  ``k`` must be < ``n``.
    """
    corr = np.asarray(corr, dtype=np.float64)
    n = corr.shape[0]
    if corr.shape != (n, n):
        raise ValueError(f"corr must be square, got shape {corr.shape}")
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, n), got k={k} n={n}")

    strength = np.abs(corr).copy()
    np.fill_diagonal(strength, -np.inf)
    # argpartition gives the top-k set in O(n); sort within it for
    # deterministic ordering (strongest first, ties by index).
    part = np.argpartition(-strength, kth=k - 1, axis=1)[:, :k]
    row_idx = np.arange(n)[:, None]
    order = np.lexsort((part, -strength[row_idx, part]), axis=1)
    return part[row_idx, order]


def autocorrelation(series: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Sample autocorrelation function of a 1-D series up to ``max_lag``.

    Computed via FFT in O(T log T).  Index ``l`` of the result is the
    autocorrelation at lag ``l``; index 0 is always 1 (or 0 for a constant
    series).
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("autocorrelation expects a 1-D series")
    t = series.size
    if t < 2:
        raise ValueError("need at least 2 points")
    if max_lag is None:
        max_lag = t - 1
    max_lag = min(max_lag, t - 1)

    centered = series - series.mean()
    var = centered @ centered
    if var <= 1e-12:
        return np.zeros(max_lag + 1)
    size = 1 << int(np.ceil(np.log2(2 * t)))
    spectrum = np.fft.rfft(centered, size)
    acov = np.fft.irfft(spectrum * np.conjugate(spectrum), size)[: max_lag + 1]
    return acov / var
