"""Pearson correlation between sensor time series (paper Section III-B).

TSG edges carry the Pearson correlation of two sensors' readings inside one
window.  Constant sensors (zero variance within the window) have an undefined
correlation; the paper's graphs simply never gain strong edges for them, so
we define their correlation with everything as 0 rather than NaN.
"""

from __future__ import annotations

import numpy as np


def pearson_matrix(window: np.ndarray) -> np.ndarray:
    """Pairwise Pearson correlations of the rows of an ``(n, w)`` window.

    Returns an ``(n, n)`` symmetric matrix with unit diagonal (except for
    constant rows, whose whole row/column — including the diagonal — is 0,
    signalling "no usable correlation information").

    This is a vectorised re-implementation of :func:`numpy.corrcoef` with the
    constant-row behaviour pinned down, because TSG construction depends on
    it: a sensor that flat-lines must not keep phantom strong edges.
    """
    window = np.asarray(window, dtype=np.float64)
    if window.ndim != 2:
        raise ValueError(f"window must be 2-D, got shape {window.shape}")
    n, w = window.shape
    if w < 2:
        raise ValueError(f"window length must be >= 2 to correlate, got {w}")

    centered = window - window.mean(axis=1, keepdims=True)
    norms = np.sqrt((centered * centered).sum(axis=1))
    constant = norms <= 1e-12

    safe_norms = np.where(constant, 1.0, norms)
    unit = centered / safe_norms[:, None]
    corr = unit @ unit.T
    # Clamp numerical overshoot so downstream thresholds behave.
    np.clip(corr, -1.0, 1.0, out=corr)
    np.fill_diagonal(corr, 1.0)

    if constant.any():
        corr[constant, :] = 0.0
        corr[:, constant] = 0.0
    return corr


def pearson_matrix_masked(window: np.ndarray, min_overlap: int = 2) -> np.ndarray:
    """NaN-aware :func:`pearson_matrix` over pairwise-complete observations.

    Each pair (i, j) is correlated over the time points where *both* sensors
    have a reading.  A pair with fewer than ``min_overlap`` common points, or
    whose overlap is constant, carries no usable correlation information and
    gets 0 — the same convention :func:`pearson_matrix` uses for constant
    rows.  A sensor with fewer than ``min_overlap`` readings of its own gets
    a fully zeroed row/column (including the diagonal), so it becomes an
    isolated TSG vertex instead of crashing the round.

    A window without any NaN takes the exact :func:`pearson_matrix` code
    path, so clean data produces bit-identical correlations in degraded mode.
    """
    window = np.asarray(window, dtype=np.float64)
    if window.ndim != 2:
        raise ValueError(f"window must be 2-D, got shape {window.shape}")
    if window.shape[1] < 2:
        raise ValueError(f"window length must be >= 2 to correlate, got {window.shape[1]}")
    if min_overlap < 2:
        raise ValueError(f"min_overlap must be >= 2, got {min_overlap}")

    observed = np.isfinite(window)
    if observed.all():
        return pearson_matrix(window)

    # Missing entries contribute 0 to every product below, so plain matrix
    # products accumulate sums over exactly the pairwise-common support.
    x = np.where(observed, window, 0.0)
    m = observed.astype(np.float64)
    n_common = m @ m.T
    sum_x = x @ m.T          # [i, j]: sum of sensor i over the common support
    sum_xx = (x * x) @ m.T
    sum_xy = x @ x.T
    safe_n = np.maximum(n_common, 1.0)
    cov = sum_xy - sum_x * sum_x.T / safe_n
    var = sum_xx - sum_x * sum_x / safe_n  # [i, j]: variance of i on the support
    denom = np.sqrt(np.maximum(var * var.T, 0.0))
    usable = (n_common >= min_overlap) & (denom > 1e-12)
    corr = np.where(usable, cov / np.where(usable, denom, 1.0), 0.0)
    np.clip(corr, -1.0, 1.0, out=corr)

    own_count = np.diag(n_common)
    own_var = np.diag(var)
    dead = (own_count < min_overlap) | (own_var <= 1e-12)
    np.fill_diagonal(corr, 1.0)
    if dead.any():
        corr[dead, :] = 0.0
        corr[:, dead] = 0.0
    return corr


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation of two 1-D series (0.0 if either is constant)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("pearson expects two 1-D arrays of equal length")
    if x.size < 2:
        raise ValueError("need at least 2 points to correlate")
    xc = x - x.mean()
    yc = y - y.mean()
    nx = np.sqrt((xc * xc).sum())
    ny = np.sqrt((yc * yc).sum())
    if nx <= 1e-12 or ny <= 1e-12:
        return 0.0
    return float(np.clip((xc @ yc) / (nx * ny), -1.0, 1.0))


def top_k_neighbors(corr: np.ndarray, k: int, ordered: bool = True) -> np.ndarray:
    """Indices of each row's ``k`` most-correlated *other* rows.

    Neighbours are ranked by absolute correlation, matching the paper's
    pruning rule ``|w(e)| < tau`` which treats strong negative correlation as
    informative structure too.

    Returns an ``(n, k)`` integer array.  ``k`` must be < ``n``.  With
    ``ordered=False`` the within-row sort (strongest first, ties by index)
    is skipped — the *set* per row is identical, in argpartition order;
    callers that only test membership (TSG edge selection) save the
    ranking pass.
    """
    corr = np.asarray(corr, dtype=np.float64)
    n = corr.shape[0]
    if corr.shape != (n, n):
        raise ValueError(f"corr must be square, got shape {corr.shape}")
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, n), got k={k} n={n}")

    strength = np.abs(corr)
    np.fill_diagonal(strength, -np.inf)
    np.negative(strength, out=strength)  # in place: no extra (n, n) temporary
    # argpartition gives the top-k set in O(n).
    part = np.argpartition(strength, kth=k - 1, axis=1)[:, :k]
    if not ordered:
        return part
    row_idx = np.arange(n)[:, None]
    order = np.lexsort((part, strength[row_idx, part]), axis=1)
    return part[row_idx, order]


def autocorrelation(series: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Sample autocorrelation function of a 1-D series up to ``max_lag``.

    Computed via FFT in O(T log T).  Index ``l`` of the result is the
    autocorrelation at lag ``l``; index 0 is always 1 (or 0 for a constant
    series).
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("autocorrelation expects a 1-D series")
    t = series.size
    if t < 2:
        raise ValueError("need at least 2 points")
    if max_lag is None:
        max_lag = t - 1
    max_lag = min(max_lag, t - 1)

    centered = series - series.mean()
    var = centered @ centered
    if var <= 1e-12:
        return np.zeros(max_lag + 1)
    size = 1 << int(np.ceil(np.log2(2 * t)))
    spectrum = np.fft.rfft(centered, size)
    acov = np.fft.irfft(spectrum * np.conjugate(spectrum), size)[: max_lag + 1]
    return acov / var
