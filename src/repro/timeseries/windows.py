"""MTS partitioning into overlapping sliding windows (paper Section III-B).

Given a sliding window ``w`` and step ``s`` (``s < w``), the long MTS ``T`` is
partitioned into ``R = (|T| - w) / s + 1`` overlapping sub-matrices
``T_r = T[1 + (r-1)s : w + (r-1)s]``.  When ``(|T| - w)`` is not divisible by
``s`` the trailing columns are dropped, exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .mts import MultivariateTimeSeries


@dataclass(frozen=True)
class WindowSpec:
    """A validated (window, step) pair.

    Parameters
    ----------
    window:
        Window length ``w`` in time points; must be at least 2 so a Pearson
        correlation is defined inside a window.
    step:
        Step ``s`` between window starts; the paper requires ``s < w`` so
        consecutive windows overlap.
    """

    window: int
    step: int

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")
        if self.step >= self.window:
            raise ValueError(
                f"step must be smaller than window (s < w), got s={self.step} w={self.window}"
            )

    def n_rounds(self, length: int) -> int:
        """Number of rounds ``R`` for a series of the given length.

        Trailing time points that do not fill a whole step are discarded,
        mirroring the paper's trimming rule.
        """
        if length < self.window:
            raise ValueError(
                f"series of length {length} is shorter than window {self.window}"
            )
        return (length - self.window) // self.step + 1

    def round_start(self, round_index: int) -> int:
        """0-based start time point of round ``round_index`` (0-based)."""
        if round_index < 0:
            raise ValueError(f"round index must be >= 0, got {round_index}")
        return round_index * self.step

    def round_span(self, round_index: int) -> tuple[int, int]:
        """Half-open ``[start, stop)`` time-point span of a round's window."""
        start = self.round_start(round_index)
        return start, start + self.window

    def fresh_span(self, round_index: int) -> tuple[int, int]:
        """The span of time points first covered by this round.

        Round 0 introduces the whole window; every later round introduces
        only its trailing ``step`` points.  Useful when converting
        round-level decisions back to point-level labels without repeatedly
        re-marking the overlap.
        """
        start, stop = self.round_span(round_index)
        if round_index == 0:
            return start, stop
        return stop - self.step, stop

    def covering_rounds(self, time_point: int, length: int) -> range:
        """All round indices whose window covers ``time_point``.

        Parameters
        ----------
        time_point:
            0-based time index into the series.
        length:
            Total series length, needed to cap the last round.
        """
        if not 0 <= time_point < length:
            raise ValueError(f"time point {time_point} outside series of length {length}")
        total = self.n_rounds(length)
        # Round r covers [r*s, r*s + w); solve for r.
        low = max(0, -(-(time_point - self.window + 1) // self.step))
        high = min(total - 1, time_point // self.step)
        if high < low:
            return range(0)
        return range(low, high + 1)


def iter_windows(
    series: MultivariateTimeSeries, spec: WindowSpec
) -> Iterator[np.ndarray]:
    """Yield the raw ``(n, w)`` value matrix of each round in order.

    The yielded arrays are read-only views into the underlying series, so
    iterating is O(1) memory per round.
    """
    total = spec.n_rounds(series.length)
    for r in range(total):
        start, stop = spec.round_span(r)
        yield series.values[:, start:stop]


def window_matrix(
    series: MultivariateTimeSeries, spec: WindowSpec, round_index: int
) -> np.ndarray:
    """Return the ``(n, w)`` value matrix of a single round."""
    total = spec.n_rounds(series.length)
    if not 0 <= round_index < total:
        raise ValueError(f"round {round_index} outside [0, {total})")
    start, stop = spec.round_span(round_index)
    return series.values[:, start:stop]
