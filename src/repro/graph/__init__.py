"""Graph substrate: weighted graphs, Louvain, components, k-NN construction."""

from .components import component_labels, connected_components
from .graph import Graph
from .knn import absolute_weight_graph, knn_graph, prune_weak_edges
from .label_propagation import label_propagation
from .louvain import LouvainResult, louvain
from .modularity import modularity

__all__ = [
    "Graph",
    "louvain",
    "label_propagation",
    "LouvainResult",
    "modularity",
    "connected_components",
    "component_labels",
    "knn_graph",
    "prune_weak_edges",
    "absolute_weight_graph",
]
