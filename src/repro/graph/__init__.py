"""Graph substrate: weighted graphs, Louvain, components, k-NN construction."""

from .components import component_labels, connected_components
from .csr import (
    CSRGraph,
    label_propagation_csr,
    louvain_csr,
    modularity_csr,
    tsg_csr,
    tsg_edge_arrays,
)
from .delta import DeltaTSGBuilder
from .graph import Graph
from .knn import absolute_weight_graph, knn_graph, prune_weak_edges
from .label_propagation import label_propagation
from .louvain import LouvainResult, louvain
from .modularity import modularity

__all__ = [
    "Graph",
    "CSRGraph",
    "louvain",
    "louvain_csr",
    "label_propagation",
    "label_propagation_csr",
    "LouvainResult",
    "modularity",
    "modularity_csr",
    "connected_components",
    "component_labels",
    "knn_graph",
    "prune_weak_edges",
    "absolute_weight_graph",
    "tsg_csr",
    "tsg_edge_arrays",
    "DeltaTSGBuilder",
]
