"""Incremental (delta) TSG maintenance between consecutive rounds.

Consecutive CAD rounds share ``window - step`` of their samples, so the
correlation matrix — and with it the k-NN Time-Series Graph — barely moves
round over round.  The seed and fast pipelines still pay a full
``argpartition`` over every row plus a fresh CSR assembly each round.  This
module keeps the previous round's per-row top-k candidate sets and re-derives
only what the new correlation matrix actually invalidates, while staying
**bitwise identical** to :func:`repro.graph.csr.tsg_edge_arrays` on every
round (not just anchors).

The exactness argument, row by row:

* *Separation certificate.*  A cached top-k member set is the unique top-k
  of the new strength row iff the weakest member is **strictly** stronger
  than the strongest non-member.  When that holds, any correct top-k
  algorithm — including the ``argpartition`` the full path runs — must
  return exactly that set, so the cache is the full path's answer without
  running it.  The certificate is a property of the *new* matrix alone, so
  it is valid regardless of how the cache was produced.
* *Row-subset recompute.*  Rows that fail the certificate (including any
  row containing NaN, which fails every strict comparison) are re-ranked
  with ``argpartition`` on exactly the bytes the full path would rank.
  Introselect is row-independent, so a row-subset call returns the same
  per-row picks as the full call.
* *Edge assembly.*  Downstream only consumes the membership *sets*: the
  undirected edge list is the upper triangle of ``members | members.T`` in
  row-major order — the same (lo, hi)-lexicographic order the full path
  gets from ``np.unique`` over pair keys — and each edge keeps the
  correlation of the direction whose pick created it (``corr[lo, hi]``
  when the lower-index side picked the higher, matching the dict path's
  insertion rule), then prunes on ``|weight| < tau``.  The CSR arrays are
  assembled densely (presence-mask scatter, row-major ``np.nonzero``), so
  no per-round lexsort is paid; row-major enumeration of a symmetric mask
  is already in (row, ascending column) order, which is exactly what
  ``CSRGraph.from_edges`` sorts into.

Periodic anchored full rebuilds (driven by the caller, aligned with the
correlation kernel's ``corr_refresh`` anchors) re-rank every row from
scratch.  They are not needed for exactness — the certificate already
guarantees it — but they bound how long any cached row can go unranked and
keep the delta engine's parallel chunking story identical to the fast
engine's: a chunk starting at an anchor needs no carried TSG state.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .csr import CSRGraph

__all__ = ["DeltaTSGBuilder"]


class DeltaTSGBuilder:
    """Round-over-round TSG construction with cached top-k candidate sets.

    One builder instance serves one stream.  Per round, call
    :meth:`build` with the round's correlation matrix; pass ``full=True``
    on anchor rounds (and after degraded rounds, where the caller already
    knows the matrix came from the masked estimator) to force a from-scratch
    re-rank of every row.

    The returned graph carries **absolute** weights — exactly
    ``tsg_csr(corr, k, tau).absolute()`` — because every consumer in the
    round pipeline (Louvain, co-appearance) wants non-negative weights and
    the signed intermediate would be an extra O(E) copy.
    """

    def __init__(self, n_sensors: int, k: int, tau: float) -> None:
        if n_sensors < 2:
            raise ValueError(f"delta TSG needs at least 2 sensors, got {n_sensors}")
        if not 1 <= k < n_sensors:
            raise ValueError(f"k must be in [1, n), got k={k} n={n_sensors}")
        if not 0.0 <= tau <= 1.0:
            raise ValueError(f"tau must be in [0, 1], got {tau}")
        self.n_sensors = n_sensors
        self.k = k
        self.tau = tau
        #: (n, n) bool; ``members[i, j]`` — j is in row i's top-k candidate
        #: set.  Invariant: exactly k True per row (argpartition picks k
        #: distinct columns), which the certificate's reshape relies on.
        self._members: np.ndarray | None = None
        self._triu = np.triu(np.ones((n_sensors, n_sensors), dtype=bool), 1)
        # Per-round scratch buffers, reused to keep the hot path
        # allocation-free.  Stale entries are harmless: every consumer only
        # reads slots the current round just wrote.
        self._strength = np.zeros((n_sensors, n_sensors), dtype=np.float64)
        self._nonmembers = np.zeros((n_sensors, n_sensors), dtype=bool)
        self._union = np.zeros((n_sensors, n_sensors), dtype=bool)
        self._kept_flat = np.zeros(n_sensors * n_sensors, dtype=bool)
        self._weight_flat = np.zeros(n_sensors * n_sensors, dtype=np.float64)
        # Diagnostics (not serialised; reset on restore).
        self.full_rebuilds = 0
        self.rows_recomputed = 0
        self.certified_rounds = 0

    # ------------------------------------------------------------------
    # membership maintenance

    def _rank_rows(self, strength: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Top-k picks for ``rows``, bitwise-equal to the full path's picks.

        Mirrors :func:`repro.timeseries.correlation.top_k_neighbors`
        (``ordered=False``): negate, then ``argpartition(kth=k-1)``.
        Introselect partitions each row independently, so ranking a row
        subset returns the same picks as ranking the whole matrix.
        """
        neg = -strength[rows]
        return np.argpartition(neg, kth=self.k - 1, axis=1)[:, : self.k]

    def _refresh_members(self, strength: np.ndarray) -> None:
        n = self.n_sensors
        picks = self._rank_rows(strength, np.arange(n))
        if self._members is None:
            self._members = np.zeros((n, n), dtype=bool)
        else:
            self._members[:] = False
        self._members[np.arange(n)[:, None], picks] = True
        self.full_rebuilds += 1

    def _patch_members(self, strength: np.ndarray) -> None:
        members = self._members
        assert members is not None
        n = self.n_sensors
        # Separation certificate: the cached set is the unique top-k of the
        # new row iff min(member strength) > max(non-member strength),
        # strictly.  Ties at the boundary — and NaN anywhere in the row —
        # fail the comparison and fall through to an exact re-rank.  The
        # reshape is valid because every row has exactly k members, and
        # boolean indexing enumerates them in row-major order.
        member_min = strength[members].reshape(n, self.k).min(axis=1)
        nonmembers = np.logical_not(members, out=self._nonmembers)
        other_max = strength[nonmembers].reshape(n, n - self.k).max(axis=1)
        stale = np.flatnonzero(~(member_min > other_max))
        if stale.size:
            picks = self._rank_rows(strength, stale)
            members[stale] = False
            members[stale[:, None], picks] = True
            self.rows_recomputed += int(stale.size)
        else:
            self.certified_rounds += 1

    # ------------------------------------------------------------------
    # per-round construction

    def build(self, corr: np.ndarray, *, full: bool = False) -> CSRGraph:
        """The round's TSG, bitwise ``tsg_csr(corr, k, tau).absolute()``.

        ``full=True`` re-ranks every row from scratch (anchor rounds and
        rounds after degraded/masked windows); otherwise cached candidate
        sets are kept wherever the separation certificate holds.
        """
        corr = np.asarray(corr, dtype=np.float64)
        n = self.n_sensors
        if corr.shape != (n, n):
            raise ValueError(f"corr must have shape ({n}, {n}), got {corr.shape}")
        strength = np.abs(corr, out=self._strength)
        np.fill_diagonal(strength, -np.inf)
        if full or self._members is None:
            self._refresh_members(strength)
        else:
            self._patch_members(strength)
        members = self._members
        assert members is not None

        # Undirected edges: upper triangle of the directed-pick union, in
        # row-major (lo, hi) order — the full path's np.unique key order.
        # Everything below works on flat n*n indices: 1-D scatters/gathers
        # and flatnonzero are measurably cheaper than their 2-D fancy-index
        # equivalents at these sizes.
        union = np.logical_or(members, members.T, out=self._union)
        union &= self._triu
        key_fwd = np.flatnonzero(union.reshape(-1))
        rows_e = key_fwd // n
        cols_e = key_fwd - rows_e * n
        key_rev = cols_e * n + rows_e
        corr_flat = corr.reshape(-1) if corr.flags.c_contiguous else corr.ravel()
        forward = members.reshape(-1)[key_fwd]
        weights = np.where(forward, corr_flat[key_fwd], corr_flat[key_rev])
        keep = np.abs(weights) >= self.tau
        rows_k = rows_e[keep]
        cols_k = cols_e[keep]
        kf = key_fwd[keep]
        kr = key_rev[keep]
        w_k = weights[keep]

        # Dense CSR assembly, no sort: scatter the kept edges into a
        # symmetric presence mask; flatnonzero enumerates it row-major,
        # i.e. each row's columns ascending — CSRGraph's layout.  Presence
        # is tracked separately from the weights so tau=0 zero-weight edges
        # survive.
        kept = self._kept_flat
        kept[:] = False
        kept[kf] = True
        kept[kr] = True
        counts = np.bincount(rows_k, minlength=n) + np.bincount(cols_k, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        flat_idx = np.flatnonzero(kept)
        indices = flat_idx % n
        scratch = self._weight_flat
        scratch[kf] = w_k
        scratch[kr] = w_k
        csr_weights = np.abs(scratch[flat_idx])
        return CSRGraph(n, indptr, indices, csr_weights)

    # ------------------------------------------------------------------
    # state round-trip (checkpoints)

    def reset(self) -> None:
        """Forget cached candidate sets; keep configuration and scratch."""
        self._members = None

    def to_state(self) -> dict[str, Any]:
        """Portable state: the candidate-set cache (scratch is rebuilt)."""
        members = None if self._members is None else self._members.copy()
        return {"n_sensors": self.n_sensors, "k": self.k, "tau": self.tau,
                "members": members}

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "DeltaTSGBuilder":
        builder = cls(int(state["n_sensors"]), int(state["k"]), float(state["tau"]))
        members = state.get("members")
        if members is not None:
            members = np.asarray(members, dtype=bool)
            n = builder.n_sensors
            if members.shape != (n, n):
                raise ValueError(
                    f"members must have shape ({n}, {n}), got {members.shape}"
                )
            if not (members.sum(axis=1) == builder.k).all():
                raise ValueError("members must have exactly k entries per row")
            builder._members = members.copy()
        return builder
