"""Weighted undirected graph with a fixed vertex set.

TSGs (paper Section III-B) always share the same vertex set — one vertex per
sensor — while their edge sets change from round to round.  This structure is
therefore built around a fixed ``n`` and an adjacency dictionary per vertex.
Vertices are integers ``0 .. n-1``.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Iterable, Iterator, Mapping


class Graph:
    """Undirected weighted graph on vertices ``0 .. n_vertices - 1``.

    Self-loops are rejected (a sensor's correlation with itself carries no
    information for TSGs).  Adding an edge twice overwrites its weight.
    """

    __slots__ = ("_n", "_adj", "_n_edges", "_total_weight")

    def __init__(self, n_vertices: int) -> None:
        if n_vertices < 1:
            raise ValueError(f"graph needs at least 1 vertex, got {n_vertices}")
        self._n = n_vertices
        self._adj: list[dict[int, float]] = [{} for _ in range(n_vertices)]
        self._n_edges = 0
        self._total_weight = 0.0

    @property
    def n_vertices(self) -> int:
        return self._n

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise ValueError(f"vertex {v} outside [0, {self._n})")

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or overwrite) the undirected edge ``{u, v}``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop on vertex {u} is not allowed")
        weight = float(weight)
        if v not in self._adj[u]:
            self._n_edges += 1
            self._total_weight += weight
        else:
            self._total_weight += weight - self._adj[u][v]
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def remove_edge(self, u: int, v: int) -> None:
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise KeyError(f"no edge between {u} and {v}")
        self._total_weight -= self._adj[u][v]
        del self._adj[u][v]
        del self._adj[v][u]
        self._n_edges -= 1

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        self._check_vertex(u)
        self._check_vertex(v)
        try:
            return self._adj[u][v]
        except KeyError:
            raise KeyError(f"no edge between {u} and {v}") from None

    def neighbors(self, v: int) -> dict[int, float]:
        """``v``'s neighbour -> weight mapping as a fresh dict.

        Returned as a shallow copy so callers cannot corrupt the adjacency.
        Hot loops that only *read* should use :meth:`neighbors_view`, which
        is O(1) instead of O(degree).
        """
        self._check_vertex(v)
        return dict(self._adj[v])

    def neighbors_view(self, v: int) -> Mapping[int, float]:
        """Zero-copy read-only view of ``v``'s neighbour -> weight mapping.

        The view tracks later mutations of the graph; callers that need a
        stable snapshot must use :meth:`neighbors`.  Attempting to assign
        through the view raises ``TypeError``.
        """
        self._check_vertex(v)
        return MappingProxyType(self._adj[v])

    def degree(self, v: int) -> int:
        """Number of incident edges of ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def weighted_degree(self, v: int) -> float:
        """Sum of incident edge weights of ``v``."""
        self._check_vertex(v)
        return sum(self._adj[v].values())

    def total_weight(self) -> float:
        """Sum of all edge weights (each undirected edge counted once).

        Maintained incrementally by :meth:`add_edge` / :meth:`remove_edge`,
        so this is O(1) instead of the O(V + E) recomputation modularity and
        Louvain used to trigger on every call.
        """
        return self._total_weight

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, weight)`` with u < v."""
        for u in range(self._n):
            for v, w in self._adj[u].items():
                if u < v:
                    yield u, v, w

    def edge_set(self) -> set[tuple[int, int]]:
        """The set of undirected edges as ``(min, max)`` pairs."""
        return {(u, v) for u, v, _ in self.edges()}

    def subgraph_vertices(self, vertices: Iterable[int]) -> set[int]:
        """Validate and return a vertex subset as a set."""
        result = set()
        for v in vertices:
            self._check_vertex(v)
            result.add(v)
        return result

    def copy(self) -> "Graph":
        clone = Graph(self._n)
        for u, v, w in self.edges():
            clone.add_edge(u, v, w)
        return clone

    def __repr__(self) -> str:
        return f"Graph(n_vertices={self._n}, n_edges={self._n_edges})"
