"""Louvain community detection (Blondel et al. 2008, paper reference [11]).

This is a from-scratch, fully deterministic implementation: vertices are
visited in index order and modularity-gain ties keep the smallest community
label.  Determinism matters here — the paper's robustness claim
(Table VIII) rests on CAD producing the exact same output on every run.

Weights must be non-negative; modularity is not defined for negative
weights.  CAD feeds Louvain the *absolute* correlations of the TSG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .graph import Graph
from .modularity import modularity


@dataclass(frozen=True)
class LouvainResult:
    """Partition produced by Louvain.

    Attributes
    ----------
    labels:
        Community label per vertex, compacted to ``0 .. n_communities - 1``
        in order of first appearance (so labels are deterministic too).
    n_communities:
        Number of distinct communities.
    modularity:
        Modularity of the final partition on the input graph.
    """

    labels: tuple[int, ...]
    n_communities: int
    modularity: float

    def members(self) -> list[list[int]]:
        """Vertex lists per community, indexed by community label."""
        groups: list[list[int]] = [[] for _ in range(self.n_communities)]
        for vertex, label in enumerate(self.labels):
            groups[label].append(vertex)
        return groups


class _Level:
    """Working graph for one Louvain pass.

    Unlike :class:`Graph`, aggregated levels carry self-loops (the internal
    weight of a condensed community), stored in ``self_weight``.  The Louvain
    convention counts a self-loop twice in a vertex's weighted degree.
    """

    __slots__ = ("adj", "self_weight", "degree", "two_m")

    def __init__(
        self, adj: list[Mapping[int, float]], self_weight: list[float]
    ) -> None:
        self.adj = adj
        self.self_weight = self_weight
        self.degree = [
            sum(neigh.values()) + 2.0 * self_weight[v] for v, neigh in enumerate(adj)
        ]
        self.two_m = sum(self.degree)

    @classmethod
    def from_graph(cls, graph: Graph) -> "_Level":
        # Levels only read the adjacency, so the zero-copy view avoids the
        # O(E) dict duplication the copying accessor would pay per pass.
        adj = [graph.neighbors_view(v) for v in range(graph.n_vertices)]
        return cls(adj, [0.0] * graph.n_vertices)

    @property
    def n(self) -> int:
        return len(self.adj)


def louvain(graph: Graph, resolution: float = 1.0, min_gain: float = 1e-9) -> LouvainResult:
    """Partition ``graph`` into communities by greedy modularity optimisation.

    Parameters
    ----------
    graph:
        Weighted undirected graph with non-negative weights.
    resolution:
        Standard resolution parameter; 1.0 recovers plain modularity.
    min_gain:
        Minimum modularity gain for a vertex move, guarding against
        floating-point churn.
    """
    for u, v, w in graph.edges():
        if w < 0:
            raise ValueError(
                f"louvain requires non-negative weights, edge ({u},{v}) has {w}"
            )

    n = graph.n_vertices
    membership = list(range(n))
    level = _Level.from_graph(graph)

    while True:
        labels, improved = _one_level(level, resolution, min_gain)
        compact = _compact_labels(labels)
        membership = [compact[membership[v]] for v in range(n)]
        if not improved:
            break
        level = _aggregate(level, compact)
        if level.n <= 1:
            break

    compact = _compact_labels(membership)
    return LouvainResult(
        labels=tuple(compact),
        n_communities=max(compact) + 1,
        modularity=modularity(graph, compact),
    )


def _one_level(level: _Level, resolution: float, min_gain: float) -> tuple[list[int], bool]:
    """One local-moving pass; returns (labels, whether anything moved)."""
    n = level.n
    labels = list(range(n))
    community_degree = list(level.degree)
    two_m = level.two_m
    if two_m <= 0:
        return labels, False

    improved_any = False
    moved = True
    while moved:
        moved = False
        for v in range(n):
            neighbors = level.adj[v]
            if not neighbors:
                continue
            old = labels[v]
            links: dict[int, float] = {}
            for u, w in neighbors.items():
                links[labels[u]] = links.get(labels[u], 0.0) + w

            community_degree[old] -= level.degree[v]
            base = links.get(old, 0.0) - resolution * level.degree[v] * community_degree[old] / two_m
            best_label = old
            best_gain = 0.0
            # Deterministic candidate order; ties keep the smallest label.
            for label in sorted(links):
                if label == old:
                    continue
                gain = (
                    links[label]
                    - resolution * level.degree[v] * community_degree[label] / two_m
                ) - base
                if gain > best_gain + min_gain:
                    best_gain = gain
                    best_label = label
            community_degree[best_label] += level.degree[v]
            if best_label != old:
                labels[v] = best_label
                moved = True
                improved_any = True
    return labels, improved_any


def _aggregate(level: _Level, labels: list[int]) -> _Level:
    """Condense communities into super-vertices.

    Intra-community weight (including existing self-loops) becomes the
    self-loop of the condensed vertex, so later passes keep optimising the
    same global modularity.
    """
    n_new = max(labels) + 1
    adj: list[dict[int, float]] = [{} for _ in range(n_new)]
    self_weight = [0.0] * n_new

    for v, neigh in enumerate(level.adj):
        cv = labels[v]
        self_weight[cv] += level.self_weight[v]
        for u, w in neigh.items():
            if u < v:
                continue  # visit each undirected edge once
            cu = labels[u]
            if cu == cv:
                self_weight[cv] += w
            else:
                adj[cv][cu] = adj[cv].get(cu, 0.0) + w
                adj[cu][cv] = adj[cu].get(cv, 0.0) + w
    return _Level(adj, self_weight)


def _compact_labels(labels: list[int]) -> list[int]:
    """Relabel to 0..k-1 in order of first appearance."""
    mapping: dict[int, int] = {}
    compact = []
    for label in labels:
        if label not in mapping:
            mapping[label] = len(mapping)
        compact.append(mapping[label])
    return compact
