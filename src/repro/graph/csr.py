"""Array-backed TSG construction and community detection (CSR layout).

The dict-of-dicts :class:`~repro.graph.graph.Graph` is the readable
reference API, but building one TSG per round costs thousands of per-edge
Python dict operations — and the seed pipeline built *three* of them per
round (k-NN graph, pruned copy, absolute copy).  This module keeps a round's
graph in three flat numpy arrays (``indptr`` / ``indices`` / ``weights``,
the standard CSR layout, both edge directions stored) and provides:

* :func:`tsg_edge_arrays` — vectorised k-NN + tau-pruning edge selection
  that reproduces :func:`repro.graph.knn_graph` + ``prune_weak_edges``
  exactly, including which direction's correlation an edge keeps;
* :func:`louvain_csr` / :func:`label_propagation_csr` — array-backed
  community detection mirroring the deterministic dict implementations
  move for move (same visit order, same candidate order, same tie-breaks),
  so they produce the same labels;
* :func:`modularity_csr` — vectorised Newman modularity.

Label equivalence caveat: the dict and CSR code paths accumulate the same
floating-point sums in different orders (dict insertion order vs. sorted
column order), so intermediate quantities can differ by ~1 ulp.  Decisions
only flip when a modularity gain sits *exactly* on the ``min_gain``
boundary — a measure-zero event for continuous correlation weights, and
impossible for exact (e.g. unit) weights where the sums are exact either
way.
"""

from __future__ import annotations

import numpy as np

from ..timeseries.correlation import top_k_neighbors
from .graph import Graph
from .louvain import LouvainResult


class CSRGraph:
    """Immutable undirected weighted graph in CSR form.

    Both directions of every undirected edge are stored, with each row's
    columns sorted ascending.  Rows are vertices ``0 .. n_vertices - 1``.
    """

    __slots__ = ("n_vertices", "indptr", "indices", "weights", "_degrees", "_total")

    def __init__(
        self, n_vertices: int, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray
    ) -> None:
        if n_vertices < 1:
            raise ValueError(f"graph needs at least 1 vertex, got {n_vertices}")
        self.n_vertices = n_vertices
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        self._degrees: np.ndarray | None = None
        self._total: float | None = None
        if self.indptr.shape != (n_vertices + 1,):
            raise ValueError(f"indptr must have length {n_vertices + 1}")
        if self.indices.shape != self.weights.shape:
            raise ValueError("indices and weights must have equal length")

    @classmethod
    def from_edges(
        cls, n_vertices: int, rows: np.ndarray, cols: np.ndarray, weights: np.ndarray
    ) -> "CSRGraph":
        """Build from one direction per undirected edge (no duplicates)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        src = np.concatenate([rows, cols])
        dst = np.concatenate([cols, rows])
        w = np.concatenate([weights, weights])
        order = np.lexsort((dst, src))
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n_vertices), out=indptr[1:])
        return cls(n_vertices, indptr, dst[order], w[order])

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Convert a dict :class:`Graph` (snapshot; later edits not seen)."""
        edges = list(graph.edges())
        if edges:
            rows, cols, weights = (np.asarray(part) for part in zip(*edges))
        else:
            rows = cols = np.zeros(0, dtype=np.int64)
            weights = np.zeros(0, dtype=np.float64)
        return cls.from_edges(graph.n_vertices, rows, cols, weights)

    def to_graph(self) -> Graph:
        """Convert back to the dict reference representation."""
        graph = Graph(self.n_vertices)
        rows = np.repeat(np.arange(self.n_vertices), np.diff(self.indptr))
        upper = rows < self.indices
        for u, v, w in zip(rows[upper], self.indices[upper], self.weights[upper]):
            graph.add_edge(int(u), int(v), float(w))
        return graph

    @property
    def n_edges(self) -> int:
        return self.indices.size // 2

    def total_weight(self) -> float:
        """Sum of edge weights, each undirected edge counted once.

        Cached after the first call — the graph is immutable, and per-round
        pipelines (modularity, Louvain level setup, co-appearance hooks) ask
        repeatedly.
        """
        if self._total is None:
            self._total = float(self.weights.sum()) / 2.0
        return self._total

    def weighted_degrees(self) -> np.ndarray:
        """Per-vertex sum of incident edge weights, as an ``(n,)`` array.

        Cached after the first call; treat the returned array as read-only.
        The graph is immutable — code that patches CSR arrays (the delta TSG
        builder) always constructs a *new* :class:`CSRGraph`, so a fresh
        instance (with empty caches) is the invalidation protocol.  Anything
        that mutates the arrays of a live instance in place must call
        :meth:`invalidate_caches` afterwards.
        """
        if self._degrees is None:
            rows = np.repeat(np.arange(self.n_vertices), np.diff(self.indptr))
            self._degrees = np.bincount(
                rows, weights=self.weights, minlength=self.n_vertices
            )
        return self._degrees

    def invalidate_caches(self) -> None:
        """Drop cached degree/weight reductions after an in-place edit.

        The supported protocol is immutability (build a new graph instead of
        editing one), but this hook keeps the caches sound for code that
        must patch arrays in place.
        """
        self._degrees = None
        self._total = None

    def absolute(self) -> "CSRGraph":
        """Copy with absolute weights (Louvain needs non-negative input)."""
        return CSRGraph(self.n_vertices, self.indptr, self.indices, np.abs(self.weights))

    def __repr__(self) -> str:
        return f"CSRGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"


def tsg_edge_arrays(
    corr: np.ndarray, k: int, tau: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised TSG edge selection: ``(rows, cols, weights)`` with rows < cols.

    Replicates ``prune_weak_edges(knn_graph(corr, k), tau)`` edge for edge:
    an undirected edge {u, v} exists when v is among u's top-k neighbours or
    vice versa, weighted by the correlation of whichever direction inserted
    it first in the dict path (``corr[u, v]`` if ``v in topk[u]`` for
    ``u < v``, else ``corr[v, u]``), then pruned when ``|weight| < tau``.
    """
    corr = np.asarray(corr, dtype=np.float64)
    if not 0.0 <= tau <= 1.0:
        raise ValueError(f"tau must be in [0, 1], got {tau}")
    n = corr.shape[0]
    neighbors = top_k_neighbors(corr, k, ordered=False)  # membership only
    # Work on the n*k directed picks directly — never materialise an
    # (n, n) membership mask.  Each undirected pair is keyed as lo*n+hi;
    # np.unique returns keys sorted, i.e. (row, col) lexicographic order,
    # matching the dense path's np.nonzero order.
    src = np.repeat(np.arange(n), k)
    dst = neighbors.reshape(-1)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keys = lo * np.int64(n) + hi
    unique_keys = np.unique(keys)
    rows = unique_keys // n
    cols = unique_keys % n
    # pick[rows, cols] (the lower-index side picked the edge) decides which
    # direction's correlation the dict path would have kept.
    forward = np.zeros(unique_keys.size, dtype=bool)
    forward[np.searchsorted(unique_keys, keys[src < dst])] = True
    weights = np.where(forward, corr[rows, cols], corr[cols, rows])
    keep = np.abs(weights) >= tau
    return rows[keep], cols[keep], weights[keep]


def tsg_csr(corr: np.ndarray, k: int, tau: float) -> CSRGraph:
    """The TSG of a correlation matrix as a :class:`CSRGraph`."""
    rows, cols, weights = tsg_edge_arrays(corr, k, tau)
    return CSRGraph.from_edges(corr.shape[0], rows, cols, weights)


# --------------------------------------------------------------------------
# Louvain on CSR arrays
# --------------------------------------------------------------------------


class _CSRLevel:
    """One Louvain pass's working graph (mirrors ``louvain._Level``)."""

    __slots__ = ("indptr", "indices", "weights", "self_weight", "rows", "degree", "two_m")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        self_weight: np.ndarray,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.self_weight = self_weight
        n = self_weight.size
        # Kept around: the static mover scan regroups edges by (row, label)
        # every call, and rebuilding the row index there would dominate it.
        self.rows = np.repeat(np.arange(n), np.diff(indptr))
        row_sums = np.bincount(self.rows, weights=weights, minlength=n)
        self.degree = row_sums + 2.0 * self_weight
        self.two_m = float(self.degree.sum())

    @property
    def n(self) -> int:
        return self.self_weight.size


#: Mover-count ceiling for the scan-driven jump pass.  Each jumped move
#: pays a fresh static scan (a numpy sort over E edges), so beyond a few
#: movers one full Python sweep is cheaper than the rescans.
_SPARSE_JUMP_MAX = 3

#: Below this many vertices the pure-Python sweep is faster than any scan
#: (numpy dispatch alone outweighs the loop), so aggregated Louvain levels
#: — typically a handful of super-vertices — never pay scan overhead.
_SCAN_MIN_VERTICES = 64

#: Up to this many vertices the mover scan regroups edges through a dense
#: (n, n) scratch (bincount over flat keys) instead of sorting them with
#: ``np.unique`` — cheaper while n^2 stays cache-sized.
_DENSE_SCAN_MAX = 128


def _static_mover_scan(
    level: _CSRLevel,
    labels: list[int],
    community_degree: list[float],
    resolution: float,
    min_gain: float,
) -> np.ndarray:
    """Vertices the sequential sweep would move *at the current state*.

    Bitwise-faithful to the Python evaluation in :func:`_one_level_csr`:
    per-(vertex, candidate) link sums accumulate in the same order (CSR
    columns are ascending and ``np.bincount`` adds sequentially in input
    order, exactly like the dict accumulation), and the gain expression
    applies the same operations in the same order.  A vertex moves on its
    sequential evaluation iff *some* candidate's gain exceeds
    ``0.0 + min_gain`` — the first acceptance of the sequential loop — so
    move/no-move is decided here without replaying the tie-break; the
    mover's target label is left to the exact sequential evaluation.

    Because evaluating a non-mover has no side effects (see the evaluator),
    every vertex this scan clears can be skipped outright: the sweep state
    provably does not change until the first flagged vertex.
    """
    n = level.n
    labels_arr = np.asarray(labels, dtype=np.int64)
    cd = np.asarray(community_degree, dtype=np.float64)
    keys = level.rows * np.int64(n) + labels_arr[level.indices]
    deg = level.degree
    if n <= _DENSE_SCAN_MAX:
        # Dense regrouping: bincount over flat (vertex, label) keys sums the
        # same weights in the same sequential input order as the sparse
        # unique/inverse path, so every link sum is bitwise identical; a
        # separate presence mask distinguishes absent pairs from pairs whose
        # weights sum to zero.
        link = np.bincount(keys, weights=level.weights, minlength=n * n)
        present = np.zeros(n * n, dtype=bool)
        present[keys] = True
        link_mat = link.reshape(n, n)
        arange = np.arange(n)
        own_links = link_mat[arange, labels_arr]
        removed = cd[labels_arr] - deg
        base = own_links - resolution * deg * removed / level.two_m
        gain = (link_mat - resolution * deg[:, None] * cd[None, :] / level.two_m) - base[:, None]
        hot = present.reshape(n, n) & (gain > min_gain)
        hot[arange, labels_arr] = False
        movers: np.ndarray = hot.any(axis=1)
        return movers
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    link_sum = np.bincount(inverse, weights=level.weights, minlength=unique_keys.size)
    gsrc = unique_keys // n
    glab = unique_keys % n
    own = glab == labels_arr[gsrc]
    own_links = np.zeros(n, dtype=np.float64)
    own_links[gsrc[own]] = link_sum[own]
    removed = cd[labels_arr] - deg
    base = own_links - resolution * deg * removed / level.two_m
    gain = (link_sum - resolution * deg[gsrc] * cd[glab] / level.two_m) - base[gsrc]
    movers = np.zeros(n, dtype=bool)
    hot = ~own & (gain > min_gain)
    movers[gsrc[hot]] = True
    return movers


def _one_level_csr(
    level: _CSRLevel,
    resolution: float,
    min_gain: float,
    init_labels: np.ndarray | None = None,
) -> tuple[np.ndarray, bool]:
    """One local-moving pass; mirrors ``louvain._one_level`` decision flow.

    The sweep is inherently sequential (each move feeds the next vertex's
    gains), so per-vertex numpy calls would pay ~100x their arithmetic in
    dispatch overhead.  Dense movement (the first sweep's cascade) runs on
    flat Python lists extracted once per level.  Once movement thins, a
    vectorised static scan (:func:`_static_mover_scan`) finds the few
    vertices that can still move and the sweep jumps straight between them,
    skipping the converged majority — and the final would-be confirmation
    sweep collapses to one scan.  Both paths take identical decisions, so
    the hybrid is exactly the sequential sweep, only faster.

    Enabling invariant: evaluating a vertex that does *not* move leaves
    ``community_degree`` untouched (the remove-from-own-community step is
    computed on a scratch value and only written back on an actual move).
    The classic formulation's ``-= deg`` / ``+= deg`` round trip would
    perturb the entry by ~1 ulp per evaluation; dropping it both makes
    non-mover evaluations skippable and removes float noise.  Relative to
    the dict path this shifts intermediates by at most the same ~1 ulp the
    module docstring already budgets for.

    ``init_labels`` warm-starts the pass from an existing partition instead
    of singletons (Louvain warm start; see :func:`louvain_labels_csr`).
    """
    n = level.n
    two_m = level.two_m
    if two_m <= 0:
        if init_labels is not None:
            return np.asarray(init_labels, dtype=np.int64).copy(), False
        return np.arange(n, dtype=np.int64), False
    if init_labels is None:
        labels = list(range(n))
        community_degree = level.degree.tolist()
    else:
        labels = [int(label) for label in init_labels]
        community_degree = np.bincount(
            np.asarray(init_labels, dtype=np.int64),
            weights=level.degree,
            minlength=n,
        ).tolist()
    degree = level.degree.tolist()

    # Per-vertex (neighbour, weight) pair lists, built once per level —
    # dense sweeps revisit every vertex, so the extraction amortises
    # immediately.
    indptr = level.indptr.tolist()
    pairs = list(zip(level.indices.tolist(), level.weights.tolist()))
    adjacency = [pairs[indptr[v] : indptr[v + 1]] for v in range(n)]

    def evaluate(v: int) -> bool:
        """The exact sequential evaluation of one vertex; True iff it moved."""
        neighbors = adjacency[v]
        if not neighbors:
            return False
        old = labels[v]
        links: dict[int, float] = {}
        # CSR columns are sorted, so accumulation order per label is
        # ascending neighbour index — the same order ``np.bincount``
        # would add them in.  (The explicit membership test beats both
        # dict.get and try/except: early sweeps miss constantly, and
        # CPython specialises the contains + subscript pair.)
        for u, w in neighbors:
            label = labels[u]
            if label in links:
                links[label] += w
            else:
                links[label] = w

        deg_v = degree[v]
        removed = community_degree[old] - deg_v
        base = links.get(old, 0.0) - resolution * deg_v * removed / two_m
        best_label = old
        best_gain = 0.0
        # Sorted candidates + strict min_gain beat: the dict tie-break.
        # One-candidate dicts (converged interiors) skip the sort.
        candidates = links if len(links) == 1 else sorted(links)
        for label in candidates:
            if label == old:
                continue
            gain = (
                links[label]
                - resolution * deg_v * community_degree[label] / two_m
            ) - base
            if gain > best_gain + min_gain:
                best_gain = gain
                best_label = label
        if best_label == old:
            return False
        community_degree[old] = removed
        community_degree[best_label] += deg_v
        labels[v] = best_label
        return True

    improved_any = False
    # Driver: dense movement (a cold start's first sweeps) runs as plain
    # inline Python sweeps — a scan is wasted work while most vertices
    # still move.  Once a sweep's movement falls below ~n/3 the cascade is
    # over, and the scan takes the wheel: it either proves convergence
    # outright (replacing the would-be confirmation sweep), hands a
    # handful of movers to the jump pass, or sends the sweep back out.
    # Warm inits skip straight to the scan — they rarely move at all.
    # Scanning earlier or later never affects the result, only the cost:
    # sweeps and jumps take bitwise-identical decisions.
    use_scans = n >= _SCAN_MIN_VERTICES
    dense_cutoff = n // 3
    next_action = "sweep" if init_labels is None else "scan"
    while True:
        if not use_scans or next_action == "sweep":
            # The sweep is `evaluate` inlined: per-vertex function calls
            # cost ~15% of the whole level at bench sizes.
            moves = 0
            for v in range(n):
                neighbors = adjacency[v]
                if not neighbors:
                    continue
                old = labels[v]
                links = {}
                for u, w in neighbors:
                    label = labels[u]
                    if label in links:
                        links[label] += w
                    else:
                        links[label] = w
                deg_v = degree[v]
                removed = community_degree[old] - deg_v
                base = links.get(old, 0.0) - resolution * deg_v * removed / two_m
                best_label = old
                best_gain = 0.0
                candidates = links if len(links) == 1 else sorted(links)
                for label in candidates:
                    if label == old:
                        continue
                    gain = (
                        links[label]
                        - resolution * deg_v * community_degree[label] / two_m
                    ) - base
                    if gain > best_gain + min_gain:
                        best_gain = gain
                        best_label = label
                if best_label != old:
                    community_degree[old] = removed
                    community_degree[best_label] += deg_v
                    labels[v] = best_label
                    moves += 1
            if moves == 0:
                break  # a full sweep with no moves: the level converged
            improved_any = True
            if use_scans and moves <= dense_cutoff:
                next_action = "scan"
            continue
        movers = _static_mover_scan(level, labels, community_degree, resolution, min_gain)
        mover_list = np.flatnonzero(movers)
        if mover_list.size == 0:
            break  # nothing can move: the next sweep would confirm this
        if mover_list.size > _SPARSE_JUMP_MAX:
            next_action = "sweep"  # too many movers for per-move rescans
            continue
        # Jump pass: evaluate flagged vertices in ascending order — the
        # exact order the sequential sweep reaches them — rescanning after
        # each move because a move invalidates the certificate.  A flagged
        # vertex evaluated at the certifying state always moves.
        position = 0
        densified = False
        while True:
            at = int(np.searchsorted(mover_list, position))
            if at == mover_list.size:
                break  # pass wrapped; the outer loop rescans from vertex 0
            v = int(mover_list[at])
            evaluate(v)
            improved_any = True
            position = v + 1
            if position >= n:
                break
            movers = _static_mover_scan(
                level, labels, community_degree, resolution, min_gain
            )
            mover_list = np.flatnonzero(movers)
            if mover_list.size > _SPARSE_JUMP_MAX:
                # Movement re-densified mid-pass: finish this pass exactly
                # with a partial sweep, then fall back to dense sweeps.
                for u in range(position, n):
                    if evaluate(u):
                        improved_any = True
                densified = True
                break
        next_action = "sweep" if densified else "scan"
    return np.asarray(labels, dtype=np.int64), improved_any


#: Aggregated levels at or below this vertex count take the dense merge
#: path in :func:`_aggregate_csr` (O(n_new^2) scratch instead of a sort).
_DENSE_AGGREGATE_MAX = 64


def _aggregate_csr(level: _CSRLevel, labels: np.ndarray) -> _CSRLevel:
    """Condense communities into super-vertices (mirrors ``louvain._aggregate``)."""
    n_new = int(labels.max()) + 1
    rows = level.rows
    upper = level.indices > rows  # each undirected edge once
    cv = labels[rows[upper]]
    cu = labels[level.indices[upper]]
    w = level.weights[upper]

    self_weight = np.bincount(labels, weights=level.self_weight, minlength=n_new)
    intra = cv == cu
    if intra.any():
        self_weight += np.bincount(cv[intra], weights=w[intra], minlength=n_new)

    a, b, wi = cv[~intra], cu[~intra], w[~intra]
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    key = lo * np.int64(n_new) + hi
    if n_new <= _DENSE_AGGREGATE_MAX:
        # Dense merge: bincount over flat (lo, hi) keys accumulates the
        # merged weights sequentially in input order — the same additions
        # in the same order as the sparse unique/inverse path — and a
        # separate presence mask keeps edges whose weights merge to 0.0.
        # Row-major np.nonzero of the symmetric presence mask enumerates
        # each row's columns ascending, which is CSRGraph's layout, so no
        # lexsort is paid.
        merged_flat = np.bincount(key, weights=wi, minlength=n_new * n_new)
        present = np.zeros(n_new * n_new, dtype=bool)
        present[key] = True
        present_mat = present.reshape(n_new, n_new)
        sym = present_mat | present_mat.T
        indptr = np.zeros(n_new + 1, dtype=np.int64)
        np.cumsum(sym.sum(axis=1), out=indptr[1:])
        indices = np.nonzero(sym)[1]
        merged_mat = merged_flat.reshape(n_new, n_new)
        rows_u, cols_u = np.nonzero(present_mat)
        wmat = np.zeros((n_new, n_new), dtype=np.float64)
        wmat[rows_u, cols_u] = merged_mat[rows_u, cols_u]
        wmat[cols_u, rows_u] = merged_mat[rows_u, cols_u]
        return _CSRLevel(indptr, indices, wmat[sym], self_weight)
    unique_keys, inverse = np.unique(key, return_inverse=True)
    merged = np.bincount(inverse, weights=wi) if unique_keys.size else np.zeros(0)
    csr = CSRGraph.from_edges(
        n_new, unique_keys // n_new, unique_keys % n_new, merged
    )
    return _CSRLevel(csr.indptr, csr.indices, csr.weights, self_weight)


def _compact_labels_array(labels: np.ndarray) -> np.ndarray:
    """Relabel to 0..k-1 in order of first appearance (vectorised)."""
    unique, first_index = np.unique(labels, return_index=True)
    new_id = np.empty(unique.size, dtype=np.int64)
    new_id[np.argsort(first_index, kind="stable")] = np.arange(unique.size)
    return new_id[np.searchsorted(unique, labels)]


def louvain_labels_csr(
    graph: CSRGraph,
    resolution: float = 1.0,
    min_gain: float = 1e-9,
    init_labels: np.ndarray | None = None,
) -> np.ndarray:
    """Louvain community labels on a CSR graph (no modularity computation).

    Produces the same labels as :func:`repro.graph.louvain` on the
    equivalent dict graph (see the module docstring for the float-ordering
    caveat).  The per-round fast pipeline uses this entry point because
    :class:`~repro.core.result.RoundRecord` never stores modularity.

    ``init_labels`` warm-starts level 0 from an existing partition (e.g.
    the previous round's labels) instead of singletons.  Warm starts can
    land on a *different* local optimum than a cold run — callers that need
    cold-identical output must verify (see ``CADConfig.louvain_verify``).
    A warm level 0 that makes no moves still aggregates once: the seed
    partition itself may be coarsenable even when no single vertex move
    improves it.
    """
    if (graph.weights < 0).any():
        bad = int(np.argmax(graph.weights < 0))
        raise ValueError(
            f"louvain requires non-negative weights, got {graph.weights[bad]}"
        )
    n = graph.n_vertices
    membership = np.arange(n, dtype=np.int64)
    level = _CSRLevel(
        graph.indptr, graph.indices, graph.weights, np.zeros(n, dtype=np.float64)
    )
    init: np.ndarray | None = None
    if init_labels is not None:
        init = np.asarray(init_labels, dtype=np.int64)
        if init.shape != (n,):
            raise ValueError(
                f"init_labels must have shape ({n},), got {init.shape}"
            )
        if init.size and (init.min() < 0 or init.max() >= n):
            raise ValueError("init_labels entries must be existing vertex ids")

    while True:
        warm = init is not None
        labels, improved = _one_level_csr(level, resolution, min_gain, init)
        init = None  # the warm partition only seeds level 0
        compact = _compact_labels_array(labels)
        membership = compact[membership]
        if not improved and not warm:
            break
        level = _aggregate_csr(level, compact)
        if level.n <= 1:
            break
    return _compact_labels_array(membership)


def louvain_csr(
    graph: CSRGraph, resolution: float = 1.0, min_gain: float = 1e-9
) -> LouvainResult:
    """Array-backed Louvain returning the same result type as ``louvain``."""
    labels = louvain_labels_csr(graph, resolution, min_gain)
    return LouvainResult(
        labels=tuple(int(label) for label in labels),
        n_communities=int(labels.max()) + 1,
        modularity=modularity_csr(graph, labels),
    )


def label_propagation_labels_csr(graph: CSRGraph, max_sweeps: int = 50) -> np.ndarray:
    """Label-propagation labels on CSR arrays (mirrors the dict version)."""
    if (graph.weights < 0).any():
        bad = int(np.argmax(graph.weights < 0))
        raise ValueError(
            f"label propagation requires non-negative weights, "
            f"got {graph.weights[bad]}"
        )
    n = graph.n_vertices
    labels = list(range(n))
    indptr = graph.indptr.tolist()
    pairs = list(zip(graph.indices.tolist(), graph.weights.tolist()))
    adjacency = [pairs[indptr[v] : indptr[v + 1]] for v in range(n)]

    # Flat-list hot loop for the same reason as ``_one_level_csr``: the
    # sweep is sequential, and numpy dispatch per vertex costs more than
    # the few-neighbour arithmetic it would vectorise.
    for _ in range(max_sweeps):
        changed = False
        for v in range(n):
            neighbors = adjacency[v]
            if not neighbors:
                continue
            links: dict[int, float] = {}
            for u, w in neighbors:
                label = labels[u]
                if label in links:
                    links[label] += w
                else:
                    links[label] = w
            best_weight = max(links.values())
            # Smallest label among the (tolerance-tied) heaviest — the
            # dict implementation's tie-break.
            threshold = best_weight - 1e-12
            best_label = min(
                label for label, weight in links.items() if weight >= threshold
            )
            if best_label != labels[v]:
                labels[v] = best_label
                changed = True
        if not changed:
            break
    return _compact_labels_array(np.asarray(labels, dtype=np.int64))


def label_propagation_csr(graph: CSRGraph, max_sweeps: int = 50) -> LouvainResult:
    """Array-backed label propagation returning a :class:`LouvainResult`."""
    labels = label_propagation_labels_csr(graph, max_sweeps)
    return LouvainResult(
        labels=tuple(int(label) for label in labels),
        n_communities=int(labels.max()) + 1,
        modularity=modularity_csr(graph, labels),
    )


def modularity_csr(graph: CSRGraph, communities: np.ndarray) -> float:
    """Newman modularity of a partition on a CSR graph (vectorised)."""
    communities = np.asarray(communities, dtype=np.int64)
    if communities.shape != (graph.n_vertices,):
        raise ValueError(
            f"partition has {communities.size} labels for {graph.n_vertices} vertices"
        )
    two_m = 2.0 * graph.total_weight()
    if two_m <= 0:
        return 0.0
    n_labels = int(communities.max()) + 1
    degree_sum = np.bincount(
        communities, weights=graph.weighted_degrees(), minlength=n_labels
    )
    rows = np.repeat(np.arange(graph.n_vertices), np.diff(graph.indptr))
    same = communities[rows] == communities[graph.indices]
    # Both directions stored, so the intra sum already counts each edge twice.
    internal_twice = np.bincount(
        communities[rows[same]], weights=graph.weights[same], minlength=n_labels
    )
    q = internal_twice / two_m - (degree_sum / two_m) ** 2
    return float(q.sum())
