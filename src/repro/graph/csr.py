"""Array-backed TSG construction and community detection (CSR layout).

The dict-of-dicts :class:`~repro.graph.graph.Graph` is the readable
reference API, but building one TSG per round costs thousands of per-edge
Python dict operations — and the seed pipeline built *three* of them per
round (k-NN graph, pruned copy, absolute copy).  This module keeps a round's
graph in three flat numpy arrays (``indptr`` / ``indices`` / ``weights``,
the standard CSR layout, both edge directions stored) and provides:

* :func:`tsg_edge_arrays` — vectorised k-NN + tau-pruning edge selection
  that reproduces :func:`repro.graph.knn_graph` + ``prune_weak_edges``
  exactly, including which direction's correlation an edge keeps;
* :func:`louvain_csr` / :func:`label_propagation_csr` — array-backed
  community detection mirroring the deterministic dict implementations
  move for move (same visit order, same candidate order, same tie-breaks),
  so they produce the same labels;
* :func:`modularity_csr` — vectorised Newman modularity.

Label equivalence caveat: the dict and CSR code paths accumulate the same
floating-point sums in different orders (dict insertion order vs. sorted
column order), so intermediate quantities can differ by ~1 ulp.  Decisions
only flip when a modularity gain sits *exactly* on the ``min_gain``
boundary — a measure-zero event for continuous correlation weights, and
impossible for exact (e.g. unit) weights where the sums are exact either
way.
"""

from __future__ import annotations

import numpy as np

from ..timeseries.correlation import top_k_neighbors
from .graph import Graph
from .louvain import LouvainResult


class CSRGraph:
    """Immutable undirected weighted graph in CSR form.

    Both directions of every undirected edge are stored, with each row's
    columns sorted ascending.  Rows are vertices ``0 .. n_vertices - 1``.
    """

    __slots__ = ("n_vertices", "indptr", "indices", "weights")

    def __init__(
        self, n_vertices: int, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray
    ) -> None:
        if n_vertices < 1:
            raise ValueError(f"graph needs at least 1 vertex, got {n_vertices}")
        self.n_vertices = n_vertices
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.indptr.shape != (n_vertices + 1,):
            raise ValueError(f"indptr must have length {n_vertices + 1}")
        if self.indices.shape != self.weights.shape:
            raise ValueError("indices and weights must have equal length")

    @classmethod
    def from_edges(
        cls, n_vertices: int, rows: np.ndarray, cols: np.ndarray, weights: np.ndarray
    ) -> "CSRGraph":
        """Build from one direction per undirected edge (no duplicates)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        src = np.concatenate([rows, cols])
        dst = np.concatenate([cols, rows])
        w = np.concatenate([weights, weights])
        order = np.lexsort((dst, src))
        indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n_vertices), out=indptr[1:])
        return cls(n_vertices, indptr, dst[order], w[order])

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Convert a dict :class:`Graph` (snapshot; later edits not seen)."""
        edges = list(graph.edges())
        if edges:
            rows, cols, weights = (np.asarray(part) for part in zip(*edges))
        else:
            rows = cols = np.zeros(0, dtype=np.int64)
            weights = np.zeros(0, dtype=np.float64)
        return cls.from_edges(graph.n_vertices, rows, cols, weights)

    def to_graph(self) -> Graph:
        """Convert back to the dict reference representation."""
        graph = Graph(self.n_vertices)
        rows = np.repeat(np.arange(self.n_vertices), np.diff(self.indptr))
        upper = rows < self.indices
        for u, v, w in zip(rows[upper], self.indices[upper], self.weights[upper]):
            graph.add_edge(int(u), int(v), float(w))
        return graph

    @property
    def n_edges(self) -> int:
        return self.indices.size // 2

    def total_weight(self) -> float:
        """Sum of edge weights, each undirected edge counted once."""
        return float(self.weights.sum()) / 2.0

    def weighted_degrees(self) -> np.ndarray:
        """Per-vertex sum of incident edge weights, as an ``(n,)`` array."""
        rows = np.repeat(np.arange(self.n_vertices), np.diff(self.indptr))
        return np.bincount(rows, weights=self.weights, minlength=self.n_vertices)

    def absolute(self) -> "CSRGraph":
        """Copy with absolute weights (Louvain needs non-negative input)."""
        return CSRGraph(self.n_vertices, self.indptr, self.indices, np.abs(self.weights))

    def __repr__(self) -> str:
        return f"CSRGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"


def tsg_edge_arrays(
    corr: np.ndarray, k: int, tau: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised TSG edge selection: ``(rows, cols, weights)`` with rows < cols.

    Replicates ``prune_weak_edges(knn_graph(corr, k), tau)`` edge for edge:
    an undirected edge {u, v} exists when v is among u's top-k neighbours or
    vice versa, weighted by the correlation of whichever direction inserted
    it first in the dict path (``corr[u, v]`` if ``v in topk[u]`` for
    ``u < v``, else ``corr[v, u]``), then pruned when ``|weight| < tau``.
    """
    corr = np.asarray(corr, dtype=np.float64)
    if not 0.0 <= tau <= 1.0:
        raise ValueError(f"tau must be in [0, 1], got {tau}")
    n = corr.shape[0]
    neighbors = top_k_neighbors(corr, k, ordered=False)  # membership only
    # Work on the n*k directed picks directly — never materialise an
    # (n, n) membership mask.  Each undirected pair is keyed as lo*n+hi;
    # np.unique returns keys sorted, i.e. (row, col) lexicographic order,
    # matching the dense path's np.nonzero order.
    src = np.repeat(np.arange(n), k)
    dst = neighbors.reshape(-1)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keys = lo * np.int64(n) + hi
    unique_keys = np.unique(keys)
    rows = unique_keys // n
    cols = unique_keys % n
    # pick[rows, cols] (the lower-index side picked the edge) decides which
    # direction's correlation the dict path would have kept.
    forward = np.zeros(unique_keys.size, dtype=bool)
    forward[np.searchsorted(unique_keys, keys[src < dst])] = True
    weights = np.where(forward, corr[rows, cols], corr[cols, rows])
    keep = np.abs(weights) >= tau
    return rows[keep], cols[keep], weights[keep]


def tsg_csr(corr: np.ndarray, k: int, tau: float) -> CSRGraph:
    """The TSG of a correlation matrix as a :class:`CSRGraph`."""
    rows, cols, weights = tsg_edge_arrays(corr, k, tau)
    return CSRGraph.from_edges(corr.shape[0], rows, cols, weights)


# --------------------------------------------------------------------------
# Louvain on CSR arrays
# --------------------------------------------------------------------------


class _CSRLevel:
    """One Louvain pass's working graph (mirrors ``louvain._Level``)."""

    __slots__ = ("indptr", "indices", "weights", "self_weight", "degree", "two_m")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        self_weight: np.ndarray,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.self_weight = self_weight
        n = self_weight.size
        rows = np.repeat(np.arange(n), np.diff(indptr))
        row_sums = np.bincount(rows, weights=weights, minlength=n)
        self.degree = row_sums + 2.0 * self_weight
        self.two_m = float(self.degree.sum())

    @property
    def n(self) -> int:
        return self.self_weight.size


def _one_level_csr(
    level: _CSRLevel, resolution: float, min_gain: float
) -> tuple[np.ndarray, bool]:
    """One local-moving pass; mirrors ``louvain._one_level`` decision flow.

    The sweep is inherently sequential (each move feeds the next vertex's
    gains), so per-vertex numpy calls would pay ~100x their arithmetic in
    dispatch overhead.  The hot loop instead runs on flat Python lists
    extracted once per level — same asymptotics as the dict path but
    without per-round graph-of-dicts construction.
    """
    n = level.n
    labels = list(range(n))
    community_degree = level.degree.tolist()
    degree = level.degree.tolist()
    two_m = level.two_m
    if two_m <= 0:
        return np.arange(n, dtype=np.int64), False

    # Per-vertex (neighbour, weight) pair lists, built once per level —
    # sweeps revisit every vertex, so the extraction amortises immediately.
    indptr = level.indptr.tolist()
    pairs = list(zip(level.indices.tolist(), level.weights.tolist()))
    adjacency = [pairs[indptr[v] : indptr[v + 1]] for v in range(n)]

    improved_any = False
    moved = True
    while moved:
        moved = False
        for v in range(n):
            neighbors = adjacency[v]
            if not neighbors:
                continue
            old = labels[v]
            links: dict[int, float] = {}
            # CSR columns are sorted, so accumulation order per label is
            # ascending neighbour index — the same order ``np.bincount``
            # would add them in.  (The explicit membership test beats both
            # dict.get and try/except: early sweeps miss constantly, and
            # CPython specialises the contains + subscript pair.)
            for u, w in neighbors:
                label = labels[u]
                if label in links:
                    links[label] += w
                else:
                    links[label] = w

            deg_v = degree[v]
            community_degree[old] -= deg_v
            base = links.get(old, 0.0) - resolution * deg_v * community_degree[old] / two_m
            best_label = old
            best_gain = 0.0
            # Sorted candidates + strict min_gain beat: the dict tie-break.
            # One-candidate dicts (converged interiors) skip the sort.
            candidates = links if len(links) == 1 else sorted(links)
            for label in candidates:
                if label == old:
                    continue
                gain = (
                    links[label]
                    - resolution * deg_v * community_degree[label] / two_m
                ) - base
                if gain > best_gain + min_gain:
                    best_gain = gain
                    best_label = label
            community_degree[best_label] += deg_v
            if best_label != old:
                labels[v] = best_label
                moved = True
                improved_any = True
    return np.asarray(labels, dtype=np.int64), improved_any


def _aggregate_csr(level: _CSRLevel, labels: np.ndarray) -> _CSRLevel:
    """Condense communities into super-vertices (mirrors ``louvain._aggregate``)."""
    n_new = int(labels.max()) + 1
    rows = np.repeat(np.arange(level.n), np.diff(level.indptr))
    upper = level.indices > rows  # each undirected edge once
    cv = labels[rows[upper]]
    cu = labels[level.indices[upper]]
    w = level.weights[upper]

    self_weight = np.bincount(labels, weights=level.self_weight, minlength=n_new)
    intra = cv == cu
    if intra.any():
        self_weight += np.bincount(cv[intra], weights=w[intra], minlength=n_new)

    a, b, wi = cv[~intra], cu[~intra], w[~intra]
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    key = lo * np.int64(n_new) + hi
    unique_keys, inverse = np.unique(key, return_inverse=True)
    merged = np.bincount(inverse, weights=wi) if unique_keys.size else np.zeros(0)
    csr = CSRGraph.from_edges(
        n_new, unique_keys // n_new, unique_keys % n_new, merged
    )
    return _CSRLevel(csr.indptr, csr.indices, csr.weights, self_weight)


def _compact_labels_array(labels: np.ndarray) -> np.ndarray:
    """Relabel to 0..k-1 in order of first appearance (vectorised)."""
    unique, first_index = np.unique(labels, return_index=True)
    new_id = np.empty(unique.size, dtype=np.int64)
    new_id[np.argsort(first_index, kind="stable")] = np.arange(unique.size)
    return new_id[np.searchsorted(unique, labels)]


def louvain_labels_csr(
    graph: CSRGraph, resolution: float = 1.0, min_gain: float = 1e-9
) -> np.ndarray:
    """Louvain community labels on a CSR graph (no modularity computation).

    Produces the same labels as :func:`repro.graph.louvain` on the
    equivalent dict graph (see the module docstring for the float-ordering
    caveat).  The per-round fast pipeline uses this entry point because
    :class:`~repro.core.result.RoundRecord` never stores modularity.
    """
    if (graph.weights < 0).any():
        bad = int(np.argmax(graph.weights < 0))
        raise ValueError(
            f"louvain requires non-negative weights, got {graph.weights[bad]}"
        )
    n = graph.n_vertices
    membership = np.arange(n, dtype=np.int64)
    level = _CSRLevel(
        graph.indptr, graph.indices, graph.weights, np.zeros(n, dtype=np.float64)
    )

    while True:
        labels, improved = _one_level_csr(level, resolution, min_gain)
        compact = _compact_labels_array(labels)
        membership = compact[membership]
        if not improved:
            break
        level = _aggregate_csr(level, compact)
        if level.n <= 1:
            break
    return _compact_labels_array(membership)


def louvain_csr(
    graph: CSRGraph, resolution: float = 1.0, min_gain: float = 1e-9
) -> LouvainResult:
    """Array-backed Louvain returning the same result type as ``louvain``."""
    labels = louvain_labels_csr(graph, resolution, min_gain)
    return LouvainResult(
        labels=tuple(int(label) for label in labels),
        n_communities=int(labels.max()) + 1,
        modularity=modularity_csr(graph, labels),
    )


def label_propagation_labels_csr(graph: CSRGraph, max_sweeps: int = 50) -> np.ndarray:
    """Label-propagation labels on CSR arrays (mirrors the dict version)."""
    if (graph.weights < 0).any():
        bad = int(np.argmax(graph.weights < 0))
        raise ValueError(
            f"label propagation requires non-negative weights, "
            f"got {graph.weights[bad]}"
        )
    n = graph.n_vertices
    labels = list(range(n))
    indptr = graph.indptr.tolist()
    pairs = list(zip(graph.indices.tolist(), graph.weights.tolist()))
    adjacency = [pairs[indptr[v] : indptr[v + 1]] for v in range(n)]

    # Flat-list hot loop for the same reason as ``_one_level_csr``: the
    # sweep is sequential, and numpy dispatch per vertex costs more than
    # the few-neighbour arithmetic it would vectorise.
    for _ in range(max_sweeps):
        changed = False
        for v in range(n):
            neighbors = adjacency[v]
            if not neighbors:
                continue
            links: dict[int, float] = {}
            for u, w in neighbors:
                label = labels[u]
                if label in links:
                    links[label] += w
                else:
                    links[label] = w
            best_weight = max(links.values())
            # Smallest label among the (tolerance-tied) heaviest — the
            # dict implementation's tie-break.
            threshold = best_weight - 1e-12
            best_label = min(
                label for label, weight in links.items() if weight >= threshold
            )
            if best_label != labels[v]:
                labels[v] = best_label
                changed = True
        if not changed:
            break
    return _compact_labels_array(np.asarray(labels, dtype=np.int64))


def label_propagation_csr(graph: CSRGraph, max_sweeps: int = 50) -> LouvainResult:
    """Array-backed label propagation returning a :class:`LouvainResult`."""
    labels = label_propagation_labels_csr(graph, max_sweeps)
    return LouvainResult(
        labels=tuple(int(label) for label in labels),
        n_communities=int(labels.max()) + 1,
        modularity=modularity_csr(graph, labels),
    )


def modularity_csr(graph: CSRGraph, communities: np.ndarray) -> float:
    """Newman modularity of a partition on a CSR graph (vectorised)."""
    communities = np.asarray(communities, dtype=np.int64)
    if communities.shape != (graph.n_vertices,):
        raise ValueError(
            f"partition has {communities.size} labels for {graph.n_vertices} vertices"
        )
    two_m = 2.0 * graph.total_weight()
    if two_m <= 0:
        return 0.0
    n_labels = int(communities.max()) + 1
    degree_sum = np.bincount(
        communities, weights=graph.weighted_degrees(), minlength=n_labels
    )
    rows = np.repeat(np.arange(graph.n_vertices), np.diff(graph.indptr))
    same = communities[rows] == communities[graph.indices]
    # Both directions stored, so the intra sum already counts each edge twice.
    internal_twice = np.bincount(
        communities[rows[same]], weights=graph.weights[same], minlength=n_labels
    )
    q = internal_twice / two_m - (degree_sum / two_m) ** 2
    return float(q.sum())
