"""k-NN graph construction from a correlation matrix (paper Section III-B).

Each vertex is connected to its ``k`` most strongly correlated neighbours
(by absolute Pearson correlation); edges whose absolute weight falls below
the correlation threshold ``tau`` are pruned.  The result after pruning is
the paper's *Time-Series Graph* (TSG).

The paper cites HNSW for O(n log n) construction on huge sensor counts; at
the scales evaluated here (n <= ~1,300) an exact vectorised top-k over the
correlation matrix is faster in practice, so we keep it exact (see
DESIGN.md, substitutions).
"""

from __future__ import annotations

import numpy as np

from ..timeseries.correlation import top_k_neighbors
from .graph import Graph


def knn_graph(corr: np.ndarray, k: int) -> Graph:
    """Directed-union k-NN graph: edge {u, v} exists if v is among u's
    top-k neighbours or vice versa, weighted by the signed correlation."""
    corr = np.asarray(corr, dtype=np.float64)
    n = corr.shape[0]
    graph = Graph(n)
    neighbors = top_k_neighbors(corr, k)
    for u in range(n):
        for v in neighbors[u]:
            v = int(v)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, float(corr[u, v]))
    return graph


def prune_weak_edges(graph: Graph, tau: float) -> Graph:
    """Copy ``graph`` keeping only edges with ``|weight| >= tau``."""
    if not 0.0 <= tau <= 1.0:
        raise ValueError(f"tau must be in [0, 1], got {tau}")
    pruned = Graph(graph.n_vertices)
    for u, v, w in graph.edges():
        if abs(w) >= tau:
            pruned.add_edge(u, v, w)
    return pruned


def absolute_weight_graph(graph: Graph) -> Graph:
    """Copy ``graph`` with absolute edge weights.

    Louvain requires non-negative weights; a strong *negative* correlation
    is still strong coupling between sensors, so community detection runs on
    ``|w|`` while the TSG itself keeps signed weights for inspection.
    """
    result = Graph(graph.n_vertices)
    for u, v, w in graph.edges():
        result.add_edge(u, v, abs(w))
    return result
