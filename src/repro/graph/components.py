"""Connected components via iterative depth-first search."""

from __future__ import annotations

from .graph import Graph


def connected_components(graph: Graph) -> list[list[int]]:
    """Return the connected components as sorted vertex lists.

    Components are ordered by their smallest vertex, and vertices inside a
    component are sorted, so the output is deterministic.
    """
    seen = [False] * graph.n_vertices
    components: list[list[int]] = []
    for start in range(graph.n_vertices):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            v = stack.pop()
            component.append(v)
            for u in graph.neighbors_view(v):
                if not seen[u]:
                    seen[u] = True
                    stack.append(u)
        component.sort()
        components.append(component)
    return components


def component_labels(graph: Graph) -> list[int]:
    """Component label per vertex, numbered in order of smallest member."""
    labels = [-1] * graph.n_vertices
    for index, component in enumerate(connected_components(graph)):
        for v in component:
            labels[v] = index
    return labels
