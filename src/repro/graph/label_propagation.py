"""Label propagation community detection (Raghavan et al. 2007).

An alternative to Louvain for CAD's Phase 1 (the paper picks Louvain for
its O(n log n) cost; label propagation is O(m) per sweep and makes a good
ablation: how sensitive is CAD to the community detector?).

This implementation is deterministic: vertices are visited in index order
and each vertex adopts the smallest label among those with maximal incident
weight.  Synchronous oscillations are avoided by updating in place
(asynchronous propagation).
"""

from __future__ import annotations

from .graph import Graph
from .louvain import LouvainResult, _compact_labels
from .modularity import modularity


def label_propagation(graph: Graph, max_sweeps: int = 50) -> LouvainResult:
    """Partition ``graph`` by weighted asynchronous label propagation.

    Returns the same result type as :func:`repro.graph.louvain` so the two
    are drop-in interchangeable.
    """
    for u, v, w in graph.edges():
        if w < 0:
            raise ValueError(
                f"label propagation requires non-negative weights, "
                f"edge ({u},{v}) has {w}"
            )
    n = graph.n_vertices
    labels = list(range(n))

    for _ in range(max_sweeps):
        changed = False
        for v in range(n):
            neighbors = graph.neighbors_view(v)
            if not neighbors:
                continue
            weight_per_label: dict[int, float] = {}
            for u, w in neighbors.items():
                weight_per_label[labels[u]] = weight_per_label.get(labels[u], 0.0) + w
            best_weight = max(weight_per_label.values())
            # Smallest label among the heaviest — deterministic tie-break.
            best_label = min(
                label
                for label, weight in weight_per_label.items()
                if weight >= best_weight - 1e-12
            )
            if best_label != labels[v]:
                labels[v] = best_label
                changed = True
        if not changed:
            break

    compact = _compact_labels(labels)
    return LouvainResult(
        labels=tuple(compact),
        n_communities=max(compact) + 1,
        modularity=modularity(graph, compact),
    )
