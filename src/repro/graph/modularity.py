"""Newman modularity of a graph partition.

Modularity (Newman 2006, paper reference [58]) is the objective Louvain
optimises.  For a weighted graph with total edge weight ``m`` it is

    Q = (1 / 2m) * sum_{ij} [A_ij - d_i d_j / (2m)] * delta(c_i, c_j)

where ``A`` is the weighted adjacency, ``d_i`` the weighted degree and
``delta`` matches vertices in the same community.
"""

from __future__ import annotations

from typing import Sequence

from .graph import Graph


def modularity(graph: Graph, communities: Sequence[int]) -> float:
    """Modularity of the partition given as a community label per vertex.

    Vertices with no edges contribute nothing.  An empty graph (no edges)
    has modularity 0 by convention.
    """
    if len(communities) != graph.n_vertices:
        raise ValueError(
            f"partition has {len(communities)} labels for {graph.n_vertices} vertices"
        )
    two_m = 2.0 * graph.total_weight()
    if two_m <= 0:
        return 0.0

    internal: dict[int, float] = {}
    degree_sum: dict[int, float] = {}
    for v in range(graph.n_vertices):
        label = communities[v]
        degree_sum[label] = degree_sum.get(label, 0.0) + graph.weighted_degree(v)
    for u, v, w in graph.edges():
        if communities[u] == communities[v]:
            internal[communities[u]] = internal.get(communities[u], 0.0) + w

    q = 0.0
    for label, d in degree_sum.items():
        q += 2.0 * internal.get(label, 0.0) / two_m - (d / two_m) ** 2
    return q
