"""Benchmark harness: cached experiment runner and table/series reporting."""

from .reporting import emit, format_quality_report, format_series, format_table
from .runner import (
    TABLE3_DATASETS,
    MethodRun,
    n_repeats,
    probe_rc_level,
    run_method,
    run_repeats,
    tuned_cad_config,
)

__all__ = [
    "MethodRun",
    "run_method",
    "run_repeats",
    "tuned_cad_config",
    "probe_rc_level",
    "n_repeats",
    "TABLE3_DATASETS",
    "emit",
    "format_table",
    "format_series",
    "format_quality_report",
]
