"""Plain-text tables and series for the benchmark output.

Every benchmark prints the rows/series its paper table or figure reports
and appends the same text to ``results/<name>.txt`` so the numbers survive
the pytest run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

RESULTS_DIR = Path("results")


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table; floats rendered with one decimal like the paper."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered)) if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """One figure series as aligned x/y columns."""
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append(f"  {_cell(x):>10}  {_cell(y)}")
    return "\n".join(lines)


def emit(name: str, text: str) -> None:
    """Print a benchmark's output and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def _cell(value: object) -> str:
    if isinstance(value, float):
        # Table-style one decimal for paper-scale values (e.g. "95.0"),
        # three significant digits for small parameters (e.g. "0.01").
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)
