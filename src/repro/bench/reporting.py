"""Plain-text tables and series for the benchmark output.

Every benchmark prints the rows/series its paper table or figure reports
and appends the same text to ``results/<name>.txt`` so the numbers survive
the pytest run.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:
    from ..core.result import RoundRecord

RESULTS_DIR = Path("results")


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table; floats rendered with one decimal like the paper."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered)) if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """One figure series as aligned x/y columns."""
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append(f"  {_cell(x):>10}  {_cell(y)}")
    return "\n".join(lines)


def format_quality_report(records: Iterable["RoundRecord"]) -> str:
    """Aggregate the rounds' data-quality reports into a short health text.

    Summarises how much of the stream was degraded (missing readings,
    masked sensors) and which sensors were masked most often — the
    operational "is my feed healthy" view of a degraded-mode run.  Rounds
    without a quality report (clean-feed mode) count as fully healthy.
    """
    records = list(records)
    total = len(records)
    reports = [r.quality for r in records if r.quality is not None]
    degraded = [q for q in reports if q.degraded]
    lines = [
        "data quality:",
        f"  rounds             {total}",
        f"  degraded rounds    {len(degraded)}"
        + (f" ({100.0 * len(degraded) / total:.1f}%)" if total else ""),
    ]
    if degraded:
        mean_missing = sum(q.missing_fraction for q in degraded) / len(degraded)
        lines.append(f"  mean missing frac  {mean_missing:.3f} (over degraded rounds)")
        masked_rounds: dict[int, int] = {}
        for q in degraded:
            for sensor in q.masked_sensors:
                masked_rounds[sensor] = masked_rounds.get(sensor, 0) + 1
        if masked_rounds:
            worst = sorted(masked_rounds.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
            listed = ", ".join(f"{s} ({c} rounds)" for s, c in worst)
            lines.append(f"  most masked        {listed}")
        else:
            lines.append("  most masked        none (no sensor fell below the mask threshold)")
    return "\n".join(lines)


def emit(name: str, text: str) -> None:
    """Print a benchmark's output and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def _cell(value: object) -> str:
    if isinstance(value, float):
        # Table-style one decimal for paper-scale values (e.g. "95.0"),
        # three significant digits for small parameters (e.g. "0.01").
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)
