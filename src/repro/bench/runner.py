"""Experiment runner shared by every benchmark module.

Running one method on one dataset is expensive (training, scoring, sweeps),
and several paper tables reuse the same runs (Table III, Table V and
Figure 5 all need every method's scores on the same four datasets).  The
runner therefore memoises ``(method, dataset, seed)`` runs in memory and on
disk under ``results/cache/`` — re-running a benchmark is free, and deleting
the cache directory forces a clean recomputation.

The number of repeats for stochastic methods defaults to 3 (the paper uses
10; see EXPERIMENTS.md) and can be overridden with the ``REPRO_REPEATS``
environment variable.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..baselines import make_detector
from ..baselines.cad_adapter import CADDetector
from ..core.config import CADConfig
from ..datasets import Dataset, load_dataset
from ..evaluation import best_f1

#: Datasets of the paper's Table III / V / Fig. 5 (PSM, SWaT, IS-1, IS-2).
TABLE3_DATASETS = ("psm-sim", "swat-sim", "is1-sim", "is2-sim")

_CACHE_DIR = Path(os.environ.get("REPRO_CACHE_DIR", "results/cache"))
_MEMORY_CACHE: dict[tuple[str, str, int], "MethodRun"] = {}


def n_repeats() -> int:
    """Repeats for stochastic methods (env override: REPRO_REPEATS)."""
    return max(1, int(os.environ.get("REPRO_REPEATS", "3")))


@dataclass(frozen=True)
class MethodRun:
    """One method's scores and timings on one dataset."""

    method: str
    dataset: str
    seed: int
    scores: np.ndarray
    fit_seconds: float
    score_seconds: float

    def f1(self, labels: np.ndarray, mode: str) -> float:
        return best_f1(self.scores, labels, mode)


def probe_rc_level(dataset: Dataset, n_rounds: int = 24) -> float:
    """Median normal-operation RC of the dataset's sensors.

    The normal RC level scales with the typical community size over
    ``n - 1`` (Definition 6), so a fixed theta cannot fit every sensor
    count: a useful theta must sit just below this level.  The probe runs a
    few warm-up rounds with ``theta = 1`` (outlier sets are irrelevant) and
    reads the RC distribution.
    """
    from ..core.detector import CAD
    from ..timeseries.windows import iter_windows

    config = CADConfig.suggest(
        dataset.test.length, dataset.n_sensors, k=dataset.recommended_k, theta=1.0
    )
    detector = CAD(config, dataset.n_sensors)
    for index, window in enumerate(iter_windows(dataset.history, detector.spec)):
        detector.process_window(window)
        if index + 1 >= n_rounds:
            break
    rc = detector.last_rc
    if rc is None:
        raise ValueError("history too short to probe the RC level")
    return float(np.median(rc))


_THETA_CACHE: dict[str, float] = {}


def tuned_cad_config(dataset: Dataset) -> CADConfig:
    """Grid-search CAD's theta on the dataset, as the paper's protocol does.

    The paper sweeps w, s, tau and theta per dataset (Section VI-A); theta
    is by far the most dataset-sensitive knob — it must sit just below the
    dataset's normal RC level, which scales with community size over
    ``n - 1``.  The harness probes that level and sweeps theta over
    fractions of it, keeping the best F1_DPA.  Deterministic, so the result
    is stable across runs and cached (in memory and under the cache dir —
    the sweep costs five full detection passes on the big datasets).
    """
    cached_theta = _load_cached_theta(dataset.name)
    if cached_theta is not None:
        return CADConfig.suggest(
            dataset.test.length,
            dataset.n_sensors,
            k=dataset.recommended_k,
            theta=cached_theta,
        )
    rc_level = probe_rc_level(dataset)
    best_theta, best_value = None, -1.0
    # The F1 peak sits just below the normal RC level; very wide networks
    # get a narrower sweep because each pass is expensive.
    fractions = (0.7, 0.85) if dataset.n_sensors >= 500 else (0.55, 0.7, 0.85, 1.0)
    for fraction in fractions:
        theta = min(0.95, max(0.01, fraction * rc_level))
        config = CADConfig.suggest(
            dataset.test.length,
            dataset.n_sensors,
            k=dataset.recommended_k,
            theta=theta,
        )
        detector = CADDetector(config)
        detector.fit(dataset.history)
        value = best_f1(detector.score(dataset.test), dataset.labels, "dpa")
        if value > best_value:
            best_theta, best_value = theta, value
    _store_cached_theta(dataset.name, best_theta)
    return CADConfig.suggest(
        dataset.test.length,
        dataset.n_sensors,
        k=dataset.recommended_k,
        theta=best_theta,
    )


def _theta_path(dataset_name: str) -> Path:
    return _CACHE_DIR / f"theta__{dataset_name}.txt"


def _load_cached_theta(dataset_name: str) -> float | None:
    if dataset_name in _THETA_CACHE:
        return _THETA_CACHE[dataset_name]
    path = _theta_path(dataset_name)
    if not path.exists():
        return None
    theta = float(path.read_text().strip())
    _THETA_CACHE[dataset_name] = theta
    return theta


def _store_cached_theta(dataset_name: str, theta: float) -> None:
    _THETA_CACHE[dataset_name] = theta
    _CACHE_DIR.mkdir(parents=True, exist_ok=True)
    _theta_path(dataset_name).write_text(f"{theta!r}\n")


def run_method(method: str, dataset_name: str, seed: int = 0) -> MethodRun:
    """Fit + score one method on one dataset, with two-level caching."""
    key = (method, dataset_name, seed)
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]
    cached = _load_cached(key)
    if cached is not None:
        _MEMORY_CACHE[key] = cached
        return cached

    dataset = load_dataset(dataset_name)
    if method == "CAD":
        detector = make_detector(method, seed=seed, cad_config=tuned_cad_config(dataset))
    else:
        detector = make_detector(method, seed=seed)
    start = time.perf_counter()
    detector.fit(dataset.history)
    fit_seconds = time.perf_counter() - start
    start = time.perf_counter()
    scores = detector.score(dataset.test)
    score_seconds = time.perf_counter() - start

    run = MethodRun(
        method=method,
        dataset=dataset_name,
        seed=seed,
        scores=scores,
        fit_seconds=fit_seconds,
        score_seconds=score_seconds,
    )
    _MEMORY_CACHE[key] = run
    _store_cached(key, run)
    return run


def run_repeats(method: str, dataset_name: str, deterministic: bool) -> list[MethodRun]:
    """All repeats of a method (one run when it is deterministic)."""
    if deterministic:
        return [run_method(method, dataset_name, seed=0)]
    return [run_method(method, dataset_name, seed=s) for s in range(n_repeats())]


def _cache_path(key: tuple[str, str, int]) -> Path:
    method, dataset, seed = key
    safe = method.replace("*", "star")
    return _CACHE_DIR / f"{safe}__{dataset}__{seed}.npz"


def _load_cached(key: tuple[str, str, int]) -> MethodRun | None:
    path = _cache_path(key)
    if not path.exists():
        return None
    with np.load(path) as archive:
        return MethodRun(
            method=key[0],
            dataset=key[1],
            seed=key[2],
            scores=archive["scores"],
            fit_seconds=float(archive["fit_seconds"]),
            score_seconds=float(archive["score_seconds"]),
        )


def _store_cached(key: tuple[str, str, int], run: MethodRun) -> None:
    _CACHE_DIR.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        _cache_path(key),
        scores=run.scores,
        fit_seconds=run.fit_seconds,
        score_seconds=run.score_seconds,
    )
