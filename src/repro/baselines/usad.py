"""USAD (Audibert et al., paper reference [9]) on the numpy substrate.

UnSupervised Anomaly Detection trains one encoder ``E`` with two decoders
``D1``/``D2`` in a two-phase adversarial scheme over flattened sliding
windows:

* phase 1 (autoencoding): both ``AE1 = D1∘E`` and ``AE2 = D2∘E`` minimise
  reconstruction error;
* phase 2 (adversarial): ``AE2`` is trained to *distinguish* real windows
  from ``AE1`` reconstructions while ``AE1`` tries to fool it.  Following
  the paper, the epoch-n losses are ``(1/n)·||W - AE1(W)||² +
  (1-1/n)·||W - AE2(AE1(W))||²`` for AE1 and ``(1/n)·||W - AE2(W)||² -
  (1-1/n)·||W - AE2(AE1(W))||²`` for AE2.

The anomaly score of a window is ``alpha·||W - AE1(W)||² +
beta·||W - AE2(AE1(W))||²``; point scores take the max over the windows
covering a point.  The original uses larger nets, GPU training and more
epochs — this keeps the architecture and objectives while shrinking scale
(DESIGN.md §3).
"""

from __future__ import annotations

import numpy as np

from ..neural.losses import per_row_squared_error
from ..neural.mlp import MLP
from ..neural.optim import Adam
from ..neural.training import iterate_minibatches
from ..timeseries.mts import MultivariateTimeSeries
from ..timeseries.normalization import MinMaxScaler
from .base import AnomalyDetector, normalize_scores


def _window_rows(values: np.ndarray, window: int) -> np.ndarray:
    """Flattened sliding windows, stride 1: shape (T - w + 1, n * w)."""
    n, length = values.shape
    if length < window:
        raise ValueError(f"series of length {length} shorter than window {window}")
    view = np.lib.stride_tricks.sliding_window_view(values, window, axis=1)
    # view: (n, T - w + 1, w) -> (T - w + 1, n * w)
    return view.transpose(1, 0, 2).reshape(length - window + 1, n * window)


class USAD(AnomalyDetector):
    """USAD with shared encoder and two adversarial decoders."""

    name = "USAD"
    deterministic = False

    def __init__(
        self,
        window: int = 8,
        latent: int = 16,
        hidden: int = 64,
        epochs: int = 15,
        batch_size: int = 128,
        lr: float = 1e-3,
        alpha: float = 0.5,
        beta: float = 0.5,
        seed: int = 0,
        max_train_windows: int = 4000,
    ):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if abs(alpha + beta - 1.0) > 1e-9:
            raise ValueError("alpha + beta must equal 1")
        self.window = window
        self.latent = latent
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.alpha = alpha
        self.beta = beta
        self.seed = seed
        self.max_train_windows = max_train_windows
        self._scaler: MinMaxScaler | None = None
        self._encoder: MLP | None = None
        self._decoder1: MLP | None = None
        self._decoder2: MLP | None = None

    def fit(self, train: MultivariateTimeSeries) -> "USAD":
        rng = np.random.default_rng(self.seed)
        self._scaler = MinMaxScaler.fit(train.values)
        windows = _window_rows(self._scaler.transform(train.values), self.window)
        if windows.shape[0] > self.max_train_windows:
            idx = np.linspace(0, windows.shape[0] - 1, self.max_train_windows).astype(int)
            windows = windows[idx]

        dim = windows.shape[1]
        self._encoder = MLP([dim, self.hidden, self.latent], rng, activation="relu")
        self._decoder1 = MLP(
            [self.latent, self.hidden, dim], rng, activation="relu",
            output_activation="sigmoid",
        )
        self._decoder2 = MLP(
            [self.latent, self.hidden, dim], rng, activation="relu",
            output_activation="sigmoid",
        )
        opt1 = Adam(
            self._encoder.parameters() + self._decoder1.parameters(),
            self._encoder.gradients() + self._decoder1.gradients(),
            lr=self.lr,
        )
        opt2 = Adam(
            self._encoder.parameters() + self._decoder2.parameters(),
            self._encoder.gradients() + self._decoder2.gradients(),
            lr=self.lr,
        )

        for epoch in range(1, self.epochs + 1):
            weight_new = 1.0 / epoch
            weight_adv = 1.0 - weight_new
            for batch in iterate_minibatches(windows, self.batch_size, rng):
                size = batch.size

                # --- AE1 update: reconstruct + fool AE2 -----------------
                opt1.zero_grad()
                z = self._encoder.forward(batch)
                w1 = self._decoder1.forward(z)
                z1 = self._encoder.forward(w1)
                w2 = self._decoder2.forward(z1)
                grad_w2 = weight_adv * 2.0 * (w2 - batch) / size
                grad_w1_from_adv = self._encoder.backward(
                    self._decoder2.backward(grad_w2)
                )
                # Re-run the first pass so cached activations match.
                z = self._encoder.forward(batch)
                w1 = self._decoder1.forward(z)
                grad_w1 = weight_new * 2.0 * (w1 - batch) / size + grad_w1_from_adv
                self._encoder.backward(self._decoder1.backward(grad_w1))
                opt1.step()

                # --- AE2 update: reconstruct real, expose AE1 fakes -----
                opt2.zero_grad()
                z = self._encoder.forward(batch)
                w1 = self._decoder1.forward(z).copy()  # treated as constant
                z2 = self._encoder.forward(batch)
                w2_real = self._decoder2.forward(z2)
                grad_real = weight_new * 2.0 * (w2_real - batch) / size
                self._encoder.backward(self._decoder2.backward(grad_real))
                z1 = self._encoder.forward(w1)
                w2_fake = self._decoder2.forward(z1)
                grad_fake = -weight_adv * 2.0 * (w2_fake - batch) / size
                self._encoder.backward(self._decoder2.backward(grad_fake))
                opt2.step()
        return self

    def score(self, test: MultivariateTimeSeries) -> np.ndarray:
        self._require_fitted("_encoder")
        scaled = self._scaler.transform(test.values)
        windows = _window_rows(scaled, self.window)
        z = self._encoder.forward(windows)
        w1 = self._decoder1.forward(z)
        w2 = self._decoder2.forward(self._encoder.forward(w1))
        window_scores = self.alpha * per_row_squared_error(
            w1, windows
        ) + self.beta * per_row_squared_error(w2, windows)

        # A window's score is assigned to every point it covers (max).
        length = test.length
        points = np.zeros(length)
        for offset in range(self.window):
            segment = slice(offset, offset + window_scores.size)
            np.maximum(points[segment], window_scores, out=points[segment])
        return normalize_scores(points)
