"""PCA reconstruction-error detector (paper references [4], [76]).

The paper's related work lists PCA-based detection among the classic
data-mining methods (project onto a low-dimensional subspace fitted on
normal data; score by the deviation along — mostly — the discarded
directions).  Not part of the benchmarked nine, but a useful extra
comparator and a good sanity baseline.
"""

from __future__ import annotations

import numpy as np

from ..timeseries.mts import MultivariateTimeSeries
from ..timeseries.normalization import StandardScaler
from .base import AnomalyDetector, normalize_scores


class PCADetector(AnomalyDetector):
    """Score time points by squared reconstruction error after PCA.

    Parameters
    ----------
    variance_fraction:
        Keep the smallest number of principal components explaining at
        least this fraction of training variance.
    """

    name = "PCA"
    deterministic = True

    def __init__(self, variance_fraction: float = 0.9):
        if not 0.0 < variance_fraction <= 1.0:
            raise ValueError(
                f"variance_fraction must be in (0, 1], got {variance_fraction}"
            )
        self.variance_fraction = variance_fraction
        self._scaler: StandardScaler | None = None
        self._components: np.ndarray | None = None

    @property
    def n_components(self) -> int | None:
        """Retained component count after fit (None before)."""
        return None if self._components is None else self._components.shape[0]

    def fit(self, train: MultivariateTimeSeries) -> "PCADetector":
        self._scaler = StandardScaler.fit(train.values)
        points = self._scaler.transform(train.values).T  # (T, n)
        centered = points - points.mean(axis=0)
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        explained = singular**2
        ratio = np.cumsum(explained) / max(explained.sum(), 1e-12)
        keep = int(np.searchsorted(ratio, self.variance_fraction) + 1)
        keep = min(keep, vt.shape[0])
        self._components = vt[:keep]
        return self

    def score(self, test: MultivariateTimeSeries) -> np.ndarray:
        self._require_fitted("_components")
        points = self._scaler.transform(test.values).T
        projected = points @ self._components.T @ self._components
        residual = points - projected
        return normalize_scores(np.sum(residual * residual, axis=1))
