"""SAND and its online variant SAND* (Boniol et al., paper reference [14]).

SAND maintains a weighted set of subsequence centroids obtained with
k-Shape clustering and scores each subsequence by its shape-based distance
to the nearest centroid.  The offline variant clusters the training
segment once; SAND* keeps updating the centroid set batch by batch with an
update rate ``alpha``, merging each batch's clusters into the nearest
existing centroid (weighted SBD-aligned average) or adding new ones.

Simplifications versus the original (DESIGN.md §3): scoring uses the
plain nearest-centroid SBD (weights drive the updates, not the score), and
subsequences are sampled with a stride of ``pattern_length // 4`` for
tractability.
"""

from __future__ import annotations

import numpy as np

from ..clustering.kshape import kshape
from ..clustering.sbd import sbd, sbd_to_reference, shift_series
from ..timeseries.normalization import zscore
from .univariate import UnivariateDetector, spread_to_points, subsequences


class SAND(UnivariateDetector):
    """Offline SAND: k-Shape centroids from the training segment."""

    name = "SAND"
    deterministic = False

    def __init__(
        self,
        pattern_length: int = 32,
        n_clusters: int = 4,
        seed: int = 0,
        max_train_subsequences: int = 250,
    ):
        if pattern_length < 4:
            raise ValueError(f"pattern_length must be >= 4, got {pattern_length}")
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.pattern_length = pattern_length
        self.n_clusters = n_clusters
        self.seed = seed
        self.max_train_subsequences = max_train_subsequences
        self._centroids: np.ndarray | None = None
        self._weights: np.ndarray | None = None

    @property
    def stride(self) -> int:
        return max(1, self.pattern_length // 4)

    def _training_subsequences(self, series: np.ndarray) -> np.ndarray:
        subs = subsequences(series, self.pattern_length, self.stride)
        if subs.shape[0] > self.max_train_subsequences:
            idx = np.linspace(0, subs.shape[0] - 1, self.max_train_subsequences).astype(int)
            subs = subs[idx]
        return np.vstack([zscore(row) for row in subs])

    def fit(self, train: np.ndarray) -> "SAND":
        subs = self._training_subsequences(np.asarray(train, dtype=np.float64))
        rng = np.random.default_rng(self.seed)
        k = min(self.n_clusters, subs.shape[0])
        result = kshape(subs, k, rng)
        self._centroids = result.centroids
        self._weights = np.bincount(result.labels, minlength=k).astype(np.float64)
        return self

    def _subsequence_scores(self, series: np.ndarray) -> np.ndarray:
        subs = subsequences(series, self.pattern_length, self.stride)
        normalised = np.vstack([zscore(row) for row in subs])
        distance_matrix = np.column_stack(
            [sbd_to_reference(normalised, c)[0] for c in self._centroids]
        )
        return distance_matrix.min(axis=1)

    def score(self, test: np.ndarray) -> np.ndarray:
        if self._centroids is None:
            raise RuntimeError(f"{self.name}: fit() must be called before score()")
        test = np.asarray(test, dtype=np.float64)
        window_scores = self._subsequence_scores(test)
        return spread_to_points(window_scores, test.size, self.pattern_length, self.stride)


class StreamingSAND(SAND):
    """SAND*: scores batches online, then folds them into the model.

    Parameters
    ----------
    alpha:
        Update rate for merging batch centroids into existing ones
        (paper setting: 0.5).
    batch_fraction:
        Fraction of the test series per batch (paper setting: 0.1).
    max_centroids:
        Cap on the centroid set; the lightest centroid is evicted first.
    """

    name = "SAND*"
    deterministic = False

    def __init__(
        self,
        pattern_length: int = 32,
        n_clusters: int = 4,
        seed: int = 0,
        alpha: float = 0.5,
        batch_fraction: float = 0.1,
        max_centroids: int = 16,
        max_train_subsequences: int = 250,
    ):
        super().__init__(pattern_length, n_clusters, seed, max_train_subsequences)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < batch_fraction <= 1.0:
            raise ValueError(f"batch_fraction must be in (0, 1], got {batch_fraction}")
        if max_centroids < n_clusters:
            raise ValueError("max_centroids must be >= n_clusters")
        self.alpha = alpha
        self.batch_fraction = batch_fraction
        self.max_centroids = max_centroids

    def _merge_batch(self, batch_subs: np.ndarray, rng: np.random.Generator) -> None:
        """Cluster a batch and fold its centroids into the model."""
        k = min(self.n_clusters, batch_subs.shape[0])
        if k < 1:
            return
        result = kshape(batch_subs, k, rng)
        batch_weights = np.bincount(result.labels, minlength=k).astype(np.float64)
        merge_threshold = 0.3  # SBD below which shapes are "the same"
        centroids = list(self._centroids)
        weights = list(self._weights)
        for centroid, weight in zip(result.centroids, batch_weights):
            if weight == 0:
                continue
            distances = [sbd(existing, centroid) for existing in centroids]
            best = int(np.argmin([d for d, _ in distances]))
            distance, shift = distances[best]
            if distance <= merge_threshold:
                aligned = shift_series(centroid, shift)
                centroids[best] = (1 - self.alpha) * centroids[best] + self.alpha * aligned
                weights[best] += weight
            else:
                centroids.append(centroid)
                weights.append(weight)
        while len(centroids) > self.max_centroids:
            drop = int(np.argmin(weights))
            centroids.pop(drop)
            weights.pop(drop)
        self._centroids = np.vstack(centroids)
        self._weights = np.array(weights)

    def score(self, test: np.ndarray) -> np.ndarray:
        if self._centroids is None:
            raise RuntimeError(f"{self.name}: fit() must be called before score()")
        test = np.asarray(test, dtype=np.float64)
        rng = np.random.default_rng(self.seed + 1)
        batch_size = max(self.pattern_length * 2, int(test.size * self.batch_fraction))
        points = np.zeros(test.size)
        for start in range(0, test.size, batch_size):
            stop = min(start + batch_size, test.size)
            if stop - start <= self.pattern_length:
                # Tail shorter than one subsequence: reuse the last score.
                points[start:stop] = points[start - 1] if start else 0.0
                continue
            batch = test[start:stop]
            window_scores = self._subsequence_scores(batch)
            points[start:stop] = spread_to_points(
                window_scores, stop - start, self.pattern_length, self.stride
            )
            batch_subs = np.vstack(
                [zscore(r) for r in subsequences(batch, self.pattern_length, self.stride)]
            )
            self._merge_batch(batch_subs, rng)
        return points
