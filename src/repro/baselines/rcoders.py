"""RCoders (Abdulaal et al., paper references [2], [3]) — simplified.

The original "robust coders" learn synchronised latent representations of
asynchronous MTS and localise anomalies from per-channel reconstruction
errors.  This reproduction keeps the two properties the paper's experiments
rely on — stochastic training and *per-sensor* anomaly attribution — with a
bootstrap ensemble of point-wise autoencoders:

* each ensemble member trains on a bootstrap sample of training time points
  (vectors in R^n), reconstructing all sensors through a small bottleneck;
* the per-sensor anomaly score of a test point is the ensemble-median
  squared reconstruction error of that sensor, normalised by the sensor's
  training error scale;
* the point score is the mean over sensors (the paper's rule for extending
  per-channel scores to the MTS level).

See DESIGN.md §3 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from ..neural.mlp import MLP
from ..neural.training import train_reconstruction
from ..timeseries.mts import MultivariateTimeSeries
from ..timeseries.normalization import MinMaxScaler
from .base import AnomalyDetector, normalize_scores


class RCoders(AnomalyDetector):
    """Bootstrap autoencoder ensemble with per-sensor error attribution."""

    name = "RCoders"
    deterministic = False

    def __init__(
        self,
        n_members: int = 3,
        latent_fraction: float = 0.3,
        epochs: int = 20,
        batch_size: int = 128,
        lr: float = 1e-3,
        seed: int = 0,
        max_train_points: int = 4000,
    ):
        if n_members < 1:
            raise ValueError(f"n_members must be >= 1, got {n_members}")
        if not 0.05 <= latent_fraction <= 1.0:
            raise ValueError(
                f"latent_fraction must be in [0.05, 1], got {latent_fraction}"
            )
        self.n_members = n_members
        self.latent_fraction = latent_fraction
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.max_train_points = max_train_points
        self._scaler: MinMaxScaler | None = None
        self._members: list[MLP] | None = None
        self._error_scale: np.ndarray | None = None

    def fit(self, train: MultivariateTimeSeries) -> "RCoders":
        rng = np.random.default_rng(self.seed)
        self._scaler = MinMaxScaler.fit(train.values)
        points = self._scaler.transform(train.values).T  # (T, n)
        if points.shape[0] > self.max_train_points:
            idx = np.linspace(0, points.shape[0] - 1, self.max_train_points).astype(int)
            points = points[idx]

        n = points.shape[1]
        latent = max(2, int(round(self.latent_fraction * n)))
        hidden = max(latent + 1, n // 2)
        self._members = []
        for _ in range(self.n_members):
            bootstrap = points[rng.integers(0, points.shape[0], size=points.shape[0])]
            member = MLP(
                [n, hidden, latent, hidden, n], rng,
                activation="relu", output_activation="sigmoid",
            )
            train_reconstruction(
                member, bootstrap, rng,
                epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
            )
            self._members.append(member)

        # Per-sensor training error scale for normalised attribution.
        errors = self._ensemble_errors(points)
        self._error_scale = np.maximum(np.median(errors, axis=0), 1e-9)
        return self

    def _ensemble_errors(self, points: np.ndarray) -> np.ndarray:
        """Ensemble-median squared error per (point, sensor)."""
        stacked = np.stack(
            [(member.forward(points) - points) ** 2 for member in self._members]
        )
        return np.median(stacked, axis=0)

    def score(self, test: MultivariateTimeSeries) -> np.ndarray:
        matrix = self.sensor_scores(test)
        return normalize_scores(matrix.mean(axis=0))

    def sensor_scores(self, test: MultivariateTimeSeries) -> np.ndarray:
        """Per-sensor normalised reconstruction errors, (n_sensors, length)."""
        self._require_fitted("_members")
        points = self._scaler.transform(test.values).T
        errors = self._ensemble_errors(points) / self._error_scale
        return errors.T
