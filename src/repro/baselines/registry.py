"""Factory for the paper's ten methods (CAD + nine baselines).

``make_detector(name, seed=..., ...)`` builds a ready-to-fit detector with
the paper's settings.  Stochastic methods take the seed; deterministic
methods ignore it (their output never varies — Table VIII).
"""

from __future__ import annotations

from typing import Callable

from ..core.config import CADConfig
from .base import AnomalyDetector
from .cad_adapter import CADDetector
from .ecod import ECOD
from .hbos import HBOS
from .iforest import IsolationForest
from .lof import LOF
from .norma import NormA
from .pca import PCADetector
from .rcoders import RCoders
from .s2g import Series2Graph
from .sand import SAND, StreamingSAND
from .univariate import UnivariateAdapter
from .usad import USAD

#: Order used throughout the paper's tables.
METHOD_NAMES = (
    "CAD",
    "LOF",
    "ECOD",
    "IForest",
    "USAD",
    "RCoders",
    "S2G",
    "SAND",
    "SAND*",
    "NormA",
)

MTS_METHOD_NAMES = ("CAD", "LOF", "ECOD", "IForest", "USAD", "RCoders")
UTS_METHOD_NAMES = ("S2G", "SAND", "SAND*", "NormA")

#: Extra comparators beyond the paper's nine (related-work classics).
EXTRA_METHOD_NAMES = ("PCA", "HBOS")


def make_detector(
    name: str,
    seed: int = 0,
    cad_config: CADConfig | None = None,
) -> AnomalyDetector:
    """Build one of the paper's methods by name.

    Parameters
    ----------
    name:
        One of :data:`METHOD_NAMES`.
    seed:
        Seed for stochastic methods (IForest, USAD, RCoders, SAND, SAND*,
        NormA); ignored by the deterministic ones.
    cad_config:
        Optional explicit CAD configuration (otherwise suggested from the
        training data at fit time).
    """
    if name == "CAD":
        return CADDetector(config=cad_config)
    if name == "LOF":
        return LOF()
    if name == "PCA":
        return PCADetector()
    if name == "HBOS":
        return HBOS()
    if name == "ECOD":
        return ECOD()
    if name == "IForest":
        return IsolationForest(seed=seed)
    if name == "USAD":
        return USAD(seed=seed)
    if name == "RCoders":
        return RCoders(seed=seed)
    if name == "S2G":
        return UnivariateAdapter(
            lambda pattern, _i: Series2Graph(pattern_length=pattern),
            name="S2G",
            deterministic=True,
        )
    if name == "SAND":
        return UnivariateAdapter(
            lambda pattern, i: SAND(pattern_length=pattern, seed=seed * 1000 + i),
            name="SAND",
            deterministic=False,
        )
    if name == "SAND*":
        return UnivariateAdapter(
            lambda pattern, i: StreamingSAND(pattern_length=pattern, seed=seed * 1000 + i),
            name="SAND*",
            deterministic=False,
        )
    if name == "NormA":
        return UnivariateAdapter(
            lambda pattern, i: NormA(pattern_length=pattern, seed=seed * 1000 + i),
            name="NormA",
            deterministic=False,
        )
    raise KeyError(
        f"unknown method {name!r}; known: "
        f"{', '.join(METHOD_NAMES + EXTRA_METHOD_NAMES)}"
    )


def deterministic_methods() -> tuple[str, ...]:
    """The four deterministic methods of Table VIII."""
    return ("CAD", "LOF", "ECOD", "S2G")
