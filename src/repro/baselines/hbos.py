"""HBOS — Histogram-Based Outlier Score (paper reference [30]).

Per-dimension histograms are fitted on training data; a point's score sums
the negative log densities of its per-dimension bins.  Fast, deterministic,
and a classic member of the data-mining family the paper compares against
(offered here as an extra comparator beyond the benchmarked nine).
"""

from __future__ import annotations

import numpy as np

from ..timeseries.mts import MultivariateTimeSeries
from .base import AnomalyDetector, normalize_scores


class HBOS(AnomalyDetector):
    """Histogram-based outlier scoring over MTS time points.

    Parameters
    ----------
    n_bins:
        Histogram bins per dimension.
    smoothing:
        Additive count smoothing so unseen bins get a finite (high) score.
    """

    name = "HBOS"
    deterministic = True

    def __init__(self, n_bins: int = 20, smoothing: float = 0.5):
        if n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {n_bins}")
        if smoothing <= 0:
            raise ValueError(f"smoothing must be > 0, got {smoothing}")
        self.n_bins = n_bins
        self.smoothing = smoothing
        self._edges: list[np.ndarray] | None = None
        self._log_density: list[np.ndarray] | None = None

    def fit(self, train: MultivariateTimeSeries) -> "HBOS":
        self._edges = []
        self._log_density = []
        for row in train.values:
            low, high = float(row.min()), float(row.max())
            if high - low <= 1e-12:
                high = low + 1.0
            edges = np.linspace(low, high, self.n_bins + 1)
            counts, _ = np.histogram(row, bins=edges)
            density = counts + self.smoothing
            density = density / density.sum()
            self._edges.append(edges)
            self._log_density.append(np.log(density))
        return self

    def score(self, test: MultivariateTimeSeries) -> np.ndarray:
        self._require_fitted("_edges")
        if test.n_sensors != len(self._edges):
            raise ValueError(
                f"fitted on {len(self._edges)} sensors, got {test.n_sensors}"
            )
        total = np.zeros(test.length)
        for row, edges, log_density in zip(test.values, self._edges, self._log_density):
            bins = np.clip(np.searchsorted(edges, row, side="right") - 1, 0, self.n_bins - 1)
            total -= log_density[bins]
        return normalize_scores(total)
