"""NormA (Boniol et al., paper reference [12]) — normal-model scoring.

NormA summarises normal behaviour as a weighted set of motifs: recurring
subsequences are clustered (k-means on z-normalised subsequences here) and
each cluster contributes its centroid with a weight proportional to its
coverage.  A test subsequence's anomaly score is the weighted average of
its distances to the normal motifs — common behaviour is close to the
heavy motifs, anomalies are far from all of them.
"""

from __future__ import annotations

import numpy as np

from ..clustering.kmeans import kmeans
from ..timeseries.normalization import zscore
from .univariate import UnivariateDetector, spread_to_points, subsequences


class NormA(UnivariateDetector):
    """Normal-model anomaly scoring for one series.

    Parameters
    ----------
    pattern_length:
        Base pattern length ``l``; the normal model uses motifs of length
        ``model_multiple * l`` (the paper sets the normal-model length to
        ``4 l``, with ``l`` from the autocorrelation function).
    n_motifs:
        Number of clusters forming the normal model.
    """

    name = "NormA"
    deterministic = False

    def __init__(
        self,
        pattern_length: int = 32,
        n_motifs: int = 8,
        model_multiple: int = 4,
        seed: int = 0,
        max_train_subsequences: int = 600,
    ):
        if pattern_length < 4:
            raise ValueError(f"pattern_length must be >= 4, got {pattern_length}")
        if n_motifs < 1:
            raise ValueError(f"n_motifs must be >= 1, got {n_motifs}")
        if model_multiple < 1:
            raise ValueError(f"model_multiple must be >= 1, got {model_multiple}")
        self.pattern_length = pattern_length
        self.n_motifs = n_motifs
        self.model_multiple = model_multiple
        self.seed = seed
        self.max_train_subsequences = max_train_subsequences
        self._motifs: np.ndarray | None = None
        self._weights: np.ndarray | None = None

    @property
    def motif_length(self) -> int:
        return self.pattern_length * self.model_multiple

    @property
    def stride(self) -> int:
        return max(1, self.pattern_length // 2)

    def fit(self, train: np.ndarray) -> "NormA":
        train = np.asarray(train, dtype=np.float64)
        length = min(self.motif_length, max(4, train.size // 4))
        self._fitted_length = length
        subs = subsequences(train, length, self.stride)
        if subs.shape[0] > self.max_train_subsequences:
            idx = np.linspace(0, subs.shape[0] - 1, self.max_train_subsequences).astype(int)
            subs = subs[idx]
        normalised = np.vstack([zscore(row) for row in subs])
        rng = np.random.default_rng(self.seed)
        k = min(self.n_motifs, normalised.shape[0])
        result = kmeans(normalised, k, rng)
        self._motifs = result.centroids
        sizes = result.cluster_sizes().astype(np.float64)
        self._weights = sizes / sizes.sum()
        return self

    def score(self, test: np.ndarray) -> np.ndarray:
        if self._motifs is None:
            raise RuntimeError("NormA: fit() must be called before score()")
        test = np.asarray(test, dtype=np.float64)
        length = self._fitted_length
        if test.size <= length:
            raise ValueError(
                f"test series of {test.size} points shorter than motif length {length}"
            )
        subs = subsequences(test, length, self.stride)
        normalised = np.vstack([zscore(row) for row in subs])
        # Euclidean distances to all motifs at once.
        distances = np.sqrt(
            np.maximum(
                np.sum(normalised * normalised, axis=1)[:, None]
                - 2.0 * normalised @ self._motifs.T
                + np.sum(self._motifs * self._motifs, axis=1)[None, :],
                0.0,
            )
        )
        window_scores = distances @ self._weights
        return spread_to_points(window_scores, test.size, length, self.stride)
