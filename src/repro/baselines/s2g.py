"""Series2Graph (Boniol & Palpanas, paper reference [13]) — simplified.

S2G embeds overlapping subsequences, summarises the embedding trajectory as
a graph whose nodes are recurring states and whose edge weights count
observed transitions, then scores a subsequence by how well-trodden its
path is: rare transitions mean anomalies.

This reproduction keeps that pipeline in a compact, deterministic form
(DESIGN.md §3):

1. subsequences of length ``l`` (stride 1) are smoothed and projected onto
   their first two principal components (PCA fitted on the training
   segment so scoring is stable);
2. each subsequence becomes a node id by quantising the angle of its
   (PC1, PC2) point into ``n_bins`` sectors across ``n_rings`` radial
   bands;
3. consecutive subsequences add weight to the directed edge between their
   nodes, with the graph built on the scored series itself (S2G is
   unsupervised on its input);
4. the normality of position ``t`` averages the edge weights along the
   local path; the anomaly score is the inverted, normalised normality.
"""

from __future__ import annotations

import numpy as np

from .univariate import UnivariateDetector, subsequences


def _smooth(series: np.ndarray, width: int) -> np.ndarray:
    if width <= 1:
        return series
    kernel = np.ones(width) / width
    return np.convolve(series, kernel, mode="same")


class Series2Graph(UnivariateDetector):
    """Graph-based subsequence anomaly scoring for one series."""

    name = "S2G"
    deterministic = True

    def __init__(
        self,
        pattern_length: int = 32,
        n_bins: int = 36,
        n_rings: int = 3,
        smooth_width: int = 3,
    ):
        if pattern_length < 4:
            raise ValueError(f"pattern_length must be >= 4, got {pattern_length}")
        if n_bins < 4 or n_rings < 1:
            raise ValueError("need n_bins >= 4 and n_rings >= 1")
        self.pattern_length = pattern_length
        self.n_bins = n_bins
        self.n_rings = n_rings
        self.smooth_width = smooth_width
        self._components: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._radius_edges: np.ndarray | None = None

    def fit(self, train: np.ndarray) -> "Series2Graph":
        train = _smooth(np.asarray(train, dtype=np.float64), self.smooth_width)
        if train.size <= self.pattern_length + 2:
            raise ValueError("training series too short for the pattern length")
        subs = subsequences(train, self.pattern_length)
        self._mean = subs.mean(axis=0)
        centered = subs - self._mean
        # Deterministic PCA via SVD; sign fixed by the largest component.
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        components = vt[:2]
        for i in range(2):
            pivot = np.argmax(np.abs(components[i]))
            if components[i, pivot] < 0:
                components[i] = -components[i]
        self._components = components
        projected = centered @ components.T
        radius = np.hypot(projected[:, 0], projected[:, 1])
        quantiles = np.linspace(0, 1, self.n_rings + 1)[1:-1]
        self._radius_edges = (
            np.quantile(radius, quantiles) if quantiles.size else np.empty(0)
        )
        return self

    def _node_ids(self, series: np.ndarray) -> np.ndarray:
        subs = subsequences(series, self.pattern_length)
        projected = (subs - self._mean) @ self._components.T
        angle = np.arctan2(projected[:, 1], projected[:, 0])
        sector = ((angle + np.pi) / (2 * np.pi) * self.n_bins).astype(int)
        sector = np.clip(sector, 0, self.n_bins - 1)
        radius = np.hypot(projected[:, 0], projected[:, 1])
        ring = np.searchsorted(self._radius_edges, radius)
        return ring * self.n_bins + sector

    def score(self, test: np.ndarray) -> np.ndarray:
        if self._components is None:
            raise RuntimeError("S2G: fit() must be called before score()")
        test = _smooth(np.asarray(test, dtype=np.float64), self.smooth_width)
        nodes = self._node_ids(test)
        n_nodes = self.n_bins * self.n_rings
        weights = np.zeros((n_nodes, n_nodes))
        for a, b in zip(nodes[:-1], nodes[1:]):
            weights[a, b] += 1.0

        # Normality of each transition; rare transitions score low.
        transition = weights[nodes[:-1], nodes[1:]]
        # Average transition weight over the subsequence-length local path.
        window = self.pattern_length
        kernel = np.ones(window) / window
        path_normality = np.convolve(transition, kernel, mode="same")

        # Back to per-point scores: a point inherits the worst (most
        # anomalous) normality of the transitions around it.
        scores = np.zeros(test.size)
        counts = np.zeros(test.size)
        anomaly = 1.0 / (1.0 + path_normality)
        for offset, value in enumerate(anomaly):
            stop = min(offset + window, test.size)
            segment = slice(offset, stop)
            np.maximum(scores[segment], value, out=scores[segment])
            counts[segment] += 1
        return scores
