"""Univariate detector interface and the MTS adapter.

The paper extends UTS methods (S2G, SAND, SAND*, NormA) to the MTS setting
by running them on each sensor's series and "treating the mean of the
abnormal scores as the output" (Section VI-A).  :class:`UnivariateAdapter`
implements exactly that around any :class:`UnivariateDetector`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from ..timeseries.mts import MultivariateTimeSeries
from ..timeseries.periodicity import estimate_mts_period
from .base import AnomalyDetector, normalize_scores


class UnivariateDetector(ABC):
    """Scores a single 1-D series; the adapter fans it out over sensors."""

    name: str = "uts"
    deterministic: bool = True

    @abstractmethod
    def fit(self, train: np.ndarray) -> "UnivariateDetector":
        """Consume the sensor's training series."""

    @abstractmethod
    def score(self, test: np.ndarray) -> np.ndarray:
        """Anomaly score per test point (raw scale; adapter normalises)."""


def subsequences(series: np.ndarray, length: int, stride: int = 1) -> np.ndarray:
    """Sliding subsequences of a 1-D series as an ``(m, length)`` matrix."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("subsequences expects a 1-D series")
    if length < 2 or length > series.size:
        raise ValueError(
            f"subsequence length {length} invalid for series of {series.size}"
        )
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    view = np.lib.stride_tricks.sliding_window_view(series, length)
    return view[::stride].copy()


def spread_to_points(
    window_scores: np.ndarray, length: int, window: int, stride: int
) -> np.ndarray:
    """Maximum-pool per-window scores back onto time points."""
    points = np.zeros(length)
    for w_index, value in enumerate(window_scores):
        start = w_index * stride
        stop = min(start + window, length)
        np.maximum(points[start:stop], value, out=points[start:stop])
    return points


class UnivariateAdapter(AnomalyDetector):
    """Run a UTS method per sensor and average the normalised scores.

    Parameters
    ----------
    factory:
        Callable ``(pattern_length, sensor_index) -> UnivariateDetector``.
        The shared pattern length is estimated from the training segment's
        autocorrelation (paper Section VI-A).
    name:
        Display name of the wrapped method.
    deterministic:
        Whether the wrapped method is deterministic.
    """

    def __init__(
        self,
        factory: Callable[[int, int], UnivariateDetector],
        name: str,
        deterministic: bool,
        min_pattern: int = 8,
        max_pattern: int = 128,
    ):
        self._factory = factory
        self.name = name
        self.deterministic = deterministic
        self.min_pattern = min_pattern
        self.max_pattern = max_pattern
        self._detectors: list[UnivariateDetector] | None = None
        self._pattern_length: int | None = None

    @property
    def pattern_length(self) -> int | None:
        """Shared pattern length after fit (None before)."""
        return self._pattern_length

    def fit(self, train: MultivariateTimeSeries) -> "UnivariateAdapter":
        pattern = estimate_mts_period(
            train.values, min_period=self.min_pattern, default=32
        )
        pattern = int(np.clip(pattern, self.min_pattern, self.max_pattern))
        self._pattern_length = pattern
        self._detectors = []
        for index in range(train.n_sensors):
            detector = self._factory(pattern, index)
            detector.fit(train.values[index])
            self._detectors.append(detector)
        return self

    def score(self, test: MultivariateTimeSeries) -> np.ndarray:
        self._require_fitted("_detectors")
        if test.n_sensors != len(self._detectors):
            raise ValueError(
                f"fitted on {len(self._detectors)} sensors, got {test.n_sensors}"
            )
        total = np.zeros(test.length)
        for detector, row in zip(self._detectors, test.values):
            total += normalize_scores(detector.score(row))
        return normalize_scores(total / len(self._detectors))
