"""ECOD (Li et al., paper reference [48]), from scratch.

ECOD estimates per-dimension empirical cumulative distribution functions and
scores a point by the aggregated negative log tail probabilities.  The
skewness of each dimension decides which tail matters; the final score is
the maximum of the left-only, right-only and skewness-corrected aggregates,
exactly as in the original paper.

ECOD is deterministic, needs no hyper-parameters, and its per-dimension
contributions give a natural per-sensor attribution — one of only two
baselines the paper credits with abnormal-sensor output.
"""

from __future__ import annotations

import numpy as np

from ..timeseries.mts import MultivariateTimeSeries
from .base import AnomalyDetector, normalize_scores


def _ecdf_tails(train_column: np.ndarray, test_column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Left/right tail probabilities of test values under a train ECDF."""
    sorted_train = np.sort(train_column)
    n = sorted_train.size
    # P(X <= x) with the +1 smoothing ECOD uses to avoid log(0).
    left = (np.searchsorted(sorted_train, test_column, side="right") + 1.0) / (n + 2.0)
    right = (n - np.searchsorted(sorted_train, test_column, side="left") + 1.0) / (n + 2.0)
    return left, right


def _skewness(column: np.ndarray) -> float:
    centered = column - column.mean()
    m2 = np.mean(centered**2)
    if m2 <= 1e-18:
        return 0.0
    return float(np.mean(centered**3) / m2**1.5)


class ECOD(AnomalyDetector):
    """ECOD anomaly scores with per-sensor attribution."""

    name = "ECOD"
    deterministic = True

    def __init__(self) -> None:
        self._train: np.ndarray | None = None
        self._skew: np.ndarray | None = None

    def fit(self, train: MultivariateTimeSeries) -> "ECOD":
        self._train = train.values.copy()
        self._skew = np.array([_skewness(row) for row in self._train])
        return self

    def _dimensional_scores(self, test: MultivariateTimeSeries) -> tuple[np.ndarray, ...]:
        """(left, right, corrected) per-dimension -log tail probabilities."""
        self._require_fitted("_train")
        n_sensors, length = test.values.shape
        if n_sensors != self._train.shape[0]:
            raise ValueError(
                f"fitted on {self._train.shape[0]} sensors, got {n_sensors}"
            )
        left = np.empty((n_sensors, length))
        right = np.empty((n_sensors, length))
        for i in range(n_sensors):
            tail_left, tail_right = _ecdf_tails(self._train[i], test.values[i])
            left[i] = -np.log(tail_left)
            right[i] = -np.log(tail_right)
        corrected = np.where(self._skew[:, None] < 0, left, right)
        return left, right, corrected

    def score(self, test: MultivariateTimeSeries) -> np.ndarray:
        left, right, corrected = self._dimensional_scores(test)
        aggregate = np.maximum.reduce(
            [left.sum(axis=0), right.sum(axis=0), corrected.sum(axis=0)]
        )
        return normalize_scores(aggregate)

    def sensor_scores(self, test: MultivariateTimeSeries) -> np.ndarray:
        """Per-sensor skewness-corrected tail scores (n_sensors, length)."""
        _, _, corrected = self._dimensional_scores(test)
        return corrected
