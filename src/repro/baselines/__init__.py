"""The paper's nine benchmark methods plus CAD behind one interface."""

from .base import AnomalyDetector, normalize_scores, sensors_from_scores
from .cad_adapter import CADDetector
from .ecod import ECOD
from .hbos import HBOS
from .iforest import IsolationForest, average_path_length
from .lof import LOF
from .norma import NormA
from .pca import PCADetector
from .rcoders import RCoders
from .registry import (
    EXTRA_METHOD_NAMES,
    METHOD_NAMES,
    MTS_METHOD_NAMES,
    UTS_METHOD_NAMES,
    deterministic_methods,
    make_detector,
)
from .s2g import Series2Graph
from .sand import SAND, StreamingSAND
from .univariate import (
    UnivariateAdapter,
    UnivariateDetector,
    spread_to_points,
    subsequences,
)
from .usad import USAD

__all__ = [
    "AnomalyDetector",
    "normalize_scores",
    "sensors_from_scores",
    "CADDetector",
    "LOF",
    "ECOD",
    "HBOS",
    "PCADetector",
    "IsolationForest",
    "average_path_length",
    "USAD",
    "RCoders",
    "Series2Graph",
    "SAND",
    "StreamingSAND",
    "NormA",
    "UnivariateDetector",
    "UnivariateAdapter",
    "subsequences",
    "spread_to_points",
    "METHOD_NAMES",
    "EXTRA_METHOD_NAMES",
    "MTS_METHOD_NAMES",
    "UTS_METHOD_NAMES",
    "make_detector",
    "deterministic_methods",
]
