"""Local Outlier Factor (Breunig et al., paper reference [15]), from scratch.

Each time point of the MTS is a vector in R^n.  The reference density model
is estimated on the training segment; test points are scored by the classic
LOF ratio: the average local reachability density (lrd) of a point's k
nearest training neighbours divided by the point's own lrd.

The O(|train|^2) neighbour search is kept tractable by uniformly
subsampling the training segment to ``max_reference`` points and computing
distances in chunks (bounded memory).
"""

from __future__ import annotations

import numpy as np

from ..timeseries.mts import MultivariateTimeSeries
from ..timeseries.normalization import StandardScaler
from .base import AnomalyDetector, normalize_scores


def _chunked_distances(a: np.ndarray, b: np.ndarray, chunk: int = 512):
    """Yield ``(start, distances)`` blocks of pairwise Euclidean distances."""
    b_sq = np.sum(b * b, axis=1)
    for start in range(0, a.shape[0], chunk):
        block = a[start : start + chunk]
        d2 = (
            np.sum(block * block, axis=1)[:, None]
            - 2.0 * block @ b.T
            + b_sq[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        yield start, np.sqrt(d2)


class LOF(AnomalyDetector):
    """LOF anomaly scores over MTS time points.

    Parameters
    ----------
    n_neighbors:
        ``k`` of the k-distance neighbourhood (20 is the authors' default).
    max_reference:
        Cap on the training reference set size (uniform subsample).
    """

    name = "LOF"
    deterministic = True

    def __init__(self, n_neighbors: int = 20, max_reference: int = 2000):
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if max_reference <= n_neighbors:
            raise ValueError("max_reference must exceed n_neighbors")
        self.n_neighbors = n_neighbors
        self.max_reference = max_reference
        self._scaler: StandardScaler | None = None
        self._reference: np.ndarray | None = None
        self._k_distance: np.ndarray | None = None
        self._lrd: np.ndarray | None = None
        self._neighbor_idx: np.ndarray | None = None

    def fit(self, train: MultivariateTimeSeries) -> "LOF":
        self._scaler = StandardScaler.fit(train.values)
        points = self._scaler.transform(train.values).T  # (T, n)
        if points.shape[0] > self.max_reference:
            # Deterministic uniform subsample keeps the temporal spread.
            idx = np.linspace(0, points.shape[0] - 1, self.max_reference).astype(int)
            points = points[idx]
        if points.shape[0] <= self.n_neighbors:
            raise ValueError(
                f"need more than {self.n_neighbors} training points, "
                f"got {points.shape[0]}"
            )
        self._reference = points

        k = self.n_neighbors
        n_ref = points.shape[0]
        k_distance = np.empty(n_ref)
        neighbor_idx = np.empty((n_ref, k), dtype=np.int64)
        reach_sum = np.empty(n_ref)
        # First pass: k-distances and neighbour lists within the reference.
        for start, distances in _chunked_distances(points, points):
            for row in range(distances.shape[0]):
                distances[row, start + row] = np.inf  # exclude self
            part = np.argpartition(distances, k - 1, axis=1)[:, :k]
            rows = np.arange(distances.shape[0])[:, None]
            neighbor_idx[start : start + distances.shape[0]] = part
            k_distance[start : start + distances.shape[0]] = np.max(
                distances[rows, part], axis=1
            )
        self._k_distance = k_distance
        self._neighbor_idx = neighbor_idx

        # Second pass: local reachability density of reference points.
        for start, distances in _chunked_distances(points, points):
            for row in range(distances.shape[0]):
                distances[row, start + row] = np.inf
            block_idx = neighbor_idx[start : start + distances.shape[0]]
            rows = np.arange(distances.shape[0])[:, None]
            reach = np.maximum(distances[rows, block_idx], k_distance[block_idx])
            reach_sum[start : start + distances.shape[0]] = reach.mean(axis=1)
        self._lrd = 1.0 / np.maximum(reach_sum, 1e-12)
        return self

    def score(self, test: MultivariateTimeSeries) -> np.ndarray:
        self._require_fitted("_reference")
        points = self._scaler.transform(test.values).T
        k = self.n_neighbors
        reference = self._reference
        lof = np.empty(points.shape[0])
        for start, distances in _chunked_distances(points, reference):
            part = np.argpartition(distances, k - 1, axis=1)[:, :k]
            rows = np.arange(distances.shape[0])[:, None]
            reach = np.maximum(distances[rows, part], self._k_distance[part])
            lrd_point = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
            lof[start : start + distances.shape[0]] = (
                self._lrd[part].mean(axis=1) / lrd_point
            )
        return normalize_scores(lof)
