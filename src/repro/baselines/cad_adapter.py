"""CAD wrapped in the benchmark :class:`AnomalyDetector` interface.

The bench harness treats every method uniformly (fit on history, score the
test segment); this adapter maps that onto CAD's warm-up + detect flow and
exposes CAD's sensor attribution through the common ``sensor_scores`` /
per-event API.
"""

from __future__ import annotations

import numpy as np

from ..core.config import CADConfig
from ..core.detector import CAD
from ..core.result import DetectionResult
from ..timeseries.mts import MultivariateTimeSeries
from .base import AnomalyDetector


class CADDetector(AnomalyDetector):
    """CAD as a fit/score detector.

    Parameters
    ----------
    config:
        CAD hyper-parameters; when None, :meth:`CADConfig.suggest` is used
        at fit time with the training segment's shape.
    mark:
        Point-marking policy for scores ("fresh" or "window"); see
        :meth:`repro.core.DetectionResult.point_scores`.
    """

    name = "CAD"
    deterministic = True

    def __init__(self, config: CADConfig | None = None, mark: str = "fresh"):
        self.config = config
        self.mark = mark
        self._detector: CAD | None = None
        self._last_result: DetectionResult | None = None

    @property
    def last_result(self) -> DetectionResult | None:
        """The full :class:`DetectionResult` of the most recent score call."""
        return self._last_result

    def fit(self, train: MultivariateTimeSeries) -> "CADDetector":
        config = self.config
        if config is None:
            config = CADConfig.suggest(train.length, train.n_sensors)
        self._detector = CAD(config, train.n_sensors)
        self._detector.warm_up(train)
        return self

    def score(self, test: MultivariateTimeSeries) -> np.ndarray:
        self._require_fitted("_detector")
        self._last_result = self._detector.detect(test)
        return self._last_result.point_scores(self.mark)

    def sensor_scores(self, test: MultivariateTimeSeries) -> np.ndarray:
        """Per-sensor score: a sensor's round deviation where it varied.

        Scoring runs detection if it has not run on this segment yet.
        """
        self._require_fitted("_detector")
        if self._last_result is None or self._last_result.length != test.length:
            self.score(test)
        result = self._last_result
        matrix = np.zeros((result.n_sensors, result.length))
        for record in result.rounds:
            squashed = record.deviation / (1.0 + record.deviation)
            start, stop = result.spec.fresh_span(record.index)
            stop = min(stop, result.length)
            for sensor in record.variations:
                np.maximum(
                    matrix[sensor, start:stop], squashed, out=matrix[sensor, start:stop]
                )
        return matrix

    def predicted_events(self) -> list[tuple[int, int, frozenset[int]]]:
        """Anomalies of the last run as ``(start, stop, sensors)`` triples."""
        if self._last_result is None:
            raise RuntimeError("CAD: score() must run before predicted_events()")
        return [
            (anomaly.start, anomaly.stop, anomaly.sensors)
            for anomaly in self._last_result.anomalies
        ]
