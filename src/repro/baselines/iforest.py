"""Isolation Forest (Liu et al., paper reference [50]), from scratch.

An ensemble of random isolation trees, each grown on a subsample of the
training points.  Anomalies isolate in few splits, so the anomaly score is
``2 ** (-E[h(x)] / c(psi))`` with ``h`` the path length and ``c`` the
average BST path-length normaliser.

Stochastic: different seeds grow different forests (the paper's Table VIII
uses this to contrast with CAD's determinism).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.mts import MultivariateTimeSeries
from .base import AnomalyDetector, normalize_scores


def average_path_length(n: int) -> float:
    """``c(n)``: average unsuccessful-search path length of a BST of size n."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = np.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


@dataclass
class _Node:
    """Internal split node or leaf of an isolation tree."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    size: int = 0  # leaf only

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _grow(data: np.ndarray, depth: int, max_depth: int, rng: np.random.Generator) -> _Node:
    n = data.shape[0]
    if depth >= max_depth or n <= 1:
        return _Node(size=n)
    spans = data.max(axis=0) - data.min(axis=0)
    candidates = np.flatnonzero(spans > 1e-12)
    if candidates.size == 0:
        return _Node(size=n)
    feature = int(rng.choice(candidates))
    low, high = data[:, feature].min(), data[:, feature].max()
    threshold = float(rng.uniform(low, high))
    mask = data[:, feature] < threshold
    if not mask.any() or mask.all():
        return _Node(size=n)
    return _Node(
        feature=feature,
        threshold=threshold,
        left=_grow(data[mask], depth + 1, max_depth, rng),
        right=_grow(data[~mask], depth + 1, max_depth, rng),
    )


def _path_lengths(node: _Node, data: np.ndarray, depth: float, out: np.ndarray, idx: np.ndarray) -> None:
    if node.is_leaf:
        out[idx] = depth + average_path_length(node.size)
        return
    mask = data[:, node.feature] < node.threshold
    if mask.any():
        _path_lengths(node.left, data[mask], depth + 1, out, idx[mask])
    if (~mask).any():
        _path_lengths(node.right, data[~mask], depth + 1, out, idx[~mask])


class IsolationForest(AnomalyDetector):
    """Isolation forest over MTS time points.

    Parameters
    ----------
    n_estimators:
        Number of trees (paper default 100).
    subsample:
        Points per tree (paper default 256).
    seed:
        RNG seed; vary it across repeats to measure stability.
    """

    name = "IForest"
    deterministic = False

    def __init__(self, n_estimators: int = 100, subsample: int = 256, seed: int = 0):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if subsample < 2:
            raise ValueError(f"subsample must be >= 2, got {subsample}")
        self.n_estimators = n_estimators
        self.subsample = subsample
        self.seed = seed
        self._trees: list[_Node] | None = None
        self._c: float = 1.0

    def fit(self, train: MultivariateTimeSeries) -> "IsolationForest":
        rng = np.random.default_rng(self.seed)
        points = train.values.T  # (T, n)
        psi = min(self.subsample, points.shape[0])
        max_depth = int(np.ceil(np.log2(max(psi, 2))))
        self._trees = []
        for _ in range(self.n_estimators):
            idx = rng.choice(points.shape[0], size=psi, replace=False)
            self._trees.append(_grow(points[idx], 0, max_depth, rng))
        self._c = average_path_length(psi)
        return self

    def score(self, test: MultivariateTimeSeries) -> np.ndarray:
        self._require_fitted("_trees")
        points = test.values.T
        total = np.zeros(points.shape[0])
        lengths = np.empty(points.shape[0])
        index = np.arange(points.shape[0])
        for tree in self._trees:
            _path_lengths(tree, points, 0.0, lengths, index)
            total += lengths
        mean_depth = total / len(self._trees)
        raw = np.power(2.0, -mean_depth / max(self._c, 1e-12))
        return normalize_scores(raw)
