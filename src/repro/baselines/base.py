"""Common interface for all benchmark anomaly detectors.

Every method — MTS or univariate-adapted — exposes the same two-phase API
the paper's protocol assumes:

* :meth:`fit` consumes the training / historical segment (methods that do
  not train simply remember scaling statistics);
* :meth:`score` returns one anomaly score per test time point, normalised
  to [0, 1] so the threshold grid search (Section VI-A) applies uniformly.

Methods that can localise abnormal sensors (CAD, ECOD, RCoders) additionally
implement :meth:`sensor_scores`, returning an ``(n_sensors, length)`` matrix
of per-sensor scores.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..evaluation.sensors import SensorEvent
from ..timeseries.mts import MultivariateTimeSeries
from ..timeseries.normalization import minmax_unit


class AnomalyDetector(ABC):
    """Base class; subclasses set ``name`` and ``deterministic``."""

    name: str = "base"
    #: Whether repeated runs with different seeds give identical output
    #: (Table VIII separates deterministic from stochastic methods).
    deterministic: bool = True

    @abstractmethod
    def fit(self, train: MultivariateTimeSeries) -> "AnomalyDetector":
        """Learn from the training segment; returns self for chaining."""

    @abstractmethod
    def score(self, test: MultivariateTimeSeries) -> np.ndarray:
        """Per-point anomaly scores in [0, 1] for the test segment."""

    def sensor_scores(self, test: MultivariateTimeSeries) -> np.ndarray | None:
        """Optional ``(n_sensors, length)`` per-sensor score matrix."""
        return None

    def _require_fitted(self, attribute: str) -> None:
        if getattr(self, attribute, None) is None:
            raise RuntimeError(f"{self.name}: fit() must be called before score()")


def normalize_scores(raw: np.ndarray) -> np.ndarray:
    """Map raw scores to [0, 1] (shared post-processing for every method)."""
    return minmax_unit(np.asarray(raw, dtype=np.float64))


def sensors_from_scores(
    matrix: np.ndarray,
    events: tuple[SensorEvent, ...] | list[SensorEvent],
    ratio: float = 2.0,
) -> list[tuple[int, int, frozenset[int]]]:
    """Turn a per-sensor score matrix into per-event abnormal sensor sets.

    A sensor is flagged for an event when its mean score inside the event
    exceeds ``ratio`` times its mean score outside all events (with a small
    floor to avoid division blow-ups).  Returns ``(start, stop, sensors)``
    triples suitable for :func:`repro.evaluation.f1_sensor`.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected (n_sensors, length) matrix, got {matrix.shape}")
    if ratio <= 0:
        raise ValueError(f"ratio must be > 0, got {ratio}")
    length = matrix.shape[1]
    outside_mask = np.ones(length, dtype=bool)
    for event in events:
        outside_mask[event.start : min(event.stop, length)] = False
    baseline = matrix[:, outside_mask].mean(axis=1) if outside_mask.any() else np.zeros(
        matrix.shape[0]
    )
    floor = max(1e-6, float(np.mean(baseline)) * 0.05)

    results = []
    for event in events:
        inside = matrix[:, event.start : min(event.stop, length)]
        if inside.shape[1] == 0:
            results.append((event.start, event.stop, frozenset()))
            continue
        elevated = inside.mean(axis=1) > ratio * np.maximum(baseline, floor)
        results.append(
            (event.start, event.stop, frozenset(int(i) for i in np.flatnonzero(elevated)))
        )
    return results
