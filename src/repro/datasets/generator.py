"""Synthetic sensor-network MTS generator.

Stands in for the paper's datasets (DESIGN.md §3): real sensor networks
exhibit *community-structured correlations* — groups of sensors on the same
machine follow shared physical drivers — and anomalies that initially touch
a few sensors and break their correlations.  The generator reproduces those
statistics:

* each community ``c`` has two latent drivers (a seasonal sinusoid mixture
  and a smooth AR(1) process);
* sensor ``i`` in community ``c`` reads a fixed random mixture of its
  community's drivers plus sensor-local AR(1) noise — so intra-community
  correlations are strong and stable while inter-community correlations are
  weak;
* anomalies are injected per :mod:`repro.datasets.anomalies`, each targeting
  sensors concentrated in one or two communities, optionally propagating.

Everything is driven by one seeded :class:`numpy.random.Generator`, so a
given configuration always produces bit-identical data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.signal import lfilter

from ..evaluation.sensors import SensorEvent
from ..timeseries.mts import MultivariateTimeSeries
from .anomalies import ANOMALY_TYPES, AnomalySpec, InjectionContext, inject_anomaly


@dataclass(frozen=True)
class NetworkConfig:
    """Shape and signal parameters of a simulated sensor network."""

    n_sensors: int
    n_communities: int
    noise_scale: float = 0.08
    # Driver periods must be short relative to the analysis windows: two
    # slow sinusoids both look like near-linear trends inside a short
    # window and would correlate spuriously across communities, destroying
    # the stable community structure real sensor networks exhibit.
    driver_periods: tuple[float, float] = (16.0, 64.0)
    # Slow per-community regime drift (operating-point wander).  Nearly
    # constant inside one analysis window, so correlations are unaffected,
    # but it widens and shifts the pointwise marginals over time — the
    # distribution change that makes pointwise outlier detectors struggle
    # on real industrial data (paper Section I).
    drift_scale: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sensors < 2:
            raise ValueError(f"need >= 2 sensors, got {self.n_sensors}")
        if not 1 <= self.n_communities <= self.n_sensors:
            raise ValueError(
                f"communities must be in [1, n_sensors], got {self.n_communities}"
            )
        if self.noise_scale <= 0:
            raise ValueError(f"noise_scale must be > 0, got {self.noise_scale}")


@dataclass(frozen=True)
class GeneratedSeries:
    """A generated MTS with its ground truth."""

    series: MultivariateTimeSeries
    labels: np.ndarray
    events: tuple[SensorEvent, ...]
    community_of: np.ndarray
    anomalies: tuple[AnomalySpec, ...]


class SensorNetworkSimulator:
    """Generates correlated sensor readings with injected anomalies."""

    def __init__(self, config: NetworkConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        n, c = config.n_sensors, config.n_communities
        # Deterministic, balanced community assignment.
        self._community_of = np.arange(n) % c
        # Per-sensor mixing weights of the community's two drivers; the
        # dominant weight keeps intra-community correlation high.
        self._mix = np.column_stack(
            [rng.uniform(0.7, 1.3, n), rng.uniform(-0.45, 0.45, n)]
        )
        self._offsets = rng.uniform(-1.0, 1.0, n)
        self._scales = rng.uniform(0.8, 1.2, n)
        # Per-community random phases/periods, fixed per simulator.
        low, high = config.driver_periods
        self._periods = rng.uniform(low, high, (c, 2))
        self._phases = rng.uniform(0, 2 * np.pi, (c, 2))
        self._rng = rng

    @property
    def community_of(self) -> np.ndarray:
        """Community index per sensor (read-only copy)."""
        return self._community_of.copy()

    def _drivers(self, length: int, t0: int) -> np.ndarray:
        """Latent drivers, shape (n_communities, 2, length), continuous in t0."""
        c = self.config.n_communities
        t = np.arange(t0, t0 + length, dtype=np.float64)
        drivers = np.empty((c, 2, length))
        for ci in range(c):
            for di in range(2):
                base = np.sin(2 * np.pi * t / self._periods[ci, di] + self._phases[ci, di])
                harmonic = 0.3 * np.sin(
                    2 * np.pi * t / (self._periods[ci, di] / 3.1) + self._phases[ci, 1 - di]
                )
                # The AR component is per-community and independent across
                # communities, so windows decorrelate across communities.
                smooth = _ar1(self._rng, length, 0.9, 0.8)
                drift = _ar1(self._rng, length, 0.9995, self.config.drift_scale)
                drivers[ci, di] = base + harmonic + smooth + drift
        return drivers

    def generate(
        self,
        length: int,
        anomalies: Sequence[AnomalySpec] = (),
        t0: int = 0,
    ) -> GeneratedSeries:
        """Generate ``length`` points, injecting the given anomalies.

        ``t0`` offsets the deterministic seasonal components so a history
        segment and a test segment generated back-to-back line up
        continuously (pass ``t0=len(history)`` for the test segment).
        """
        if length < 2:
            raise ValueError(f"length must be >= 2, got {length}")
        for spec in anomalies:
            if spec.stop > length:
                raise ValueError(f"anomaly {spec} exceeds series length {length}")
            if max(spec.sensors) >= self.config.n_sensors:
                raise ValueError(f"anomaly {spec} names an unknown sensor")

        drivers = self._drivers(length, t0)
        n = self.config.n_sensors
        values = np.empty((n, length))
        for i in range(n):
            ci = self._community_of[i]
            signal = self._mix[i, 0] * drivers[ci, 0] + self._mix[i, 1] * drivers[ci, 1]
            noise = _ar1(self._rng, length, 0.6, self.config.noise_scale)
            values[i] = self._offsets[i] + self._scales[i] * signal + noise

        context = InjectionContext(
            rng=self._rng,
            drivers=drivers[:, 0, :],
            community_of=self._community_of,
            noise_scale=self.config.noise_scale,
        )
        labels = np.zeros(length, dtype=np.int8)
        events = []
        for spec in anomalies:
            inject_anomaly(values, spec, context)
            labels[spec.start : spec.stop] = 1
            events.append(
                SensorEvent(
                    start=spec.start, stop=spec.stop, sensors=frozenset(spec.sensors)
                )
            )

        return GeneratedSeries(
            series=MultivariateTimeSeries(values),
            labels=labels,
            events=tuple(events),
            community_of=self._community_of.copy(),
            anomalies=tuple(anomalies),
        )

    def random_anomalies(
        self,
        length: int,
        n_anomalies: int,
        duration_range: tuple[int, int],
        sensors_per_anomaly: tuple[int, int],
        kinds: Sequence[str] = (
            # Correlation-breaking faults dominate: they are the failure
            # mode the paper's sensor networks exhibit and the hard case
            # for pointwise detectors (the marginals barely move at onset).
            "decouple",
            "decouple",
            "swap",
            "decouple",
            "swap",
            "trend_drift",
        ),
        propagate: bool = True,
        margin: int = 10,
    ) -> list[AnomalySpec]:
        """Draw non-overlapping anomaly specs with community-local sensors.

        Spans are sampled without overlap (with ``margin`` points of
        separation); each anomaly picks one community and affects a random
        subset of its sensors, matching how real faults cluster on one
        machine.
        """
        if n_anomalies < 1:
            raise ValueError("need at least one anomaly")
        lo, hi = duration_range
        if not 2 <= lo <= hi:
            raise ValueError(f"bad duration range {duration_range}")
        for kind in kinds:
            if kind not in ANOMALY_TYPES:
                raise ValueError(f"unknown anomaly kind {kind!r}")
        budget = n_anomalies * (hi + margin)
        if budget > length * 0.8:
            raise ValueError(
                f"{n_anomalies} anomalies of up to {hi} points do not fit in {length}"
            )

        rng = self._rng
        # Slot the anomalies into n_anomalies equal bins to guarantee
        # non-overlap without rejection sampling.
        bins = np.linspace(margin, length - hi - margin, n_anomalies + 1).astype(int)
        specs = []
        for a in range(n_anomalies):
            duration = int(rng.integers(lo, hi + 1))
            start_low, start_high = bins[a], max(bins[a] + 1, bins[a + 1] - duration)
            start = int(rng.integers(start_low, start_high))
            community = int(rng.integers(self.config.n_communities))
            members = np.flatnonzero(self._community_of == community)
            k_lo, k_hi = sensors_per_anomaly
            k_hi = min(k_hi, members.size)
            k_lo = min(k_lo, k_hi)
            count = int(rng.integers(k_lo, k_hi + 1))
            chosen = rng.choice(members, size=count, replace=False)
            kind = kinds[int(rng.integers(len(kinds)))]
            specs.append(
                AnomalySpec(
                    start=start,
                    stop=start + duration,
                    sensors=tuple(int(s) for s in chosen),
                    kind=kind,
                    magnitude=float(rng.uniform(0.8, 1.5)),
                    propagate=propagate and count > 1,
                )
            )
        return specs


def _ar1(rng: np.random.Generator, length: int, rho: float, scale: float) -> np.ndarray:
    """Stationary AR(1) noise with standard deviation ``scale``."""
    shocks = rng.standard_normal(length) * np.sqrt(1 - rho * rho)
    return lfilter([1.0], [1.0, -rho], shocks) * scale
