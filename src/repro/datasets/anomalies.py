"""Anomaly injection for the sensor-network simulator.

Every injector takes the clean values of the affected sensors and returns
replacement readings for the anomaly span.  The types cover the failure
modes the paper's datasets contain:

* ``decouple``    — the sensor stops following its community's driver and
  follows an independent signal of similar amplitude.  This is the
  correlation-breaking failure CAD is designed to catch early: the marginal
  distribution of the sensor barely changes at onset.
* ``level_shift`` — an additive offset (classic point-detectable fault).
* ``trend_drift`` — a slow additive ramp (wear-and-tear style).
* ``noise_burst`` — the sensor's noise floor multiplies.
* ``stuck``       — the reading freezes at its last value (dead sensor).
* ``swap``        — the sensor starts following a *different* community's
  driver (cross-coupling fault).

Anomalies optionally *propagate*: the affected sensor set grows over the
anomaly span, mirroring the paper's motivation that a small failure spreads
to nearby components over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

ANOMALY_TYPES = (
    "decouple",
    "level_shift",
    "trend_drift",
    "noise_burst",
    "stuck",
    "swap",
)


@dataclass(frozen=True)
class AnomalySpec:
    """One injected anomaly.

    Attributes
    ----------
    start, stop:
        Half-open point span of the anomaly within the series.
    sensors:
        Affected sensor indices, in propagation order (the first entries are
        hit at ``start``; later entries join as the anomaly spreads).
    kind:
        One of :data:`ANOMALY_TYPES`.
    magnitude:
        Type-specific strength (offset size, noise multiplier, ...).
    propagate:
        If True, sensors join one by one across the first half of the span;
        if False, all sensors are affected from ``start``.
    """

    start: int
    stop: int
    sensors: tuple[int, ...]
    kind: str
    magnitude: float = 1.0
    propagate: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"invalid anomaly span [{self.start}, {self.stop})")
        if not self.sensors:
            raise ValueError("an anomaly must affect at least one sensor")
        if len(set(self.sensors)) != len(self.sensors):
            raise ValueError("affected sensors must be distinct")
        if self.kind not in ANOMALY_TYPES:
            raise ValueError(f"unknown anomaly kind {self.kind!r}")
        if self.magnitude <= 0:
            raise ValueError(f"magnitude must be > 0, got {self.magnitude}")

    @property
    def length(self) -> int:
        return self.stop - self.start

    def onset(self, sensor: int) -> int:
        """The time point at which ``sensor`` becomes affected."""
        position = self.sensors.index(sensor)
        if not self.propagate or len(self.sensors) == 1:
            return self.start
        # Sensors join at evenly spaced offsets across the first half.
        span = max(1, self.length // 2)
        offset = (position * span) // len(self.sensors)
        return self.start + offset


@dataclass
class InjectionContext:
    """Everything an injector may need, bundled for one anomaly."""

    rng: np.random.Generator
    drivers: np.ndarray  # (n_communities, length) latent community drivers
    community_of: np.ndarray  # (n_sensors,) community index per sensor
    noise_scale: float


def inject_anomaly(values: np.ndarray, spec: AnomalySpec, ctx: InjectionContext) -> None:
    """Overwrite ``values`` in place with the anomaly's readings.

    ``values`` is the full ``(n_sensors, length)`` matrix; only the affected
    sensors' spans (respecting per-sensor onsets) are modified.
    """
    for sensor in spec.sensors:
        onset = spec.onset(sensor)
        span = slice(onset, spec.stop)
        clean = values[sensor, span]
        if clean.size == 0:
            continue
        values[sensor, span] = _transform(clean, sensor, spec, ctx, onset)


def _transform(
    clean: np.ndarray,
    sensor: int,
    spec: AnomalySpec,
    ctx: InjectionContext,
    onset: int,
) -> np.ndarray:
    length = clean.size
    rng = ctx.rng
    amplitude = max(float(np.std(clean)), 0.1)

    if spec.kind == "decouple":
        # Independent smooth signal of similar amplitude: a random-phase
        # sinusoid plus AR(1) noise.  The marginal looks normal; only the
        # cross-correlations break.
        period = rng.uniform(20, 80)
        phase = rng.uniform(0, 2 * np.pi)
        t = np.arange(length)
        signal = amplitude * spec.magnitude * np.sin(2 * np.pi * t / period + phase)
        return float(np.mean(clean)) + signal + _ar1(rng, length, 0.8, ctx.noise_scale)

    if spec.kind == "level_shift":
        direction = 1.0 if rng.random() < 0.5 else -1.0
        return clean + direction * spec.magnitude * amplitude * 3.0

    if spec.kind == "trend_drift":
        direction = 1.0 if rng.random() < 0.5 else -1.0
        ramp = np.linspace(0.0, direction * spec.magnitude * amplitude * 4.0, length)
        return clean + ramp

    if spec.kind == "noise_burst":
        burst = rng.standard_normal(length) * ctx.noise_scale * spec.magnitude * 8.0
        return clean + burst

    if spec.kind == "stuck":
        level = clean[0]
        return np.full(length, level) + rng.standard_normal(length) * 1e-3

    if spec.kind == "swap":
        home = int(ctx.community_of[sensor])
        others = [c for c in range(ctx.drivers.shape[0]) if c != home]
        target = others[int(rng.integers(len(others)))] if others else home
        driver = ctx.drivers[target, onset : onset + length]
        scale = amplitude / max(float(np.std(driver)), 1e-6)
        return (
            float(np.mean(clean))
            + spec.magnitude * scale * (driver - float(np.mean(driver)))
            + _ar1(rng, length, 0.8, ctx.noise_scale)
        )

    raise AssertionError(f"unhandled anomaly kind {spec.kind!r}")


def _ar1(rng: np.random.Generator, length: int, rho: float, scale: float) -> np.ndarray:
    """Stationary AR(1) noise with standard deviation ``scale``."""
    from scipy.signal import lfilter

    shocks = rng.standard_normal(length) * np.sqrt(1 - rho * rho)
    return lfilter([1.0], [1.0, -rho], shocks) * scale
