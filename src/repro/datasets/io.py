"""Persistence for datasets: npz round-trip and CSV export.

The npz format stores everything needed to reproduce an evaluation —
history, test, labels and per-event sensor sets — so generated datasets can
be shipped or diffed.  CSV export is provided for inspection in external
tools (one row per time point, one column per sensor).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from ..evaluation.sensors import SensorEvent
from ..timeseries.mts import MultivariateTimeSeries
from .registry import Dataset, DatasetSpec, get_spec


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Serialise a dataset to ``path`` (npz)."""
    path = Path(path)
    events_json = json.dumps(
        [
            {"start": e.start, "stop": e.stop, "sensors": sorted(e.sensors)}
            for e in dataset.events
        ]
    )
    np.savez_compressed(
        path,
        name=np.array(dataset.name),
        history=dataset.history.values,
        test=dataset.test.values,
        labels=dataset.labels,
        community_of=dataset.community_of,
        events=np.array(events_json),
    )


def load_dataset_file(path: str | Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`.

    The spec is looked up by the stored name, so only registered datasets
    round-trip; this is a deliberate guard against evaluating mystery data.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        name = str(archive["name"])
        history = MultivariateTimeSeries(archive["history"])
        test = MultivariateTimeSeries(archive["test"])
        labels = archive["labels"].astype(np.int8)
        community_of = archive["community_of"]
        events_raw = json.loads(str(archive["events"]))
    events = tuple(
        SensorEvent(
            start=int(e["start"]),
            stop=int(e["stop"]),
            sensors=frozenset(int(s) for s in e["sensors"]),
        )
        for e in events_raw
    )
    spec: DatasetSpec = get_spec(name)
    return Dataset(
        name=name,
        history=history,
        test=test,
        labels=labels,
        events=events,
        community_of=community_of,
        spec=spec,
    )


def export_csv(series: MultivariateTimeSeries, path: str | Path) -> None:
    """Write an MTS as CSV: header of sensor names, one row per time point."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(series.sensor_names)
        for t in range(series.length):
            writer.writerow([f"{v:.6g}" for v in series.values[:, t]])


def import_csv(path: str | Path) -> MultivariateTimeSeries:
    """Read an MTS from CSV written by :func:`export_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            names = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        rows = [[float(cell) for cell in row] for row in reader if row]
    if not rows:
        raise ValueError(f"{path} contains a header but no data")
    values = np.array(rows, dtype=np.float64).T
    return MultivariateTimeSeries(values, tuple(names))
