"""Named dataset specs simulating the paper's eight datasets (Table II).

Each spec fixes the sensor count of its real counterpart, a seeded
simulator, a history (warm-up / training) segment and a labelled test
segment.  Lengths are scaled down from the paper's (hundreds of thousands of
points) to laptop scale while keeping the proportions — history roughly
comparable to the test length for PSM/SWaT, short histories for the IS
datasets — because what the experiments measure (early correlation
breakdown, noise, sensor-count scaling) does not depend on absolute length.

SMD is 28 independent subsets evaluated without warm-up, exactly as in the
paper; they are registered as ``smd-sim-01`` .. ``smd-sim-28`` and share the
``smd-sim`` family name.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..evaluation.sensors import SensorEvent
from ..timeseries.mts import MultivariateTimeSeries
from .generator import GeneratedSeries, NetworkConfig, SensorNetworkSimulator


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one simulated dataset."""

    name: str
    n_sensors: int
    n_communities: int
    history_length: int
    test_length: int
    n_anomalies: int
    duration_range: tuple[int, int]
    sensors_per_anomaly: tuple[int, int]
    recommended_k: int
    seed: int
    noise_scale: float = 0.08
    source: str = "simulated"


@dataclass(frozen=True)
class Dataset:
    """A materialised dataset: history + labelled test segment."""

    name: str
    history: MultivariateTimeSeries
    test: MultivariateTimeSeries
    labels: np.ndarray
    events: tuple[SensorEvent, ...]
    community_of: np.ndarray
    spec: DatasetSpec

    @property
    def n_sensors(self) -> int:
        return self.test.n_sensors

    @property
    def recommended_k(self) -> int:
        return self.spec.recommended_k


def _spec(
    name: str,
    n_sensors: int,
    n_communities: int,
    history_length: int,
    test_length: int,
    n_anomalies: int,
    duration_range: tuple[int, int],
    sensors_per_anomaly: tuple[int, int],
    recommended_k: int,
    seed: int,
    **extra,
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        n_sensors=n_sensors,
        n_communities=n_communities,
        history_length=history_length,
        test_length=test_length,
        n_anomalies=n_anomalies,
        duration_range=duration_range,
        sensors_per_anomaly=sensors_per_anomaly,
        recommended_k=recommended_k,
        seed=seed,
        **extra,
    )


_SPECS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _SPECS[spec.name] = spec


# The paper's sensor counts (Table II); lengths scaled to laptop budget.
_register(_spec("psm-sim", 26, 4, 4000, 8000, 8, (120, 320), (2, 6), 10, seed=101))
_register(_spec("swat-sim", 51, 6, 5000, 9000, 8, (150, 360), (3, 8), 20, seed=103))
_register(_spec("is1-sim", 143, 8, 2000, 4000, 4, (100, 260), (4, 12), 20, seed=111))
_register(_spec("is2-sim", 264, 10, 2000, 4000, 5, (100, 260), (5, 16), 20, seed=112))
_register(_spec("is3-sim", 406, 12, 1500, 3000, 4, (90, 220), (6, 20), 30, seed=113))
_register(_spec("is4-sim", 702, 14, 1500, 3000, 4, (90, 220), (8, 24), 50, seed=114))
_register(_spec("is5-sim", 1266, 16, 1200, 2500, 4, (80, 200), (10, 30), 50, seed=115))

N_SMD_SUBSETS = 28
for _i in range(1, N_SMD_SUBSETS + 1):
    _register(
        _spec(
            f"smd-sim-{_i:02d}",
            38,
            5,
            2500,
            5000,
            5,
            (100, 280),
            (2, 8),
            10,
            seed=200 + _i,
        )
    )


def dataset_names() -> list[str]:
    """All registered dataset names, SMD subsets included."""
    return sorted(_SPECS)


def smd_subset_names() -> list[str]:
    """The 28 SMD subset names in order."""
    return [f"smd-sim-{i:02d}" for i in range(1, N_SMD_SUBSETS + 1)]


def get_spec(name: str) -> DatasetSpec:
    """Look up a registered dataset spec by name."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; known: {', '.join(dataset_names())}"
        ) from None


def build_dataset(spec: DatasetSpec) -> Dataset:
    """Materialise a dataset from its spec (deterministic in the seed)."""
    simulator = SensorNetworkSimulator(
        NetworkConfig(
            n_sensors=spec.n_sensors,
            n_communities=spec.n_communities,
            noise_scale=spec.noise_scale,
            seed=spec.seed,
        )
    )
    history = simulator.generate(spec.history_length)
    anomalies = simulator.random_anomalies(
        spec.test_length,
        n_anomalies=spec.n_anomalies,
        duration_range=spec.duration_range,
        sensors_per_anomaly=spec.sensors_per_anomaly,
    )
    test: GeneratedSeries = simulator.generate(
        spec.test_length, anomalies, t0=spec.history_length
    )
    return Dataset(
        name=spec.name,
        history=history.series,
        test=test.series,
        labels=test.labels,
        events=test.events,
        community_of=test.community_of,
        spec=spec,
    )


@lru_cache(maxsize=8)
def load_dataset(name: str) -> Dataset:
    """Load (and cache) a registered dataset by name."""
    return build_dataset(get_spec(name))
