"""Synthetic datasets simulating the paper's eight benchmark datasets."""

from .anomalies import ANOMALY_TYPES, AnomalySpec, InjectionContext, inject_anomaly
from .faults import (
    FaultModel,
    inject_clock_skew,
    inject_duplicates,
    inject_missing_at_random,
    inject_out_of_order,
    inject_redelivery,
    inject_sensor_dropout,
    inject_sensor_flapping,
    inject_stuck_at,
)
from .generator import GeneratedSeries, NetworkConfig, SensorNetworkSimulator
from .io import export_csv, import_csv, load_dataset_file, save_dataset
from .registry import (
    Dataset,
    DatasetSpec,
    N_SMD_SUBSETS,
    build_dataset,
    dataset_names,
    get_spec,
    load_dataset,
    smd_subset_names,
)

__all__ = [
    "AnomalySpec",
    "ANOMALY_TYPES",
    "InjectionContext",
    "inject_anomaly",
    "FaultModel",
    "inject_missing_at_random",
    "inject_sensor_dropout",
    "inject_stuck_at",
    "inject_duplicates",
    "inject_sensor_flapping",
    "inject_out_of_order",
    "inject_redelivery",
    "inject_clock_skew",
    "NetworkConfig",
    "SensorNetworkSimulator",
    "GeneratedSeries",
    "Dataset",
    "DatasetSpec",
    "N_SMD_SUBSETS",
    "dataset_names",
    "smd_subset_names",
    "get_spec",
    "build_dataset",
    "load_dataset",
    "save_dataset",
    "load_dataset_file",
    "export_csv",
    "import_csv",
]
