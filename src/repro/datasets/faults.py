"""Data-feed fault injection for robustness testing.

The simulator in :mod:`repro.datasets.generator` produces *process*
anomalies — the physical failures CAD is supposed to detect.  This module
corrupts the *feed* itself, modelling the transport- and sensor-level faults
a long-running deployment sees (CSCAD, arXiv:2105.14476, motivates exactly
this setting):

* **missing-at-random gaps** — individual readings dropped (NaN), e.g. lost
  packets;
* **sensor dropout** — one sensor silent over a whole span (NaN), e.g. a
  crashed collector;
* **stuck-at flatlines** — a sensor repeats its last real reading over a
  span (values look valid but carry no information);
* **duplicated / late samples** — a timestamp redelivers the previous
  sample for every sensor (stale data on time-axis hiccups);
* **delivery faults** — bounded out-of-order swaps, stale redelivery with
  a configurable lag, and per-sensor clock skew (a sensor's whole series
  shifted along the time axis).  These share one fault vocabulary with the
  envelope-level :class:`~repro.ingest.DeliveryChaosModel`: the same
  ``out_of_order`` / ``redelivery`` / ``skew`` knobs, applied to an
  already-materialised ``(n, T)`` matrix instead of an envelope stream —
  i.e. what the detector sees when no ingest frontier repaired delivery.

All injectors copy their input; the clean array is never modified.  A
:class:`FaultModel` bundles a full corruption scenario behind one seeded,
deterministic ``apply`` call, so tests and benchmarks can sweep fault rates
reproducibly.  Faults mark *data* defects, not label changes: ground-truth
anomaly labels of the underlying series stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FaultModel",
    "inject_missing_at_random",
    "inject_sensor_dropout",
    "inject_stuck_at",
    "inject_duplicates",
    "inject_sensor_flapping",
    "inject_out_of_order",
    "inject_redelivery",
    "inject_clock_skew",
]


def _as_matrix(values: np.ndarray) -> np.ndarray:
    values = np.array(values, dtype=np.float64)  # always a fresh copy
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D (n_sensors, length), got {values.shape}")
    return values


def _check_span(values: np.ndarray, sensor: int, start: int, stop: int) -> None:
    n, length = values.shape
    if not 0 <= sensor < n:
        raise ValueError(f"sensor {sensor} outside [0, {n})")
    if not 0 <= start < stop <= length:
        raise ValueError(f"invalid span [{start}, {stop}) for length {length}")


def inject_missing_at_random(
    values: np.ndarray, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Drop each reading independently with probability ``rate`` (NaN)."""
    values = _as_matrix(values)
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    if rate > 0.0:
        values[rng.random(values.shape) < rate] = np.nan
    return values


def inject_sensor_dropout(
    values: np.ndarray, sensor: int, start: int, stop: int
) -> np.ndarray:
    """Silence one sensor over ``[start, stop)`` (all NaN)."""
    values = _as_matrix(values)
    _check_span(values, sensor, start, stop)
    values[sensor, start:stop] = np.nan
    return values


def inject_stuck_at(
    values: np.ndarray, sensor: int, start: int, stop: int
) -> np.ndarray:
    """Freeze one sensor at its last pre-fault reading over ``[start, stop)``.

    Unlike :func:`inject_sensor_dropout` the readings stay *valid* numbers —
    the classic silent failure a NaN check cannot catch.  (The detector sees
    it as a zero-variance row: the flatlined sensor loses all TSG edges.)
    """
    values = _as_matrix(values)
    _check_span(values, sensor, start, stop)
    values[sensor, start:stop] = values[sensor, start]
    return values


def inject_duplicates(
    values: np.ndarray, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Redeliver the previous sample at random timestamps.

    Each time point ``t >= 1`` is independently replaced, with probability
    ``rate``, by the (already possibly duplicated) column ``t - 1`` across
    all sensors — modelling a late batch flushing stale data.  The series
    length is unchanged.
    """
    values = _as_matrix(values)
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    if rate > 0.0 and values.shape[1] > 1:
        hits = np.flatnonzero(rng.random(values.shape[1] - 1) < rate) + 1
        for t in hits:  # sequential: runs of duplicates repeat one sample
            values[:, t] = values[:, t - 1]
    return values


def inject_sensor_flapping(
    values: np.ndarray,
    sensor: int,
    start: int,
    stop: int,
    period: int,
    duty: float = 0.5,
) -> np.ndarray:
    """Flap one sensor over ``[start, stop)``: a NaN square wave.

    Within the span, each cycle of ``period`` samples begins with
    ``round(duty * period)`` dead (NaN) readings followed by live ones —
    the loose-connector failure mode that repeatedly trips and clears.
    Unlike :func:`inject_sensor_dropout` the sensor keeps *partially*
    reporting, which is exactly what exercises circuit-breaker hysteresis:
    a breaker without probation would flap along with the sensor.
    """
    values = _as_matrix(values)
    _check_span(values, sensor, start, stop)
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if not 0.0 < duty <= 1.0:
        raise ValueError(f"duty must be in (0, 1], got {duty}")
    dead = max(1, round(duty * period))
    phase = (np.arange(stop - start)) % period
    values[sensor, start:stop][phase < dead] = np.nan
    return values


def inject_out_of_order(
    values: np.ndarray, rate: float, span: int, rng: np.random.Generator
) -> np.ndarray:
    """Swap random timestamps with a later one at most ``span`` away.

    Each time point ``t`` is independently chosen with probability
    ``rate`` and its column swapped with column ``t + d``,
    ``d ~ Uniform{1..span}`` (clamped at the series end) — bounded
    disorder, the matrix-level mirror of delayed envelope delivery.
    Swaps apply sequentially, so overlapping hits compose like real
    requeue jitter.  The series length is unchanged.
    """
    values = _as_matrix(values)
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    if span < 1:
        raise ValueError(f"span must be >= 1, got {span}")
    length = values.shape[1]
    if rate > 0.0 and length > 1:
        hits = np.flatnonzero(rng.random(length - 1) < rate)
        displacements = rng.integers(1, span + 1, size=hits.size)
        for t, d in zip(hits, displacements):
            other = min(int(t) + int(d), length - 1)
            values[:, [t, other]] = values[:, [other, t]]
    return values


def inject_redelivery(
    values: np.ndarray, rate: float, lag: int, rng: np.random.Generator
) -> np.ndarray:
    """Redeliver a ``lag``-old sample at random timestamps.

    Generalises :func:`inject_duplicates` (``lag=1``): each time point
    ``t >= lag`` is independently replaced, with probability ``rate``, by
    the (already possibly redelivered) column ``t - lag`` — a retry queue
    flushing data ``lag`` ticks stale.  The series length is unchanged.
    """
    values = _as_matrix(values)
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    length = values.shape[1]
    if rate > 0.0 and length > lag:
        hits = np.flatnonzero(rng.random(length - lag) < rate) + lag
        for t in hits:  # sequential: runs of redelivery repeat one sample
            values[:, t] = values[:, t - lag]
    return values


def inject_clock_skew(values: np.ndarray, sensor: int, shift: int) -> np.ndarray:
    """Shift one sensor's series ``shift`` samples along the time axis.

    Positive ``shift`` models a slow producer clock (readings land late:
    ``values[sensor, t] = clean[sensor, t - shift]``), negative a fast one.
    The vacated edge has no data and becomes NaN — missing, per degraded
    semantics, not fabricated.  Ground-truth labels of the *other* sensors
    stay valid; the skewed sensor's correlations decay with ``|shift|``,
    which is exactly the failure mode CSCAD attributes to unsynchronised
    collectors.
    """
    values = _as_matrix(values)
    n, length = values.shape
    if not 0 <= sensor < n:
        raise ValueError(f"sensor {sensor} outside [0, {n})")
    if abs(shift) >= length:
        raise ValueError(f"|shift| must be < length {length}, got {shift}")
    if shift > 0:
        values[sensor, shift:] = values[sensor, : length - shift]
        values[sensor, :shift] = np.nan
    elif shift < 0:
        values[sensor, :shift] = values[sensor, -shift:]
        values[sensor, shift:] = np.nan
    return values


@dataclass(frozen=True)
class FaultModel:
    """A reproducible corruption scenario for one ``(n, T)`` stream.

    Attributes
    ----------
    missing_rate:
        Probability each reading is dropped (missing-at-random).
    duplicate_rate:
        Probability each timestamp redelivers the previous sample.
    dropout:
        ``(sensor, start, stop)`` spans silenced entirely (NaN).
    stuck:
        ``(sensor, start, stop)`` spans flatlined at the span's first value.
    flapping:
        ``(sensor, start, stop, period, duty)`` spans turned into a NaN
        square wave (see :func:`inject_sensor_flapping`).
    out_of_order:
        Probability each timestamp is swapped with a later one at most
        ``out_of_order_span`` away (see :func:`inject_out_of_order`).
    out_of_order_span:
        Maximum displacement of an out-of-order swap, in samples.
    redelivery:
        Probability each timestamp redelivers the ``redelivery_lag``-old
        sample (see :func:`inject_redelivery`).
    redelivery_lag:
        Staleness of redelivered samples, in samples.
    skew:
        ``(sensor, shift)`` pairs: each sensor's series shifted ``shift``
        samples along the time axis (see :func:`inject_clock_skew`).
    seed:
        Seed of the private RNG; the same model applied to the same values
        always yields the same corruption.

    Faults compound in a fixed order — duplicates, redelivery,
    out-of-order, stuck-at, flapping, dropout, clock skew, then
    missing-at-random — so value-level and ordering faults act on real
    readings before gaps erase them.
    """

    missing_rate: float = 0.0
    duplicate_rate: float = 0.0
    dropout: tuple[tuple[int, int, int], ...] = field(default=())
    stuck: tuple[tuple[int, int, int], ...] = field(default=())
    flapping: tuple[tuple[int, int, int, int, float], ...] = field(default=())
    out_of_order: float = 0.0
    out_of_order_span: int = 4
    redelivery: float = 0.0
    redelivery_lag: int = 1
    skew: tuple[tuple[int, int], ...] = field(default=())
    seed: int = 0

    def __post_init__(self) -> None:
        for rate, label in (
            (self.missing_rate, "missing_rate"),
            (self.duplicate_rate, "duplicate_rate"),
            (self.out_of_order, "out_of_order"),
            (self.redelivery, "redelivery"),
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{label} must be in [0, 1), got {rate}")
        if self.out_of_order_span < 1:
            raise ValueError(
                f"out_of_order_span must be >= 1, got {self.out_of_order_span}"
            )
        if self.redelivery_lag < 1:
            raise ValueError(
                f"redelivery_lag must be >= 1, got {self.redelivery_lag}"
            )
        for spans, label in ((self.dropout, "dropout"), (self.stuck, "stuck")):
            for span in spans:
                if len(span) != 3:
                    raise ValueError(f"{label} spans must be (sensor, start, stop) triples")
        for flap in self.flapping:
            if len(flap) != 5:
                raise ValueError(
                    "flapping spans must be (sensor, start, stop, period, duty) tuples"
                )
        for pair in self.skew:
            if len(pair) != 2:
                raise ValueError("skew entries must be (sensor, shift) pairs")

    @property
    def is_clean(self) -> bool:
        """True when the model injects nothing at all."""
        return (
            # Rates are validated into [0, 1), so <= 0.0 is exact here and
            # avoids float ==/!= (lint rule R2).
            self.missing_rate <= 0.0
            and self.duplicate_rate <= 0.0
            and self.out_of_order <= 0.0
            and self.redelivery <= 0.0
            and not self.dropout
            and not self.stuck
            and not self.flapping
            and not self.skew
        )

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Return a corrupted copy of ``values`` (the input is untouched).

        A clean model returns a plain copy, so a fault-rate sweep's zero
        point exercises the exact same pipeline as the faulted points.
        """
        values = _as_matrix(values)
        rng = np.random.default_rng(self.seed)
        values = inject_duplicates(values, self.duplicate_rate, rng)
        values = inject_redelivery(values, self.redelivery, self.redelivery_lag, rng)
        values = inject_out_of_order(
            values, self.out_of_order, self.out_of_order_span, rng
        )
        for sensor, start, stop in self.stuck:
            values = inject_stuck_at(values, sensor, start, stop)
        for sensor, start, stop, period, duty in self.flapping:
            values = inject_sensor_flapping(values, sensor, start, stop, period, duty)
        for sensor, start, stop in self.dropout:
            values = inject_sensor_dropout(values, sensor, start, stop)
        for sensor, shift in self.skew:
            values = inject_clock_skew(values, sensor, shift)
        return inject_missing_at_random(values, self.missing_rate, rng)
