"""Delivery-fault chaos injection for the ingest frontier.

:class:`~repro.runtime.chaos.ChaosModel` corrupts the *process* (crashes,
stalls, torn checkpoints); :class:`~repro.datasets.faults.FaultModel`
corrupts the *data*.  This module corrupts the *transport*: the same
envelopes, delivered wrong — shuffled within a bounded disorder window,
redelivered (possibly much later), and stamped by skewed producer clocks.

Same discipline as ``repro.runtime.chaos``: every decision is a pure
function of ``(seed, channel, sensor, seq)`` — no ambient RNG, no
call-history dependence — so a delivery schedule is exactly reproducible
and shares one fault vocabulary with the dataset-level knobs
(``out_of_order`` / ``redelivery`` / ``skew`` on ``FaultModel``).

The headline property the soak (``benchmarks/bench_delivery.py``) leans
on: with original deliveries delayed at most ``max_disorder`` ticks and a
frontier horizon of at least ``max_disorder``, *every* original arrives
before its row flushes — so the frontier's output is bit-identical to
clean delivery, while redeliveries delayed past the horizon exercise the
late-drop path without losing data (their original already landed).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np

from ..runtime.errors import ConfigurationError
from .envelope import SampleEnvelope

__all__ = ["DeliveryChaosModel"]

# Channel tags decorrelate the draws under one seed.
_CHANNEL_DELAY = 1
_CHANNEL_REDELIVERY = 2
_CHANNEL_SKEW = 3


@dataclass(frozen=True)
class DeliveryChaosModel:
    """A reproducible delivery-fault scenario for one envelope stream.

    Attributes
    ----------
    seed:
        Root seed; all decisions derive from it deterministically.
    out_of_order_rate:
        Probability an envelope's delivery is delayed by 1..``max_disorder``
        ticks (which is what shuffles arrival order).
    max_disorder:
        Upper bound on original-delivery delay in ticks.  Keep it at or
        below the frontier's ``disorder_horizon`` for lossless recovery.
    redelivery_rate:
        Probability an envelope is delivered *twice*.  The copy carries an
        independent delay of 0..``redelivery_max_delay`` ticks on top of
        the original's arrival, and may legitimately exceed the horizon —
        it then arrives late and is dropped, double-delivery never
        double-counts.
    redelivery_max_delay:
        Upper bound on the extra delay of redelivered copies.
    skew_magnitude:
        Per-sensor constant clock offset drawn once per sensor from
        ``[-skew_magnitude, +skew_magnitude]`` and *added* to every
        timestamp of that sensor (the producer's clock runs fast/slow).
        Recover it on the frontier side via ``FrontierConfig(skew=
        model.skews(n_sensors))``; offsets under half a grid period are
        absorbed by snapping even uncorrected.
    """

    seed: int = 0
    out_of_order_rate: float = 0.0
    max_disorder: int = 0
    redelivery_rate: float = 0.0
    redelivery_max_delay: int = 0
    skew_magnitude: float = 0.0

    def __post_init__(self) -> None:
        for rate, label in (
            (self.out_of_order_rate, "out_of_order_rate"),
            (self.redelivery_rate, "redelivery_rate"),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1], got {rate}")
        for bound, label in (
            (self.max_disorder, "max_disorder"),
            (self.redelivery_max_delay, "redelivery_max_delay"),
        ):
            if bound < 0:
                raise ConfigurationError(f"{label} must be >= 0, got {bound}")
        if self.skew_magnitude < 0.0:
            raise ConfigurationError(
                f"skew_magnitude must be >= 0, got {self.skew_magnitude}"
            )
        if self.seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {self.seed}")

    @property
    def is_clean(self) -> bool:
        """True when delivery is untouched (in order, once, unskewed)."""
        return (
            (self.out_of_order_rate <= 0.0 or self.max_disorder == 0)
            and self.redelivery_rate <= 0.0
            and self.skew_magnitude <= 0.0
        )

    def skew(self, sensor: int) -> float:
        """The constant clock offset of one sensor."""
        if self.skew_magnitude <= 0.0:
            return 0.0
        rng = np.random.default_rng([self.seed, _CHANNEL_SKEW, sensor])
        return float(rng.uniform(-self.skew_magnitude, self.skew_magnitude))

    def skews(self, n_sensors: int) -> tuple[float, ...]:
        """All per-sensor offsets, for ``FrontierConfig(skew=...)``."""
        return tuple(self.skew(sensor) for sensor in range(n_sensors))

    def delay(self, sensor: int, seq: int) -> int:
        """Delivery delay (ticks) of one original envelope."""
        if self.out_of_order_rate <= 0.0 or self.max_disorder == 0:
            return 0
        rng = np.random.default_rng([self.seed, _CHANNEL_DELAY, sensor, seq])
        if float(rng.random()) >= self.out_of_order_rate:
            return 0
        return int(rng.integers(1, self.max_disorder + 1))

    def redelivery_delay(self, sensor: int, seq: int) -> int | None:
        """Extra delay of the redelivered copy, or None when not redelivered."""
        if self.redelivery_rate <= 0.0:
            return None
        rng = np.random.default_rng([self.seed, _CHANNEL_REDELIVERY, sensor, seq])
        if float(rng.random()) >= self.redelivery_rate:
            return None
        return int(rng.integers(0, self.redelivery_max_delay + 1))

    def deliver(
        self, envelopes: Iterable[SampleEnvelope]
    ) -> list[SampleEnvelope]:
        """Return the faulted delivery schedule of a clean envelope stream.

        Arrival time of an envelope is its sequence number plus its seeded
        delay (redelivered copies add their own); the returned list is
        sorted by ``(arrival, seq, sensor, copy)`` — a deterministic total
        order, so the same model over the same stream always delivers the
        same way.  Timestamps are re-stamped with the sensor's clock skew.
        """
        schedule: list[tuple[int, int, int, int, SampleEnvelope]] = []
        for envelope in envelopes:
            if self.skew_magnitude > 0.0:
                envelope = replace(
                    envelope,
                    timestamp=envelope.timestamp + self.skew(envelope.sensor),
                )
            arrival = envelope.seq + self.delay(envelope.sensor, envelope.seq)
            schedule.append(
                (arrival, envelope.seq, envelope.sensor, 0, envelope)
            )
            extra = self.redelivery_delay(envelope.sensor, envelope.seq)
            if extra is not None:
                schedule.append(
                    (arrival + extra, envelope.seq, envelope.sensor, 1, envelope)
                )
        schedule.sort(key=lambda item: item[:4])
        return [item[4] for item in schedule]
