"""Timestamped ingest frontier for the CAD streaming pipeline.

Production telemetry arrives out-of-order, duplicated, late and
clock-skewed.  This package reconstructs the aligned n-sensor sample rows
the detector's round grid assumes, deterministically:

* :class:`SampleEnvelope` — the typed, validated delivery unit (sensor id,
  sequence number, producer timestamp, payload);
* :class:`IngestFrontier` — bounded reorder buffer with watermark-driven
  in-order flush, explicit late policy (``drop`` / ``nan_patch``),
  idempotent ``(sensor, seq)`` dedup and per-sensor clock-skew alignment;
* :class:`DeliveryChaosModel` — seeded, counter-keyed delivery-fault
  injection (bounded shuffling, redelivery, skew) for the soak harness.

Rejections are typed (:mod:`repro.runtime.errors`):
``EnvelopeValidationError``, ``SequenceConflictError``,
``FrontierStateError``.  See DESIGN.md §9 for the delivery-semantics
contract.
"""

from ..runtime.errors import (
    EnvelopeValidationError,
    FrontierStateError,
    IngestError,
    SequenceConflictError,
)
from .chaos import DeliveryChaosModel
from .envelope import SampleEnvelope, envelopes_from_matrix
from .frontier import LATE_POLICIES, FrontierConfig, FrontierStats, IngestFrontier

__all__ = [
    "SampleEnvelope",
    "envelopes_from_matrix",
    "LATE_POLICIES",
    "FrontierConfig",
    "FrontierStats",
    "IngestFrontier",
    "DeliveryChaosModel",
    "IngestError",
    "EnvelopeValidationError",
    "SequenceConflictError",
    "FrontierStateError",
]
