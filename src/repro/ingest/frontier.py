"""The deterministic ingest frontier: reorder, dedup, align, watermark.

:class:`IngestFrontier` sits between any envelope source and
``StreamingCAD``/``StreamSupervisor`` and turns messy delivery —
out-of-order, duplicated, late and clock-skewed envelopes — back into the
aligned n-sensor sample rows the detector's round grid assumes:

* **Grid alignment** — each envelope's timestamp (minus the sensor's
  configured clock-skew offset) is snapped to the nearest grid position
  ``round((t - epoch) / period)``.  Ordering authority is the *envelope*
  timestamp, never the host clock (lint rule R9).
* **Bounded reorder buffer + watermark** — rows live in the buffer until
  the watermark (``max observed row - disorder_horizon``) passes them, at
  which point they flush *in grid order*.  The horizon bounds both memory
  and staleness: a row can never be held back by more than
  ``disorder_horizon`` ticks of progress.
* **Late policy** — an envelope for an already-flushed row is counted and
  dropped; what happened to its row at flush time is the policy choice:
  ``"nan_patch"`` emitted the row with NaN in the never-received cells
  (PR 1's NaN-aware degraded-data path absorbs them; wholly-missing rows
  become all-NaN rows so the grid keeps its shape), ``"drop"`` skipped
  incomplete rows entirely (the stream sees only complete rows, and needs
  no ``allow_missing``).
* **Idempotent dedup** — the cell ``(sensor, row)`` remembers the sequence
  number that filled it; redelivery of the same ``(sensor, seq)`` is a
  counted no-op, while a *different* seq claiming the same cell raises
  :class:`~repro.runtime.errors.SequenceConflictError` (producer numbering
  is broken; silently keeping either value would corrupt the stream).

Everything is a pure function of the envelope stream: no wall clock, no
hidden RNG.  The same envelopes in any arrival order (within the horizon)
flush the same rows — that is the bit-identity contract
``benchmarks/bench_delivery.py`` soaks and ``tests/test_ingest*.py`` prove.

State round-trips through :meth:`IngestFrontier.to_state` /
:meth:`IngestFrontier.restore_state` (JSON-safe), which is how the
supervisor checkpoints a frontier mid-reorder and a restarted process
resumes it: redelivered envelopes for rows still pending dedup away, rows
already flushed count as late, nothing double-feeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

import numpy as np

from ..runtime.errors import (
    ConfigurationError,
    EnvelopeValidationError,
    FrontierStateError,
    SequenceConflictError,
)
from .envelope import SampleEnvelope

__all__ = ["LATE_POLICIES", "FrontierConfig", "FrontierStats", "IngestFrontier"]

LATE_POLICIES = ("drop", "nan_patch")

_STATE_FORMAT = "repro-ingest-frontier"
_STATE_VERSION = 1

#: Counter names serialised into checkpoints and reported by ``stats``.
_COUNTERS = (
    "accepted",
    "reordered",
    "deduped",
    "late_dropped",
    "nan_patched",
    "rows_emitted",
    "rows_dropped",
)


@dataclass(frozen=True)
class FrontierConfig:
    """Policy knobs of one ingest frontier (all deterministic).

    Attributes
    ----------
    n_sensors:
        Width of the assembled sample rows.
    disorder_horizon:
        Reorder window in grid ticks: a row flushes once an envelope for a
        row this much newer has been observed.  0 means no reordering
        tolerance — a row flushes as soon as any newer row is observed
        (strictly-ordered sources only).
    late_policy:
        ``"nan_patch"`` (default): rows flush with NaN in never-received
        cells; ``"drop"``: incomplete rows are skipped entirely.
    dedup:
        When True (default), redelivered ``(sensor, seq)`` envelopes are
        idempotent and conflicting sequence numbers raise; when False, the
        last write to a cell wins (trusted single-delivery sources).
    epoch, period:
        The round grid: position ``r`` spans timestamp
        ``epoch + r * period``.
    skew:
        Optional per-sensor clock offsets *subtracted* from envelope
        timestamps before grid snapping — the correction for producers
        whose clocks run ahead/behind.  Offsets below ``period / 2`` are
        absorbed by snapping even without correction.
    """

    n_sensors: int
    disorder_horizon: int = 64
    late_policy: str = "nan_patch"
    dedup: bool = True
    epoch: float = 0.0
    period: float = 1.0
    skew: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_sensors < 1:
            raise ConfigurationError(f"n_sensors must be >= 1, got {self.n_sensors}")
        if self.disorder_horizon < 0:
            raise ConfigurationError(
                f"disorder_horizon must be >= 0, got {self.disorder_horizon}"
            )
        if self.late_policy not in LATE_POLICIES:
            raise ConfigurationError(
                f"late_policy must be one of {LATE_POLICIES}, got {self.late_policy!r}"
            )
        if not (math.isfinite(self.period) and self.period > 0.0):
            raise ConfigurationError(f"period must be finite and > 0, got {self.period}")
        if not math.isfinite(self.epoch):
            raise ConfigurationError(f"epoch must be finite, got {self.epoch}")
        if self.skew is not None:
            if len(self.skew) != self.n_sensors:
                raise ConfigurationError(
                    f"skew must give one offset per sensor ({self.n_sensors}), "
                    f"got {len(self.skew)}"
                )
            if not all(math.isfinite(s) for s in self.skew):
                raise ConfigurationError("skew offsets must all be finite")
            object.__setattr__(self, "skew", tuple(float(s) for s in self.skew))


@dataclass(frozen=True)
class FrontierStats:
    """Point-in-time counters of one frontier (feeds ``HealthSnapshot``).

    Attributes
    ----------
    accepted:
        Envelopes written into the reorder buffer.
    reordered:
        Envelopes that arrived after a newer row had been observed, i.e.
        actual out-of-order deliveries the buffer re-sequenced.
    deduped:
        Redelivered ``(sensor, seq)`` envelopes absorbed idempotently.
    late_dropped:
        Envelopes for already-flushed rows, discarded per the late policy.
    nan_patched:
        Cells emitted as NaN because their envelope never arrived in time
        (``late_policy="nan_patch"`` only).
    rows_emitted, rows_dropped:
        Rows flushed to the consumer / skipped as incomplete
        (``late_policy="drop"`` only).
    watermark_lag:
        Rows currently between the flush frontier and the newest observed
        row — the staleness an immediate final flush would catch up.
    pending_rows:
        Rows currently materialised in the reorder buffer.
    """

    accepted: int = 0
    reordered: int = 0
    deduped: int = 0
    late_dropped: int = 0
    nan_patched: int = 0
    rows_emitted: int = 0
    rows_dropped: int = 0
    watermark_lag: int = 0
    pending_rows: int = 0


class IngestFrontier:
    """Reorder/dedup/align frontier over one envelope stream (see module
    docstring).

    The flush API is pull-based so a supervisor can checkpoint between
    rows: :meth:`push` only stages, :meth:`pop_ready` hands out the next
    flushable row *and only then* advances the frontier — at every moment,
    rows not yet popped are still inside :meth:`to_state`.
    """

    def __init__(self, config: FrontierConfig) -> None:
        self._cfg = config
        self._pending: dict[int, np.ndarray] = {}
        self._pending_seq: dict[int, np.ndarray] = {}
        self._next_emit = 0
        self._max_row = -1
        self.accepted = 0
        self.reordered = 0
        self.deduped = 0
        self.late_dropped = 0
        self.nan_patched = 0
        self.rows_emitted = 0
        self.rows_dropped = 0

    @property
    def config(self) -> FrontierConfig:
        return self._cfg

    @property
    def watermark(self) -> int:
        """Highest row index currently allowed to flush.

        At least one tick below the newest observed row even at horizon 0:
        the newest row may still be mid-assembly (its remaining sensors'
        envelopes are in flight in any legal in-order delivery), so it can
        only flush via :meth:`drain` or once a newer row is observed.
        """
        return self._max_row - max(1, self._cfg.disorder_horizon)

    @property
    def next_emit(self) -> int:
        """Grid position of the next row to flush."""
        return self._next_emit

    # ----------------------------------------------------------------- #
    # Ingest
    # ----------------------------------------------------------------- #

    def position(self, envelope: SampleEnvelope) -> int:
        """Grid position of one envelope (skew-corrected, snapped)."""
        timestamp = envelope.timestamp
        if self._cfg.skew is not None:
            timestamp -= self._cfg.skew[envelope.sensor]
        pos = int(round((timestamp - self._cfg.epoch) / self._cfg.period))
        if pos < 0:
            raise EnvelopeValidationError(
                "timestamp",
                f"{envelope.timestamp} maps to grid position {pos}, before "
                f"the epoch {self._cfg.epoch}",
            )
        return pos

    def push(self, envelope: SampleEnvelope) -> int:
        """Stage one envelope; return how many rows are now flushable.

        Raises :class:`EnvelopeValidationError` for an out-of-range sensor
        or a pre-epoch timestamp, :class:`SequenceConflictError` when
        dedup detects inconsistent producer numbering.  Duplicate and late
        envelopes are absorbed silently (counted, never raised): both are
        normal delivery weather, not errors.
        """
        if not isinstance(envelope, SampleEnvelope):
            raise EnvelopeValidationError(
                "envelope", f"expected SampleEnvelope, got {type(envelope).__name__}"
            )
        if envelope.sensor >= self._cfg.n_sensors:
            raise EnvelopeValidationError(
                "sensor",
                f"{envelope.sensor} outside [0, {self._cfg.n_sensors})",
            )
        pos = self.position(envelope)
        if pos < self._next_emit:
            self.late_dropped += 1
            return self.ready_count()
        if pos < self._max_row:
            self.reordered += 1
        row = self._pending.get(pos)
        if row is None:
            row = np.full(self._cfg.n_sensors, np.nan)
            seqs = np.full(self._cfg.n_sensors, -1, dtype=np.int64)
            self._pending[pos] = row
            self._pending_seq[pos] = seqs
        else:
            seqs = self._pending_seq[pos]
        held = int(seqs[envelope.sensor])
        if held >= 0 and self._cfg.dedup:
            if held == envelope.seq:
                self.deduped += 1
                return self.ready_count()
            raise SequenceConflictError(envelope.sensor, pos, held, envelope.seq)
        row[envelope.sensor] = envelope.value
        seqs[envelope.sensor] = envelope.seq
        if pos > self._max_row:
            self._max_row = pos
        self.accepted += 1
        return self.ready_count()

    def extend(self, envelopes: Iterable[SampleEnvelope]) -> list[np.ndarray]:
        """Push many envelopes, returning every row that became flushable."""
        rows: list[np.ndarray] = []
        for envelope in envelopes:
            self.push(envelope)
            rows.extend(self.ready())
        return rows

    # ----------------------------------------------------------------- #
    # Flush
    # ----------------------------------------------------------------- #

    def ready_count(self) -> int:
        """Rows currently at or below the watermark, i.e. flushable now."""
        return max(0, min(self.watermark, self._max_row) - self._next_emit + 1)

    def pop_ready(self) -> np.ndarray | None:
        """Flush the next row past the watermark, or None if none is due.

        Under ``late_policy="drop"``, incomplete rows are consumed and
        skipped internally, so a non-None return is always a complete row.
        """
        while self._next_emit <= self.watermark:
            row = self._emit_next()
            if row is not None:
                return row
        return None

    def ready(self) -> Iterator[np.ndarray]:
        """Yield flushable rows until the watermark is reached."""
        while True:
            row = self.pop_ready()
            if row is None:
                return
            yield row

    def drain(self) -> Iterator[np.ndarray]:
        """Flush everything up to the newest observed row (end of stream)."""
        while self._next_emit <= self._max_row:
            row = self._emit_next()
            if row is not None:
                yield row

    def _emit_next(self) -> np.ndarray | None:
        pos = self._next_emit
        self._next_emit = pos + 1
        values = self._pending.pop(pos, None)
        seqs = self._pending_seq.pop(pos, None)
        if values is None:
            values = np.full(self._cfg.n_sensors, np.nan)
            missing = self._cfg.n_sensors
        else:
            missing = int((seqs < 0).sum())
        if self._cfg.late_policy == "drop":
            if missing > 0:
                self.rows_dropped += 1
                return None
        else:
            self.nan_patched += missing
        self.rows_emitted += 1
        return values

    # ----------------------------------------------------------------- #
    # Introspection / checkpointing
    # ----------------------------------------------------------------- #

    def stats(self) -> FrontierStats:
        return FrontierStats(
            accepted=self.accepted,
            reordered=self.reordered,
            deduped=self.deduped,
            late_dropped=self.late_dropped,
            nan_patched=self.nan_patched,
            rows_emitted=self.rows_emitted,
            rows_dropped=self.rows_dropped,
            watermark_lag=max(0, self._max_row - self._next_emit + 1),
            pending_rows=len(self._pending),
        )

    def to_state(self) -> dict[str, Any]:
        """JSON-safe snapshot (NaN cells serialise as ``null``)."""
        return {
            "format": _STATE_FORMAT,
            "version": _STATE_VERSION,
            "next_emit": self._next_emit,
            "max_row": self._max_row,
            "counters": {name: int(getattr(self, name)) for name in _COUNTERS},
            "pending": {
                str(pos): [None if np.isnan(v) else float(v) for v in row]
                for pos, row in sorted(self._pending.items())
            },
            "pending_seq": {
                str(pos): [int(s) for s in seqs]
                for pos, seqs in sorted(self._pending_seq.items())
            },
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Adopt a :meth:`to_state` snapshot (checkpoint resume path)."""
        if not isinstance(state, dict) or state.get("format") != _STATE_FORMAT:
            raise FrontierStateError(f"not a frontier state payload: {state!r:.80}")
        if state.get("version") != _STATE_VERSION:
            raise FrontierStateError(
                f"unsupported frontier state version {state.get('version')!r}"
            )
        try:
            next_emit = int(state["next_emit"])
            max_row = int(state["max_row"])
            counters = {name: int(state["counters"][name]) for name in _COUNTERS}
            pending: dict[int, np.ndarray] = {}
            pending_seq: dict[int, np.ndarray] = {}
            for key, row in state["pending"].items():
                if len(row) != self._cfg.n_sensors:
                    raise FrontierStateError(
                        f"pending row {key} has {len(row)} cells, expected "
                        f"{self._cfg.n_sensors}"
                    )
                pending[int(key)] = np.array(
                    [np.nan if v is None else float(v) for v in row]
                )
            for key, seqs in state["pending_seq"].items():
                if len(seqs) != self._cfg.n_sensors:
                    raise FrontierStateError(
                        f"pending_seq row {key} has {len(seqs)} cells, expected "
                        f"{self._cfg.n_sensors}"
                    )
                pending_seq[int(key)] = np.asarray(seqs, dtype=np.int64)
        except FrontierStateError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise FrontierStateError(f"malformed frontier state: {exc}") from exc
        if set(pending) != set(pending_seq):
            raise FrontierStateError("pending and pending_seq rows disagree")
        if any(pos < next_emit for pos in pending):
            raise FrontierStateError("pending rows behind the flush frontier")
        self._next_emit = next_emit
        self._max_row = max_row
        self._pending = pending
        self._pending_seq = pending_seq
        for name, count in counters.items():
            setattr(self, name, count)
