"""Typed, validated delivery envelopes for the ingest frontier.

A :class:`SampleEnvelope` is the unit production telemetry actually ships:
one sensor's reading at one tick, stamped with the *producer's* sequence
number and local clock.  Everything the frontier needs to survive messy
delivery rides on the envelope:

* ``sensor`` — which stream the reading belongs to;
* ``seq`` — the producer's per-sensor tick counter, the identity used for
  idempotent dedup (redelivering ``(sensor, seq)`` is a no-op);
* ``timestamp`` — the producer's clock reading for the tick, the *ordering
  authority*: the frontier maps it onto the round grid (optionally after
  per-sensor clock-skew correction) and never consults the host clock
  (lint rule R9);
* ``value`` — the scalar payload.  NaN is the sanctioned missing marker
  (degraded-data semantics); ±inf is rejected outright, matching
  :class:`~repro.core.streaming.InvalidSampleError` at the detector door.

Validation happens at construction: a malformed envelope raises a typed
:class:`~repro.runtime.errors.EnvelopeValidationError` and never reaches
the reorder buffer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..runtime.errors import ConfigurationError, EnvelopeValidationError

__all__ = ["SampleEnvelope", "envelopes_from_matrix"]

#: Payload / timestamp types accepted as real scalars (bool is excluded:
#: a bool reading is almost always a schema bug upstream).
_REAL_TYPES = (int, float, np.integer, np.floating)


def _as_real(field: str, value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, _REAL_TYPES):
        raise EnvelopeValidationError(
            field, f"expected a real scalar, got {type(value).__name__}"
        )
    return float(value)


@dataclass(frozen=True)
class SampleEnvelope:
    """One sensor reading in flight (see module docstring).

    Attributes
    ----------
    sensor:
        0-based sensor index (width-checked against the frontier's
        ``n_sensors`` at ingest, not here).
    seq:
        Producer-side per-sensor sequence number, >= 0.
    timestamp:
        Producer clock reading for the tick; must be finite.
    value:
        The reading; NaN marks an explicitly-missing reading, inf is
        rejected.
    tenant:
        Owning tenant of the reading in a multi-tenant fleet.  The empty
        string is the single implicit tenant, so every pre-fleet producer
        and frontier path is untouched; the fleet's shard router requires
        an explicit, declared tenant id.
    """

    sensor: int
    seq: int
    timestamp: float
    value: float
    tenant: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.tenant, str):
            raise EnvelopeValidationError(
                "tenant",
                f"expected a str, got {type(self.tenant).__name__}",
            )
        for field in ("sensor", "seq"):
            raw = getattr(self, field)
            if isinstance(raw, bool) or not isinstance(raw, (int, np.integer)):
                raise EnvelopeValidationError(
                    field, f"expected an int, got {type(raw).__name__}"
                )
            if raw < 0:
                raise EnvelopeValidationError(field, f"must be >= 0, got {raw}")
            object.__setattr__(self, field, int(raw))
        timestamp = _as_real("timestamp", self.timestamp)
        if not math.isfinite(timestamp):
            raise EnvelopeValidationError(
                "timestamp", f"must be finite, got {timestamp}"
            )
        object.__setattr__(self, "timestamp", timestamp)
        value = _as_real("value", self.value)
        if math.isinf(value):
            raise EnvelopeValidationError(
                "value",
                "reading is infinite; inf is never a valid measurement "
                "(NaN marks a missing reading)",
            )
        object.__setattr__(self, "value", value)


def envelopes_from_matrix(
    values: np.ndarray,
    *,
    epoch: float = 0.0,
    period: float = 1.0,
    skew: Sequence[float] | None = None,
    start_seq: int = 0,
    tenant: str = "",
) -> Iterator[SampleEnvelope]:
    """Yield the clean, in-order envelope stream of an ``(n, T)`` matrix.

    Column ``t`` becomes ``n`` envelopes with ``seq = start_seq + t`` and
    ``timestamp = epoch + seq * period`` (plus the sensor's ``skew`` offset
    when given, modelling a drifted producer clock).  This is the reference
    delivery the chaos model perturbs and the frontier must reconstruct.
    ``tenant`` stamps every envelope with an owning tenant for fleet runs;
    the default keeps the single implicit tenant.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ConfigurationError(f"values must be 2-D (n_sensors, length), got {values.shape}")
    if period <= 0.0:
        raise ConfigurationError(f"period must be > 0, got {period}")
    n_sensors = values.shape[0]
    if skew is not None and len(skew) != n_sensors:
        raise ConfigurationError(
            f"skew must give one offset per sensor ({n_sensors}), got {len(skew)}"
        )
    for t in range(values.shape[1]):
        seq = start_seq + t
        tick = epoch + seq * period
        for sensor in range(n_sensors):
            offset = skew[sensor] if skew is not None else 0.0
            yield SampleEnvelope(
                sensor=sensor,
                seq=seq,
                timestamp=tick + offset,
                value=float(values[sensor, t]),
                tenant=tenant,
            )
