"""Clustering substrate: SBD, k-Shape (for SAND), k-means (for NormA)."""

from .kmeans import KMeansResult, kmeans
from .kshape import KShapeResult, extract_shape, kshape
from .sbd import cross_correlation, ncc_c, sbd, shift_series

__all__ = [
    "sbd",
    "ncc_c",
    "cross_correlation",
    "shift_series",
    "kshape",
    "KShapeResult",
    "extract_shape",
    "kmeans",
    "KMeansResult",
]
