"""Shape-Based Distance (SBD) from the k-Shape paper (paper reference [63]).

``SBD(x, y) = 1 - max_s NCC_c(x, y, s)`` where NCC_c is the coefficient
normalisation of the cross-correlation over all shifts ``s``.  Computed with
FFTs in O(m log m).
"""

from __future__ import annotations

import numpy as np


def _next_pow_two(n: int) -> int:
    return 1 << (2 * n - 1).bit_length()


def cross_correlation(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Full cross-correlation sequence of two equal-length 1-D series.

    Entry ``s`` (for ``s`` in ``[-(m-1), m-1]``, offset to ``[0, 2m-2]``)
    is ``sum_t x[t] * y[t - s]``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("cross_correlation expects equal-length 1-D series")
    m = x.size
    size = _next_pow_two(m)
    fx = np.fft.rfft(x, size)
    fy = np.fft.rfft(y, size)
    cc = np.fft.irfft(fx * np.conjugate(fy), size)
    # Reorder to shifts -(m-1) .. m-1.
    return np.concatenate([cc[-(m - 1):], cc[:m]]) if m > 1 else cc[:1]


def ncc_c(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Coefficient-normalised cross-correlation (in [-1, 1] per shift).

    Each factor's norm is tested against the zero threshold separately —
    gating on the *product* would misclassify two small-but-nonzero series
    (e.g. norms of ~1e-7 each) as degenerate and report distance 1 for a
    series against itself.
    """
    norm_x = float(np.linalg.norm(x))
    norm_y = float(np.linalg.norm(y))
    cc = cross_correlation(x, y)
    if norm_x <= 1e-12 or norm_y <= 1e-12:
        return np.zeros_like(cc)
    return cc / (norm_x * norm_y)


def sbd(x: np.ndarray, y: np.ndarray) -> tuple[float, int]:
    """Shape-based distance and the maximising shift.

    Returns ``(distance, shift)`` where ``distance`` is in [0, 2] and
    ``shift`` aligns ``y`` to ``x`` (positive: ``y`` moves right).
    """
    ncc = ncc_c(np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64))
    index = int(np.argmax(ncc))
    m = np.asarray(x).size
    shift = index - (m - 1)
    return float(1.0 - ncc[index]), shift


def sbd_to_reference(rows: np.ndarray, reference: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """SBD of every row of ``rows`` against one reference, batched.

    One batched FFT replaces a Python loop of :func:`sbd` calls — this is
    the hot path of k-Shape assignment and SAND scoring.  Returns
    ``(distances, shifts)`` arrays where ``shifts[i]`` aligns ``rows[i]`` to
    the reference.
    """
    rows = np.asarray(rows, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if rows.ndim != 2 or reference.ndim != 1 or rows.shape[1] != reference.size:
        raise ValueError("rows must be (n, m) and reference (m,)")
    m = reference.size
    size = _next_pow_two(m)
    f_ref = np.fft.rfft(reference, size)
    f_rows = np.fft.rfft(rows, size, axis=1)
    cc = np.fft.irfft(f_ref[None, :] * np.conjugate(f_rows), size, axis=1)
    if m > 1:
        cc = np.concatenate([cc[:, -(m - 1):], cc[:, :m]], axis=1)
    else:
        cc = cc[:, :1]
    ref_norm = float(np.linalg.norm(reference))
    row_norms = np.linalg.norm(rows, axis=1)
    # Per-factor zero tests, matching ncc_c: the product of two tiny norms
    # underflows the threshold even when both series are genuinely nonzero.
    degenerate = (row_norms <= 1e-12) | (ref_norm <= 1e-12)
    safe = np.where(degenerate, 1.0, ref_norm * row_norms)
    ncc = cc / safe[:, None]
    ncc[degenerate] = 0.0
    best = np.argmax(ncc, axis=1)
    distances = 1.0 - ncc[np.arange(rows.shape[0]), best]
    shifts = best - (m - 1)
    return distances, shifts


def shift_series(y: np.ndarray, shift: int) -> np.ndarray:
    """Shift ``y`` by ``shift`` positions, zero-padding the vacated end."""
    y = np.asarray(y, dtype=np.float64)
    m = y.size
    if shift == 0:
        return y.copy()
    result = np.zeros(m)
    if shift > 0:
        result[shift:] = y[: m - shift]
    else:
        result[:shift] = y[-shift:]
    return result
