"""k-Shape clustering (Paparrizos & Gravano, paper reference [63]).

Used by the SAND baseline to maintain weighted subsequence centroids.
Subsequences are z-normalised; assignment uses SBD; the centroid of a
cluster is the *shape extraction*: the dominant eigenvector of the
shift-aligned members' scatter matrix, projected off the constant component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.normalization import zscore
from .sbd import sbd, sbd_to_reference, shift_series


@dataclass(frozen=True)
class KShapeResult:
    """Clustering outcome: centroids, labels and iteration count."""

    centroids: np.ndarray  # (k, m)
    labels: np.ndarray  # (n,)
    n_iterations: int


def extract_shape(members: np.ndarray, centroid: np.ndarray) -> np.ndarray:
    """Shape extraction: the new centroid of ``members`` (rows, z-normed).

    Members are first SBD-aligned to the current centroid; the centroid is
    then the leading eigenvector of ``Q S Q`` with ``S`` the aligned scatter
    matrix and ``Q`` the centering projector, sign-fixed to correlate
    positively with the member mean.
    """
    if members.ndim != 2 or members.shape[0] == 0:
        raise ValueError("members must be a non-empty (n, m) matrix")
    m = members.shape[1]
    if np.linalg.norm(centroid) <= 1e-12:
        aligned = members
    else:
        _, shifts = sbd_to_reference(members, centroid)
        aligned = np.vstack(
            [shift_series(row, int(shift)) for row, shift in zip(members, shifts)]
        )
    scatter = aligned.T @ aligned
    q = np.eye(m) - np.ones((m, m)) / m
    matrix = q @ scatter @ q
    # eigh returns ascending eigenvalues; the last eigenvector dominates.
    _, vectors = np.linalg.eigh(matrix)
    shape = vectors[:, -1]
    reference = aligned.mean(axis=0)
    if shape @ reference < 0:
        shape = -shape
    return zscore(shape)


def kshape(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 12,
) -> KShapeResult:
    """Cluster the rows of ``data`` into ``k`` shape clusters.

    Rows are z-normalised internally.  Empty clusters are re-seeded with the
    sample farthest from its centroid, keeping ``k`` populated clusters.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be (n, m), got shape {data.shape}")
    n, m = data.shape
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n], got k={k} n={n}")

    normalised = np.vstack([zscore(row) for row in data])
    labels = rng.integers(0, k, size=n)
    centroids = np.zeros((k, m))

    for iteration in range(1, max_iterations + 1):
        # Refinement: recompute each cluster's shape.
        for c in range(k):
            members = normalised[labels == c]
            if members.shape[0] == 0:
                # sorted(): set iteration order is undefined; keep the dict
                # construction deterministic (R1).
                per_label = {
                    label: sbd_to_reference(normalised, centroids[label])[0]
                    for label in sorted(set(labels.tolist()))
                }
                distances = np.array(
                    [per_label[labels[i]][i] for i in range(n)]
                )
                farthest = int(np.argmax(distances))
                centroids[c] = normalised[farthest]
                labels[farthest] = c
                members = normalised[labels == c]
            centroids[c] = extract_shape(members, centroids[c])

        # Assignment: nearest centroid by SBD (batched per centroid).
        distance_matrix = np.column_stack(
            [sbd_to_reference(normalised, centroids[c])[0] for c in range(k)]
        )
        new_labels = np.argmin(distance_matrix, axis=1)
        if np.array_equal(new_labels, labels):
            return KShapeResult(centroids=centroids, labels=labels, n_iterations=iteration)
        labels = new_labels

    return KShapeResult(centroids=centroids, labels=labels, n_iterations=max_iterations)
