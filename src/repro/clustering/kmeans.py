"""Euclidean k-means with k-means++ seeding (used by the NormA baseline)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Clustering outcome: centroids, labels, inertia, iteration count."""

    centroids: np.ndarray  # (k, m)
    labels: np.ndarray  # (n,)
    inertia: float
    n_iterations: int

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.centroids.shape[0])


def _plus_plus_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]))
    first = int(rng.integers(n))
    centroids[0] = data[first]
    closest = np.sum((data - centroids[0]) ** 2, axis=1)
    for c in range(1, k):
        total = closest.sum()
        if total <= 1e-15:
            centroids[c] = data[int(rng.integers(n))]
            continue
        probabilities = closest / total
        choice = int(rng.choice(n, p=probabilities))
        centroids[c] = data[choice]
        distances = np.sum((data - centroids[c]) ** 2, axis=1)
        np.minimum(closest, distances, out=closest)
    return centroids


def kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
) -> KMeansResult:
    """Cluster the rows of ``data`` into ``k`` groups.

    Empty clusters are re-seeded with the point farthest from its centroid.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be (n, m), got shape {data.shape}")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, n], got k={k} n={n}")

    centroids = _plus_plus_init(data, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    inertia = np.inf
    for iteration in range(1, max_iterations + 1):
        # Squared distances to all centroids at once.
        distances = (
            np.sum(data * data, axis=1)[:, None]
            - 2.0 * data @ centroids.T
            + np.sum(centroids * centroids, axis=1)[None, :]
        )
        labels = np.argmin(distances, axis=1)
        new_inertia = float(distances[np.arange(n), labels].sum())

        for c in range(k):
            members = data[labels == c]
            if members.shape[0] == 0:
                worst = int(np.argmax(distances[np.arange(n), labels]))
                centroids[c] = data[worst]
                labels[worst] = c
            else:
                centroids[c] = members.mean(axis=0)

        if abs(inertia - new_inertia) <= tolerance * max(1.0, abs(inertia)):
            inertia = new_inertia
            return KMeansResult(centroids, labels, inertia, iteration)
        inertia = new_inertia
    return KMeansResult(centroids, labels, inertia, max_iterations)
