"""File collection, pragma handling and rule execution for the linter.

The engine is intentionally free of third-party dependencies: ``ast`` +
``re`` over the files named on the command line.  Suppression is explicit
and local — a ``# repro: noqa[R1]`` pragma on the offending line (optionally
listing several rule ids, optionally followed by a justification) — and
grandfathering lives in a reviewed baseline file, never in the code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .rules import ALL_RULES, FileContext, Rule, Violation

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[R1,R5] reason...``.
_PRAGMA = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?")

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass(frozen=True)
class ParseFailure:
    """A file the linter could not parse; reported alongside violations."""

    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:1: PARSE {self.message}"


@dataclass
class AnalysisReport:
    """Everything one run produced, before baseline filtering."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    parse_failures: list[ParseFailure] = field(default_factory=list)
    checked_files: int = 0


def parse_pragmas(lines: Sequence[str]) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to suppressed rule ids (None = all rules)."""
    pragmas: dict[int, frozenset[str] | None] = {}
    for number, line in enumerate(lines, start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            pragmas[number] = None
        else:
            pragmas[number] = frozenset(
                code.strip().upper() for code in codes.split(",") if code.strip()
            )
    return pragmas


def is_suppressed(
    violation: Violation, pragmas: dict[int, frozenset[str] | None]
) -> bool:
    codes = pragmas.get(violation.line, frozenset())
    if codes is None:
        return True
    return violation.rule in codes


def collect_files(targets: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: dict[Path, None] = {}
    for target in targets:
        path = Path(target)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIR_NAMES.intersection(candidate.parts):
                    seen.setdefault(candidate, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return sorted(seen)


def build_context(path: Path, source: str, relpath: str | None = None) -> FileContext:
    """Parse one file into the context rules consume (raises SyntaxError)."""
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        relpath=relpath if relpath is not None else path.as_posix(),
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )


def analyze_source(
    source: str, relpath: str, rules: Sequence[Rule] = ALL_RULES
) -> list[Violation]:
    """Lint one in-memory source blob (the unit-test entry point)."""
    ctx = build_context(Path(relpath), source, relpath)
    pragmas = parse_pragmas(ctx.lines)
    found: list[Violation] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for violation in rule.check(ctx):
            if not is_suppressed(violation, pragmas):
                found.append(violation)
    return sorted(found)


def analyze_paths(
    targets: Iterable[str | Path], rules: Sequence[Rule] = ALL_RULES
) -> AnalysisReport:
    """Lint every file under ``targets`` and aggregate the findings."""
    report = AnalysisReport()
    for path in collect_files(targets):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            report.parse_failures.append(
                ParseFailure(path.as_posix(), 1, f"unreadable file: {error}")
            )
            continue
        try:
            ctx = build_context(path, source)
        except SyntaxError as error:
            report.parse_failures.append(
                ParseFailure(path.as_posix(), error.lineno or 1, error.msg or "syntax error")
            )
            continue
        report.checked_files += 1
        pragmas = parse_pragmas(ctx.lines)
        for rule in rules:
            if not rule.applies(ctx):
                continue
            for violation in rule.check(ctx):
                if is_suppressed(violation, pragmas):
                    report.suppressed += 1
                else:
                    report.violations.append(violation)
    report.violations.sort()
    return report
