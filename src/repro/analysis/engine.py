"""File collection, pragma handling and rule execution for the linter.

The engine is intentionally free of third-party dependencies: ``ast`` +
``tokenize`` + ``re`` over the files named on the command line.  Suppression
is explicit and local — a ``# repro: noqa[R1]`` pragma on the offending line
(optionally listing several rule ids, optionally followed by a
justification) — and grandfathering lives in a reviewed baseline file,
never in the code.

Analysis runs in two phases.  The **file phase** parses each file and runs
the per-file rules exactly as before; it also collects each rule's
JSON-safe per-file summary plus a generic module summary (imports, defs,
classes).  The **project phase** assembles those summaries into a
:class:`~repro.analysis.project.ProjectContext` with a resolved call graph
and runs every rule's ``check_project`` once.  Both phases are pure
functions of file contents + rule set, which is what makes the incremental
cache (:mod:`repro.analysis.cache`) sound: per-file records are keyed by
content hash, the project result by a digest over every hash.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from .cache import AnalysisCache, content_hash, project_digest, ruleset_signature
from .project import (
    build_project,
    import_graph,
    load_docs,
    module_name_for,
    summarize_module,
)
from .rules import ALL_RULES, FileContext, Rule, Violation

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[R1,R5] reason...``.
_PRAGMA = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?")

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass(frozen=True)
class ParseFailure:
    """A file the linter could not parse; reported alongside violations."""

    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:1: PARSE {self.message}"


@dataclass
class AnalysisReport:
    """Everything one run produced, before baseline filtering."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    parse_failures: list[ParseFailure] = field(default_factory=list)
    checked_files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    project_from_cache: bool = False


def _merge_pragma(
    existing: frozenset[str] | None, codes: frozenset[str] | None
) -> frozenset[str] | None:
    """Bare ``noqa`` (None) dominates; otherwise code sets union."""
    if existing is None or codes is None:
        return None
    return existing | codes


def _pragmas_in_comment(comment: str) -> frozenset[str] | None | object:
    """All pragmas in one comment string merged, or ``_NO_PRAGMA``."""
    merged: frozenset[str] | None | object = _NO_PRAGMA
    for match in _PRAGMA.finditer(comment):
        codes = match.group("codes")
        parsed: frozenset[str] | None
        if codes is None:
            parsed = None
        else:
            parsed = frozenset(
                code.strip().upper() for code in codes.split(",") if code.strip()
            )
        if merged is _NO_PRAGMA:
            merged = parsed
        else:
            merged = _merge_pragma(merged, parsed)  # type: ignore[arg-type]
    return merged


_NO_PRAGMA = object()


def parse_pragmas_source(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to suppressed rule ids (None = all rules).

    Tokenises the source so pragma-shaped text inside string literals is
    ignored, and merges *every* pragma in a comment (not just the first):
    ``# repro: noqa[R1]; # repro: noqa[R2]`` suppresses both rules, and a
    bare ``# repro: noqa`` anywhere on the line suppresses everything.
    """
    pragmas: dict[int, frozenset[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            found = _pragmas_in_comment(token.string)
            if found is _NO_PRAGMA:
                continue
            line = token.start[0]
            if line in pragmas:
                pragmas[line] = _merge_pragma(pragmas[line], found)  # type: ignore[arg-type]
            else:
                pragmas[line] = found  # type: ignore[assignment]
        return pragmas
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable sources fall back to the line scan; they fail the
        # lint as PARSE findings anyway, so precision does not matter.
        return parse_pragmas(source.splitlines())


def parse_pragmas(lines: Sequence[str]) -> dict[int, frozenset[str] | None]:
    """Line-based fallback scan (kept for API compatibility and as the
    last resort for untokenisable sources)."""
    pragmas: dict[int, frozenset[str] | None] = {}
    for number, line in enumerate(lines, start=1):
        found = _pragmas_in_comment(line)
        if found is _NO_PRAGMA:
            continue
        pragmas[number] = found  # type: ignore[assignment]
    return pragmas


def is_suppressed(
    violation: Violation, pragmas: dict[int, frozenset[str] | None]
) -> bool:
    codes = pragmas.get(violation.line, frozenset())
    if codes is None:
        return True
    return violation.rule in codes


def collect_files(targets: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: dict[Path, None] = {}
    for target in targets:
        path = Path(target)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIR_NAMES.intersection(candidate.parts):
                    seen.setdefault(candidate, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return sorted(seen)


def build_context(path: Path, source: str, relpath: str | None = None) -> FileContext:
    """Parse one file into the context rules consume (raises SyntaxError)."""
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        relpath=relpath if relpath is not None else path.as_posix(),
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )


def analyze_source(
    source: str, relpath: str, rules: Sequence[Rule] = ALL_RULES
) -> list[Violation]:
    """Lint one in-memory source blob (the unit-test entry point).

    Runs the file phase only; cross-file rules need :func:`analyze_paths`.
    """
    ctx = build_context(Path(relpath), source, relpath)
    pragmas = parse_pragmas_source(source)
    found: list[Violation] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for violation in rule.check(ctx):
            if not is_suppressed(violation, pragmas):
                found.append(violation)
    return sorted(found)


def _build_record(
    path: Path, source: str, relpath: str, rules: Sequence[Rule]
) -> dict[str, Any]:
    """File-phase artefact for one file: violations, pragmas, summaries.

    Everything in the record is JSON-serialisable so the cache can persist
    it verbatim; cold and warm runs reconstruct identical state from it.
    """
    module, is_package = module_name_for(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return {
            "parse_failure": {
                "line": error.lineno or 1,
                "message": error.msg or "syntax error",
            }
        }
    ctx = FileContext(
        relpath=relpath, source=source, tree=tree, lines=source.splitlines()
    )
    pragmas = parse_pragmas_source(source)
    violations: list[Violation] = []
    suppressed = 0
    facts: dict[str, Any] = {}
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for violation in rule.check(ctx):
            if is_suppressed(violation, pragmas):
                suppressed += 1
            else:
                violations.append(violation)
        payload = rule.summarize(ctx)
        if payload is not None:
            facts[rule.rule_id] = payload
    return {
        "parse_failure": None,
        "violations": [v.to_json() for v in sorted(violations)],
        "suppressed": suppressed,
        "pragmas": {
            str(line): (None if codes is None else sorted(codes))
            for line, codes in pragmas.items()
        },
        "summary": summarize_module(tree, module, is_package),
        "facts": facts,
    }


def _record_pragmas(
    record: dict[str, Any] | None,
) -> dict[int, frozenset[str] | None]:
    if not record:
        return {}
    return {
        int(line): (None if codes is None else frozenset(codes))
        for line, codes in (record.get("pragmas") or {}).items()
    }


def _file_key(source: str, module: str | None) -> str:
    # The module name feeds the summaries, so it is part of the key: adding
    # or removing a neighbouring __init__.py invalidates the record even
    # though the file's own bytes did not change.
    return content_hash(source + "\x00" + (module or "<script>"))


def analyze_paths(
    targets: Iterable[str | Path],
    rules: Sequence[Rule] = ALL_RULES,
    *,
    root: str | Path | None = None,
    cache: AnalysisCache | None = None,
) -> AnalysisReport:
    """Lint every file under ``targets`` and aggregate the findings.

    ``root`` anchors doc-file lookup for the drift rules (default: the
    current directory).  Passing an :class:`AnalysisCache` makes the run
    incremental; the cache is saved before returning.
    """
    report = AnalysisReport()
    root_path = Path(root) if root is not None else Path(".")

    records: dict[str, dict[str, Any]] = {}
    hashes: dict[str, str] = {}
    lines_by_file: dict[str, list[str]] = {}

    for path in collect_files(targets):
        relpath = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            report.parse_failures.append(
                ParseFailure(relpath, 1, f"unreadable file: {error}")
            )
            continue
        module, _ = module_name_for(path)
        digest = _file_key(source, module)
        record = cache.lookup(relpath, digest) if cache is not None else None
        if record is None:
            record = _build_record(path, source, relpath, rules)
            if cache is not None:
                cache.store(relpath, digest, record)
        failure = record.get("parse_failure")
        if failure is not None:
            report.parse_failures.append(
                ParseFailure(relpath, failure["line"], failure["message"])
            )
            continue
        report.checked_files += 1
        report.suppressed += record["suppressed"]
        report.violations.extend(
            Violation.from_json(v) for v in record["violations"]
        )
        records[relpath] = record
        hashes[relpath] = digest
        lines_by_file[relpath] = source.splitlines()

    docs = load_docs(root_path)
    digest = project_digest(ruleset_signature(rules), hashes, docs)
    cached_project = (
        cache.lookup_project(digest) if cache is not None else None
    )
    if cached_project is not None:
        report.project_from_cache = True
        report.suppressed += cached_project["suppressed"]
        report.violations.extend(
            Violation.from_json(v) for v in cached_project["violations"]
        )
    else:
        summaries = {
            relpath: record["summary"] for relpath, record in records.items()
        }
        facts: dict[str, dict[str, Any]] = {"__lines__": lines_by_file}
        for relpath, record in records.items():
            for rule_id, payload in (record.get("facts") or {}).items():
                facts.setdefault(rule_id, {})[relpath] = payload
        project = build_project(summaries, docs, facts)
        kept: list[Violation] = []
        suppressed = 0
        for rule in rules:
            for violation in rule.check_project(project):
                pragmas = _record_pragmas(records.get(violation.path))
                if is_suppressed(violation, pragmas):
                    suppressed += 1
                else:
                    kept.append(violation)
        kept.sort()
        report.suppressed += suppressed
        report.violations.extend(kept)
        if cache is not None:
            cache.store_project(
                digest,
                {
                    "violations": [v.to_json() for v in kept],
                    "suppressed": suppressed,
                },
                import_graph(summaries),
            )

    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
        cache.prune(hashes)
        cache.save()

    report.violations.sort()
    return report
