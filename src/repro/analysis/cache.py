"""Incremental analysis cache: per-file artefacts keyed by content hash.

A cold run parses every file, runs the file rules, and builds the per-file
summaries the project pass consumes.  All of that is a pure function of
``(file content, rule set)``, so it is cached as one JSON record per file
keyed by the content's SHA-256.  The project pass itself is a pure function
of every file's summary plus the doc files, so its post-suppression findings
are cached under a global digest.  A warm run on an unchanged tree therefore
only hashes files and loads one JSON document — no ``ast.parse`` at all.

Invalidation:

* **content change** — the file's hash moves, its record misses, and the
  global digest moves, so the project pass re-runs;
* **transitive dependency change** — per-file records of *importers* stay
  valid (summaries depend only on their own file), but
  :meth:`AnalysisCache.stale_files` reports every transitive importer of a
  changed file via the stored module graph, and the global digest forces
  the cross-file pass to re-run — which is exactly the part of the analysis
  that could be affected;
* **rule-set change** — the signature covers rule ids and classes; any
  difference drops the whole cache.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

#: Bump whenever record layout or summary semantics change.
CACHE_SCHEMA = 1

_CACHE_FILENAME = "analysis-cache.json"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def ruleset_signature(rules: Sequence[Any]) -> str:
    """Identity of the rule set (and cache schema) the records depend on."""
    payload = [
        CACHE_SCHEMA,
        [
            [
                rule.rule_id,
                f"{rule.__class__.__module__}.{rule.__class__.__qualname__}",
                rule.title,
            ]
            for rule in rules
        ],
    ]
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def project_digest(
    signature: str,
    file_hashes: Mapping[str, str],
    docs: Mapping[str, str],
) -> str:
    """Global key for the cross-file pass: every input it can observe."""
    payload = {
        "signature": signature,
        "files": sorted(file_hashes.items()),
        "docs": sorted(
            (name, content_hash(text)) for name, text in docs.items()
        ),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


class AnalysisCache:
    """One JSON document under ``directory`` holding every artefact."""

    def __init__(self, directory: str | Path, rules: Sequence[Any]) -> None:
        self.directory = Path(directory)
        self.signature = ruleset_signature(rules)
        self.path = self.directory / _CACHE_FILENAME
        self.hits = 0
        self.misses = 0
        self._files: dict[str, dict[str, Any]] = {}
        self._project: dict[str, Any] = {}
        self._import_graph: dict[str, list[str]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("signature") != self.signature:
            # Rule-set (or schema) change: every artefact is suspect.
            return
        files = payload.get("files")
        project = payload.get("project")
        graph = payload.get("import_graph")
        if isinstance(files, dict):
            self._files = files
        if isinstance(project, dict):
            self._project = project
        if isinstance(graph, dict):
            self._import_graph = graph

    # -- per-file records --------------------------------------------------

    def lookup(self, relpath: str, digest: str) -> dict[str, Any] | None:
        entry = self._files.get(relpath)
        if entry is not None and entry.get("hash") == digest:
            self.hits += 1
            return entry["record"]
        self.misses += 1
        return None

    def store(self, relpath: str, digest: str, record: dict[str, Any]) -> None:
        self._files[relpath] = {"hash": digest, "record": record}
        self._dirty = True

    # -- project pass ------------------------------------------------------

    def lookup_project(self, digest: str) -> dict[str, Any] | None:
        if self._project.get("digest") == digest:
            return self._project["result"]
        return None

    def store_project(
        self,
        digest: str,
        result: dict[str, Any],
        import_graph: dict[str, list[str]],
    ) -> None:
        self._project = {"digest": digest, "result": result}
        self._import_graph = import_graph
        self._dirty = True

    # -- transitive invalidation ------------------------------------------

    def stale_files(self, current_hashes: Mapping[str, str]) -> set[str]:
        """Files whose whole-program facts may differ from the cached run:
        directly changed/new files plus every transitive importer (via the
        module graph captured at the last project pass)."""
        changed = {
            relpath
            for relpath, digest in current_hashes.items()
            if self._files.get(relpath, {}).get("hash") != digest
        }
        changed.update(
            relpath for relpath in self._files if relpath not in current_hashes
        )
        reverse: dict[str, set[str]] = {}
        for importer, targets in self._import_graph.items():
            for target in targets:
                reverse.setdefault(target, set()).add(importer)
        stale = set(changed)
        stack = sorted(changed)
        while stack:
            current = stack.pop()
            for importer in reverse.get(current, ()):
                if importer not in stale:
                    stale.add(importer)
                    stack.append(importer)
        return stale

    # -- persistence -------------------------------------------------------

    def prune(self, keep: Iterable[str]) -> None:
        """Drop records for files no longer part of the analysed set."""
        keep_set = set(keep)
        dropped = [rel for rel in self._files if rel not in keep_set]
        for rel in dropped:
            del self._files[rel]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "signature": self.signature,
            "files": self._files,
            "project": self._project,
            "import_graph": self._import_graph,
        }
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(self.path)
        self._dirty = False
