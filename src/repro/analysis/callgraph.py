"""Resolved call graph over the project index.

Nodes are ``"<dotted.module>:<qualname>"`` strings (``qualname`` is the
function name, or ``Class.method``).  Edges come from the raw dotted call
lists in each file's generic summary, resolved through the same import
machinery rules use for symbols:

* ``self.m()`` / ``cls.m()`` inside ``C.f`` resolves to ``C.m`` when the
  class defines it;
* bare ``helper()`` resolves to a same-module def, else an imported name;
* ``mod.func()`` resolves through the import table into other project
  modules (third-party targets drop out — the graph only claims edges it
  can prove).

Resolution is deliberately conservative: an edge that cannot be proven is
omitted, so rules built on reachability (R5's cross-module dispatch check,
R11's state-helper expansion, R12's lock-order propagation) under-approximate
rather than hallucinate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .project import ProjectContext


def node_id(module: str, qualname: str) -> str:
    return f"{module}:{qualname}"


@dataclass
class CallGraph:
    """Forward edges between resolved function nodes."""

    edges: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def build(cls, project: "ProjectContext") -> "CallGraph":
        edges: dict[str, tuple[str, ...]] = {}
        for relpath, summary in project.summaries.items():
            module = summary.get("module")
            if not module:
                continue
            for qualname, info in summary["defs"].items():
                caller = node_id(module, qualname)
                targets: set[str] = set()
                for raw in info["calls"]:
                    resolved = resolve_call(project, relpath, qualname, raw)
                    if resolved is not None:
                        targets.add(resolved)
                edges[caller] = tuple(sorted(targets))
        return cls(edges=edges)

    def callees(self, node: str) -> tuple[str, ...]:
        return self.edges.get(node, ())

    def transitive_callees(
        self, node: str, *, within_module: str | None = None
    ) -> set[str]:
        """Every node reachable from ``node`` (excluded), optionally
        restricted to callees living in one module (used by R11 to expand
        state helpers without leaking into other layers' contracts)."""
        seen: set[str] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            for callee in self.edges.get(current, ()):
                if callee in seen:
                    continue
                if within_module is not None and not callee.startswith(
                    within_module + ":"
                ):
                    continue
                seen.add(callee)
                stack.append(callee)
        seen.discard(node)
        return seen


def resolve_call(
    project: "ProjectContext", relpath: str, caller_qualname: str, raw: str
) -> str | None:
    """Resolve one raw dotted callee into a call-graph node, or ``None``."""
    summary = project.summaries[relpath]
    module = summary.get("module")
    if not module:
        return None
    defs = summary["defs"]
    classes = summary["classes"]
    parts = raw.split(".")
    head = parts[0]

    # self.m() / cls.m() inside a method of the same class.
    if head in ("self", "cls") and "." in caller_qualname:
        if len(parts) != 2:
            return None
        class_name = caller_qualname.split(".")[0]
        candidate = f"{class_name}.{parts[1]}"
        if candidate in defs:
            return node_id(module, candidate)
        return None

    # Local bare function, local Class.method, or local class constructor.
    if head in defs and len(parts) == 1:
        return node_id(module, head)
    if head in classes:
        if len(parts) == 1:
            init = f"{head}.__init__"
            return node_id(module, init) if init in defs else None
        candidate = ".".join(parts[:2])
        if candidate in defs:
            return node_id(module, candidate)
        return None

    absolute = project.resolve(relpath, raw)
    if absolute is None:
        return None
    return _node_for_absolute(project, absolute)


def _node_for_absolute(project: "ProjectContext", absolute: str) -> str | None:
    split = project.split_module(absolute)
    if split is None:
        return None
    target_module, qualname = split
    if not qualname:
        return None
    target_summary = project.summaries[project.by_module[target_module]]
    defs = target_summary["defs"]
    classes = target_summary["classes"]
    if qualname in defs:
        return node_id(target_module, qualname)
    head = qualname.split(".")[0]
    if head in classes:
        if "." not in qualname:
            init = f"{head}.__init__"
            return node_id(target_module, init) if init in defs else None
        candidate = ".".join(qualname.split(".")[:2])
        if candidate in defs:
            return node_id(target_module, candidate)
    return None


def restrict_to_module(nodes: Iterable[str], module: str) -> set[str]:
    prefix = module + ":"
    return {node for node in nodes if node.startswith(prefix)}
