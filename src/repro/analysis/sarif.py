"""SARIF 2.1.0 emitter for the analysis CLI.

One ``run`` from the ``repro.analysis`` driver: every rule in the registry
is described under ``tool.driver.rules`` (so viewers can show titles and
rationale), new violations surface as ``error`` results, baselined
(grandfathered) findings are emitted as ``note`` results carrying an
external suppression, and parse failures get the synthetic ``PARSE`` rule.
Output ordering is deterministic — same tree, same bytes.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .engine import ParseFailure
from .rules import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_PARSE_RULE = {
    "id": "PARSE",
    "name": "UnparsableFile",
    "shortDescription": {"text": "file could not be parsed"},
    "fullDescription": {
        "text": "unreadable or syntactically invalid files hide every other "
        "finding, so they fail the lint outright"
    },
    "defaultConfiguration": {"level": "error"},
}


def _rule_descriptor(rule: Any) -> dict[str, Any]:
    return {
        "id": rule.rule_id,
        "name": rule.__class__.__name__,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": "error"},
    }


def _location(path: str, line: int, col: int) -> dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": line, "startColumn": col},
        }
    }


def _result(violation: Violation, *, suppressed: bool) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": violation.rule,
        "level": "note" if suppressed else "error",
        "message": {"text": violation.message},
        "locations": [
            _location(violation.path, violation.line, violation.col)
        ],
    }
    if suppressed:
        result["suppressions"] = [
            {
                "kind": "external",
                "justification": "grandfathered by the reviewed baseline "
                "(shrink-only)",
            }
        ]
    return result


def sarif_report(
    new_violations: Sequence[Violation],
    grandfathered: Sequence[Violation],
    parse_failures: Sequence[ParseFailure],
    rules: Iterable[Any],
) -> dict[str, Any]:
    """The complete SARIF document as a JSON-safe dict."""
    results: list[dict[str, Any]] = []
    for failure in sorted(
        parse_failures, key=lambda f: (f.path, f.line, f.message)
    ):
        results.append(
            {
                "ruleId": "PARSE",
                "level": "error",
                "message": {"text": failure.message},
                "locations": [_location(failure.path, failure.line, 1)],
            }
        )
    for violation in sorted(new_violations):
        results.append(_result(violation, suppressed=False))
    for violation in sorted(grandfathered):
        results.append(_result(violation, suppressed=True))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": (
                            "https://github.com/repro/repro"
                            "#determinism--numerical-safety-linter"
                        ),
                        "rules": [
                            *(_rule_descriptor(rule) for rule in rules),
                            _PARSE_RULE,
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
