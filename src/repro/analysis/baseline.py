"""Baseline (grandfathering) support for :mod:`repro.analysis`.

A baseline entry acknowledges one existing violation — identified by file,
rule id and the *stripped source line* rather than a line number, so pure
line shifts (imports added above, docstrings grown) do not invalidate it,
while any edit to the offending line re-surfaces the finding.

Two invariants keep the mechanism honest:

* matching is multiset-based — three identical offending lines need three
  entries, so fixing one cannot hide the other two; and
* every entry must still match a live violation.  Entries that no longer do
  are *stale*; the CLI fails on them so the baseline can only ever shrink
  to match reality (CI's "no stale entries" self-test).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from .rules import Violation

BASELINE_VERSION = 1

#: Default baseline location, resolved relative to the working directory.
DEFAULT_BASELINE_NAME = ".repro-analysis-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered violation."""

    path: str
    rule: str
    source: str

    def to_json(self) -> dict[str, str]:
        return {"path": self.path, "rule": self.rule, "source": self.source}


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of filtering a run through the baseline."""

    new_violations: tuple[Violation, ...]
    grandfathered: tuple[Violation, ...]
    stale_entries: tuple[BaselineEntry, ...]


def _key(path: str, rule: str, source: str) -> tuple[str, str, str]:
    return (path, rule, " ".join(source.split()))


def entry_for(violation: Violation) -> BaselineEntry:
    return BaselineEntry(
        path=violation.path, rule=violation.rule, source=violation.source
    )


def load_baseline(path: str | Path) -> list[BaselineEntry]:
    """Read a baseline file; a missing file is an empty baseline."""
    file_path = Path(path)
    if not file_path.exists():
        return []
    data = json.loads(file_path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{file_path}: unsupported baseline format "
            f"(expected version {BASELINE_VERSION})"
        )
    entries = []
    for raw in data.get("entries", []):
        entries.append(
            BaselineEntry(
                path=str(raw["path"]),
                rule=str(raw["rule"]),
                source=str(raw.get("source", "")),
            )
        )
    return entries


def save_baseline(path: str | Path, violations: Iterable[Violation]) -> None:
    """Write the current findings as the new baseline (reviewed, committed)."""
    entries = [
        {"path": v.path, "rule": v.rule, "source": v.source}
        for v in sorted(violations)
    ]
    payload: dict[str, Any] = {
        "version": BASELINE_VERSION,
        # Write-only guidance for humans editing the file by hand;
        # load_baseline deliberately never reads it back.
        "comment": (  # repro: noqa[R11]
            "Grandfathered repro.analysis findings. Entries must keep "
            "matching live violations; stale entries fail the lint run. "
            "Shrink this file by fixing code, never grow it silently."
        ),
        "entries": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    violations: Sequence[Violation], entries: Sequence[BaselineEntry]
) -> BaselineResult:
    """Split findings into new vs grandfathered, and entries into live vs
    stale, with multiset semantics."""
    budget = Counter(_key(e.path, e.rule, e.source) for e in entries)
    new: list[Violation] = []
    grandfathered: list[Violation] = []
    for violation in violations:
        key = _key(violation.path, violation.rule, violation.source)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            grandfathered.append(violation)
        else:
            new.append(violation)
    stale: list[BaselineEntry] = []
    remaining = dict(budget)
    for entry in entries:
        key = _key(entry.path, entry.rule, entry.source)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            stale.append(entry)
    return BaselineResult(
        new_violations=tuple(new),
        grandfathered=tuple(grandfathered),
        stale_entries=tuple(stale),
    )
