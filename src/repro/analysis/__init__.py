"""repro.analysis — determinism & numerical-safety linter for this repo.

An AST-based static-analysis layer (stdlib only) that encodes CAD's
correctness invariants as executable rules:

========  ==========================================================
Rule      Protects
========  ==========================================================
R1        deterministic iteration (no raw set iteration)
R2        tolerance-based float comparison (no ``==`` on floats)
R3        explicit seeded RNGs (no module-level random state)
R4        pure round functions (no wall-clock in hot paths)
R5        picklable, race-free process-pool dispatch
R6        no mutable default arguments
R7        no swallowed exceptions on checkpoint/streaming paths
R8        NaN-aware reductions on degraded-mode-reachable arrays
R9        producer-time-only ingest (no host clock / naive datetime)
R10       SharedMemory cleanup on ``finally`` paths
R11       checkpoint save/load key symmetry (whole-program)
R12       lock/queue acquisition-order acyclicity (whole-program)
R13       config/CLI/docs agreement for the knob surface (whole-program)
R14       typed raises in runtime/ingest (whole-program)
========  ==========================================================

R1–R10 are per-file checks; R11–R14 run against a project-wide module
index and resolved call graph (see DESIGN.md §11), with per-file facts
cached content-addressed for incremental runs (``--cache-dir``) and a
SARIF 2.1.0 emitter for code-scanning UIs (``--sarif-out``).

Run ``python -m repro.analysis src/repro tests benchmarks``; suppress a
single finding with ``# repro: noqa[R1] <reason>``; grandfather existing
findings in ``.repro-analysis-baseline.json`` (stale entries fail the run).
See DESIGN.md, section "Enforced invariants", for the rule-by-rule mapping
to the paper/PR guarantees.
"""

from __future__ import annotations

from .baseline import (
    BaselineEntry,
    BaselineResult,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from .engine import (
    AnalysisReport,
    ParseFailure,
    analyze_paths,
    analyze_source,
    collect_files,
    parse_pragmas,
)
from .rules import ALL_RULES, RULES_BY_ID, FileContext, Rule, Violation

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "AnalysisReport",
    "BaselineEntry",
    "BaselineResult",
    "FileContext",
    "ParseFailure",
    "Rule",
    "Violation",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "collect_files",
    "load_baseline",
    "parse_pragmas",
    "save_baseline",
]
