"""CLI for the determinism & numerical-safety linter.

Usage::

    python -m repro.analysis src/repro tests benchmarks
    python -m repro.analysis src/repro --format json
    python -m repro.analysis src/repro --format sarif > findings.sarif
    python -m repro.analysis src/repro --cache-dir .repro-analysis-cache
    python -m repro.analysis src/repro --update-baseline   # grandfather
    python -m repro.analysis --list-rules

Exit codes: 0 clean, 1 findings (new violations, stale baseline entries or
parse failures), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from .cache import AnalysisCache
from .engine import analyze_paths
from .rules import ALL_RULES
from .sarif import sarif_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST linter enforcing CAD's determinism and numerical-safety "
            "invariants (rules R1-R14; see DESIGN.md 'Enforced invariants' "
            "and 'Whole-program analysis')."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="files or directories to lint (default: src/repro tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--sarif-out",
        default=None,
        metavar="PATH",
        help="additionally write a SARIF 2.1.0 report to PATH "
        "(independent of --format)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="incremental-analysis cache directory; unchanged files skip "
        "parsing and rule execution entirely",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file for grandfathered findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file with the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id, title and rationale, then exit",
    )
    return parser


def _resolve_baseline_path(arg: str | None) -> Path | None:
    if arg is not None:
        return Path(arg)
    default = Path(DEFAULT_BASELINE_NAME)
    return default if default.exists() else None


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"    {rule.rationale}")
        return 0

    targets = options.targets or ["src/repro", "tests", "benchmarks"]
    missing = [t for t in targets if not Path(t).exists()]
    if missing:
        parser.error(f"no such file or directory: {', '.join(missing)}")

    cache = (
        AnalysisCache(options.cache_dir, ALL_RULES)
        if options.cache_dir is not None
        else None
    )
    report = analyze_paths(targets, cache=cache)

    baseline_path = (
        Path(options.baseline)
        if options.update_baseline and options.baseline is not None
        else _resolve_baseline_path(options.baseline)
    )
    if options.update_baseline:
        if baseline_path is None:
            baseline_path = Path(DEFAULT_BASELINE_NAME)
        save_baseline(baseline_path, report.violations)
        print(
            f"wrote {len(report.violations)} baseline entries to {baseline_path}"
        )
        return 0

    entries = load_baseline(baseline_path) if baseline_path is not None else []
    result = apply_baseline(report.violations, entries)

    failed = bool(
        result.new_violations or result.stale_entries or report.parse_failures
    )

    if options.sarif_out is not None or options.format == "sarif":
        sarif = sarif_report(
            result.new_violations,
            result.grandfathered,
            report.parse_failures,
            ALL_RULES,
        )
        rendered = json.dumps(sarif, indent=2, sort_keys=True)
        if options.sarif_out is not None:
            Path(options.sarif_out).write_text(
                rendered + "\n", encoding="utf-8"
            )
        if options.format == "sarif":
            print(rendered)
            return 1 if failed else 0

    if options.format == "json":
        payload = {
            "checked_files": report.checked_files,
            "violations": [v.to_json() for v in result.new_violations],
            "grandfathered": [v.to_json() for v in result.grandfathered],
            "stale_baseline_entries": [e.to_json() for e in result.stale_entries],
            "parse_failures": [
                {"path": f.path, "line": f.line, "message": f.message}
                for f in report.parse_failures
            ],
            "suppressed": report.suppressed,
            "cache": {
                "enabled": cache is not None,
                "hits": report.cache_hits,
                "misses": report.cache_misses,
                "project_from_cache": report.project_from_cache,
            },
            "ok": not failed,
        }
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0

    for failure in report.parse_failures:
        print(failure.render())
    for violation in result.new_violations:
        print(violation.render())
    for entry in result.stale_entries:
        print(
            f"{entry.path}: STALE baseline entry for {entry.rule} "
            f"({entry.source!r} no longer matches a violation — remove it)"
        )
    summary = (
        f"{report.checked_files} files checked, "
        f"{len(result.new_violations)} violations, "
        f"{len(result.grandfathered)} grandfathered, "
        f"{len(result.stale_entries)} stale baseline entries, "
        f"{report.suppressed} suppressed by pragma"
    )
    if cache is not None:
        summary += (
            f" (cache: {report.cache_hits} hits, {report.cache_misses} misses)"
        )
    print(summary)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
