"""Whole-program index for :mod:`repro.analysis`.

The per-file rules (R1-R10) see one AST at a time; the cross-file rules
(R11-R14, and R5's cross-module pass) need to know how files relate: which
dotted module each file is, what every ``import`` resolves to, which
functions and classes each module defines, and who calls whom.  This module
builds that index from nothing but the stdlib ``ast`` — no imports are
executed, so analysing a broken or dependency-missing tree is always safe.

Everything produced here is JSON-serialisable on purpose: the incremental
cache (:mod:`repro.analysis.cache`) persists per-file summaries keyed by
content hash, so a warm run reconstructs the whole-program view without
re-parsing a single unchanged file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Any, Iterable

#: Doc files the drift rules (R13) read, looked up under the project root.
DOC_FILENAMES = ("README.md", "DESIGN.md")

#: Decorators that mark a class as a dataclass (field table extractable).
_DATACLASS_DECORATORS = {"dataclass", "dataclasses.dataclass"}


def module_name_for(path: Path) -> tuple[str | None, bool]:
    """Dotted module name for ``path``, walking ``__init__.py`` chains.

    Returns ``(name, is_package)``; ``name`` is ``None`` for scripts that
    sit outside any package (no ``__init__.py`` next to them).
    """
    resolved = Path(path)
    is_package = resolved.name == "__init__.py"
    parts: list[str] = [] if is_package else [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        return None, is_package
    return ".".join(reversed(parts)), is_package


def _decorator_names(node: ast.AST) -> list[str]:
    names: list[str] = []
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted(target)
        if dotted is not None:
            names.append(dotted)
    return names


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    return [n for n in names if n not in ("self", "cls")]


def _annotation_is_classvar(annotation: ast.AST) -> bool:
    for node in ast.walk(annotation):
        dotted = _dotted(node)
        if dotted in ("ClassVar", "typing.ClassVar"):
            return True
    return False


def _collect_calls(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    calls: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                calls.add(dotted)
    return sorted(calls)


def summarize_module(
    tree: ast.Module, module: str | None, is_package: bool
) -> dict[str, Any]:
    """The generic per-file summary every project rule builds on.

    JSON-safe by construction (the cache persists it verbatim): imports
    resolved to absolute dotted targets, top-level functions and methods
    with their raw call lists, classes with bases/decorators/dataclass
    fields, and the names of nested (closure) functions.
    """
    imports: dict[str, str] = {}
    imported_modules: list[str] = []
    defs: dict[str, dict[str, Any]] = {}
    classes: dict[str, dict[str, Any]] = {}
    nested: set[str] = set()

    base_parts = module.split(".") if module else []
    # ``from . import x`` in pkg/__init__.py resolves against pkg itself;
    # in pkg/mod.py level 1 resolves against pkg (strip the module name).
    package_parts = base_parts if is_package else base_parts[:-1]

    def resolve_from(node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        if not base_parts:
            return None
        anchor = package_parts[: len(package_parts) - (node.level - 1)]
        if node.level - 1 > len(package_parts):
            return None
        prefix = ".".join(anchor)
        if node.module:
            return f"{prefix}.{node.module}" if prefix else node.module
        return prefix or None

    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
                imported_modules.append(alias.name)
        elif isinstance(stmt, ast.ImportFrom):
            target = resolve_from(stmt)
            if target is None:
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    imported_modules.append(target)
                    continue
                imports[alias.asname or alias.name] = f"{target}.{alias.name}"

    def add_def(qualname: str, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defs[qualname] = {
            "line": func.lineno,
            "params": _param_names(func),
            "kwargs": func.args.kwarg is not None,
            "calls": _collect_calls(func),
            "decorators": _decorator_names(func),
        }

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_def(stmt.name, stmt)
        elif isinstance(stmt, ast.ClassDef):
            bases = [b for b in (_dotted(base) for base in stmt.bases) if b]
            decorators = _decorator_names(stmt)
            fields: dict[str, int] = {}
            methods: list[str] = []
            is_dataclass = bool(
                set(decorators).intersection(_DATACLASS_DECORATORS)
            )
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(member.name)
                    add_def(f"{stmt.name}.{member.name}", member)
                elif (
                    is_dataclass
                    and isinstance(member, ast.AnnAssign)
                    and isinstance(member.target, ast.Name)
                    and not _annotation_is_classvar(member.annotation)
                ):
                    fields[member.target.id] = member.lineno
            classes[stmt.name] = {
                "line": stmt.lineno,
                "bases": bases,
                "decorators": decorators,
                "dataclass": is_dataclass,
                "fields": fields,
                "methods": sorted(methods),
            }

    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is not outer and isinstance(
                inner, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                nested.add(inner.name)

    return {
        "module": module,
        "is_package": is_package,
        "imports": imports,
        "imported_modules": sorted(set(imported_modules)),
        "defs": defs,
        "classes": classes,
        "nested": sorted(nested),
    }


@dataclass
class ProjectContext:
    """Everything the cross-file rules see: summaries, symbols, call graph.

    ``summaries`` maps relpath -> generic summary, ``facts`` maps
    rule_id -> relpath -> that rule's own :meth:`Rule.summarize` payload,
    ``docs`` maps doc filename -> text (for the drift rules).
    """

    summaries: dict[str, dict[str, Any]]
    docs: dict[str, str] = field(default_factory=dict)
    facts: dict[str, dict[str, Any]] = field(default_factory=dict)
    by_module: dict[str, str] = field(default_factory=dict)
    callgraph: Any = None  # CallGraph; assigned by build_project

    def __post_init__(self) -> None:
        for relpath, summary in self.summaries.items():
            module = summary.get("module")
            if module:
                self.by_module.setdefault(module, relpath)

    # -- symbol resolution -------------------------------------------------

    def split_module(self, dotted: str) -> tuple[str, str] | None:
        """Split an absolute dotted path into (project module, remainder)
        on the longest module prefix the project knows about."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.by_module:
                return prefix, ".".join(parts[cut:])
        return None

    def resolve(self, relpath: str, dotted: str, _depth: int = 0) -> str | None:
        """Absolute origin of ``dotted`` as used inside ``relpath``.

        Follows import aliases (including chains of re-exports, e.g.
        ``runtime.errors`` re-exporting ``CheckpointError`` from
        ``core.checkpoint``) up to a small depth bound.  Returns a dotted
        string like ``"pkg.mod.Class"`` / ``"pkg.mod.func"`` or ``None``
        for names the project cannot account for (builtins, third-party).
        """
        if _depth > 8:
            return None
        summary = self.summaries.get(relpath)
        if summary is None:
            return None
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        module = summary.get("module")

        def canonical(absolute: str) -> str:
            split = self.split_module(absolute)
            if split is None:
                return absolute
            mod, remainder = split
            if not remainder:
                return absolute
            target_rel = self.by_module[mod]
            target_summary = self.summaries[target_rel]
            inner_head = remainder.split(".")[0]
            if (
                inner_head not in target_summary["defs"]
                and inner_head not in target_summary["classes"]
                and inner_head in target_summary["imports"]
            ):
                followed = self.resolve(target_rel, remainder, _depth + 1)
                if followed is not None:
                    return followed
            return absolute

        if head in summary["defs"] or head in summary["classes"]:
            if module is None:
                return None
            return f"{module}.{dotted}"
        if head in summary["imports"]:
            target = summary["imports"][head]
            absolute = ".".join([target, *rest]) if rest else target
            return canonical(absolute)
        # ``import a.b.c`` style usage keeps the absolute path inline.
        for imported in summary["imported_modules"]:
            if dotted == imported or dotted.startswith(imported + "."):
                return canonical(dotted)
        return None


def load_docs(root: Path) -> dict[str, str]:
    """Project doc files (README/DESIGN) the drift rules compare against."""
    docs: dict[str, str] = {}
    for name in DOC_FILENAMES:
        candidate = Path(root) / name
        try:
            docs[name] = candidate.read_text(encoding="utf-8")
        except OSError:
            continue
    return docs


def import_graph(summaries: dict[str, dict[str, Any]]) -> dict[str, list[str]]:
    """relpath -> sorted relpaths it imports (project-internal edges only)."""
    by_module = {
        s["module"]: rel for rel, s in summaries.items() if s.get("module")
    }
    graph: dict[str, list[str]] = {}
    for relpath, summary in summaries.items():
        targets: set[str] = set()
        candidates: Iterable[str] = (
            *summary["imports"].values(),
            *summary["imported_modules"],
        )
        for dotted in candidates:
            parts = dotted.split(".")
            for cut in range(len(parts), 0, -1):
                prefix = ".".join(parts[:cut])
                found = by_module.get(prefix)
                if found is not None:
                    if found != relpath:
                        targets.add(found)
                    break
        graph[relpath] = sorted(targets)
    return graph


def build_project(
    summaries: dict[str, dict[str, Any]],
    docs: dict[str, str],
    facts: dict[str, dict[str, Any]],
) -> ProjectContext:
    """Assemble the :class:`ProjectContext` (and its call graph)."""
    from .callgraph import CallGraph

    project = ProjectContext(summaries=summaries, docs=docs, facts=facts)
    project.callgraph = CallGraph.build(project)
    return project


def relpath_posix(path: Path | str) -> str:
    return PurePosixPath(Path(path).as_posix()).as_posix()
