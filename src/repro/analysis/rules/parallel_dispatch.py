"""R5 — functions shipped to the process pool must be module-level and
free of mutable shared state.

:mod:`repro.core.parallel` fans stage-A chunks over a
``ProcessPoolExecutor``.  Whatever lands in ``pool.submit(f, ...)`` /
``pool.map(f, ...)`` is pickled by reference: a lambda or nested closure
fails at runtime (and only when ``n_jobs > 1``, so tests at the default
miss it), a bound method drags its whole ``self`` across the fork, and a
module-level function that reads or writes a mutable module global races
against other workers — each fork sees its own divergent copy, which is
exactly the nondeterminism the refresh-aligned chunking was built to rule
out.

The check walks every submit/map dispatch site, resolves the dispatched
callable within the module, and verifies it is a module-level ``def`` whose
body neither declares ``global`` nor reads module-level names bound to
mutable literals (list/dict/set).

Dispatch targets *imported from another module* are invisible to the
single-file walk, so the rule also summarises, per file, (a) the dispatch
sites whose target is an imported name and (b) every module-level function's
worker-safety facts (``global`` declarations, free reads of mutable module
globals, nested-def names).  The project pass resolves each cross-module
dispatch through the import table and applies the same checks at the
dispatch site.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator

from .base import FileContext, Rule, Violation, call_name, dotted_name

_POOLISH_NAME_FRAGMENTS = ("pool", "executor", "workers")
_POOL_CONSTRUCTORS = ("ProcessPoolExecutor", "ThreadPoolExecutor", "Pool")


def _is_dispatch_call(node: ast.Call) -> bool:
    """`<receiver>.submit(...)` always; `<receiver>.map(...)` only when the
    receiver looks like an executor (name or constructor), so ordinary
    ``df.map``/``str.map`` style calls stay out of scope."""
    if not isinstance(node.func, ast.Attribute):
        return False
    attr = node.func.attr
    receiver = node.func.value
    if attr == "submit":
        return True
    if attr != "map":
        return False
    if isinstance(receiver, ast.Name):
        lowered = receiver.id.lower()
        return any(frag in lowered for frag in _POOLISH_NAME_FRAGMENTS)
    if isinstance(receiver, ast.Call):
        name = call_name(receiver) or ""
        return name.split(".")[-1] in _POOL_CONSTRUCTORS
    return False


def _module_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _mutable_module_globals(tree: ast.Module) -> frozenset[str]:
    """Module-level names bound to mutable literals (list/dict/set/...)."""
    mutable: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        if isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ) or (
            isinstance(value, ast.Call)
            and call_name(value) in ("list", "dict", "set", "bytearray", "deque")
        ):
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        mutable.add(sub.id)
    return frozenset(mutable)


def _local_bindings(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter and local-assignment names inside ``func`` (shadowing)."""
    args = func.args
    bound = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        bound.add(sub.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
    return bound


class ParallelDispatchRule(Rule):
    rule_id = "R5"
    title = "unpicklable or state-sharing pool dispatch"
    rationale = (
        "pool workers pickle the dispatched function by reference and fork "
        "module state; lambdas/closures fail at n_jobs>1 and mutable "
        "globals race across workers"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not (ctx.in_tests or ctx.in_benchmarks)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        module_funcs = _module_functions(ctx.tree)
        mutable_globals = _mutable_module_globals(ctx.tree)
        nested_names = self._nested_function_names(ctx.tree)
        checked: set[str] = set()

        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _is_dispatch_call(node)):
                continue
            if not node.args:
                continue
            yield from self._check_target(
                ctx,
                node.args[0],
                module_funcs,
                mutable_globals,
                nested_names,
                checked,
            )

    def _check_target(
        self,
        ctx: FileContext,
        target: ast.expr,
        module_funcs: dict[str, ast.FunctionDef],
        mutable_globals: frozenset[str],
        nested_names: frozenset[str],
        checked: set[str],
    ) -> Iterator[Violation]:
        if isinstance(target, ast.Lambda):
            yield self.violation(
                ctx,
                target,
                "lambda dispatched to a process pool cannot be pickled; "
                "promote it to a module-level function",
            )
            return
        if isinstance(target, ast.Call):
            name = call_name(target)
            if name in ("partial", "functools.partial") and target.args:
                yield from self._check_target(
                    ctx,
                    target.args[0],
                    module_funcs,
                    mutable_globals,
                    nested_names,
                    checked,
                )
            return
        if isinstance(target, ast.Attribute):
            root = dotted_name(target)
            if root is not None and root.split(".")[0] in ("self", "cls"):
                yield self.violation(
                    ctx,
                    target,
                    f"{root} is a bound method; pool workers would pickle "
                    "the whole instance — dispatch a module-level function "
                    "taking explicit arguments",
                )
            return
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if name in nested_names and name not in module_funcs:
            yield self.violation(
                ctx,
                target,
                f"{name} is a nested function; closures cannot be pickled "
                "for the pool — promote it to module level",
            )
            return
        func = module_funcs.get(name)
        if func is None or name in checked:
            return
        checked.add(name)
        locals_bound = _local_bindings(func)
        for sub in ast.walk(func):
            if isinstance(sub, ast.Global):
                yield self.violation(
                    ctx,
                    sub,
                    f"worker function {name}() declares `global "
                    f"{', '.join(sub.names)}`; worker processes fork their "
                    "own copies, so the mutation races and diverges",
                )
            elif (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id in mutable_globals
                and sub.id not in locals_bound
            ):
                yield self.violation(
                    ctx,
                    sub,
                    f"worker function {name}() reads module-level mutable "
                    f"state `{sub.id}`; pass it as an argument so each "
                    "dispatch ships an explicit value",
                )

    # -- cross-module pass -------------------------------------------------

    def summarize(self, ctx: FileContext) -> Any | None:
        module_funcs = _module_functions(ctx.tree)
        mutable_globals = _mutable_module_globals(ctx.tree)

        workers: dict[str, Any] = {}
        for name, func in module_funcs.items():
            locals_bound = _local_bindings(func)
            globals_declared: list[str] = []
            mutable_reads: list[str] = []
            for sub in ast.walk(func):
                if isinstance(sub, ast.Global):
                    globals_declared.extend(sub.names)
                elif (
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.id in mutable_globals
                    and sub.id not in locals_bound
                ):
                    mutable_reads.append(sub.id)
            if globals_declared or mutable_reads:
                workers[name] = {
                    "globals": sorted(set(globals_declared)),
                    "mutable_reads": sorted(set(mutable_reads)),
                }

        dispatches: list[list[Any]] = []
        if self.applies(ctx):
            for node in ast.walk(ctx.tree):
                if not (isinstance(node, ast.Call) and _is_dispatch_call(node)):
                    continue
                if not node.args:
                    continue
                target = node.args[0]
                if isinstance(target, ast.Call):
                    name = call_name(target)
                    if name in ("partial", "functools.partial") and target.args:
                        target = target.args[0]
                dotted = dotted_name(target)
                if dotted is None or dotted.split(".")[0] in ("self", "cls"):
                    continue
                # Locally defined targets are handled by the file pass.
                if "." not in dotted and dotted in module_funcs:
                    continue
                dispatches.append([dotted, target.lineno, target.col_offset])

        defined = sorted(module_funcs)
        nested = sorted(self._nested_function_names(ctx.tree))
        if not (workers or dispatches or nested or defined):
            return None
        return {
            "workers": workers,
            "dispatches": dispatches,
            "defined": defined,
            "nested": nested,
        }

    def check_project(self, project: Any) -> Iterator[Violation]:
        facts = project.facts.get(self.rule_id, {})
        for relpath in sorted(facts):
            for dotted, line, col in facts[relpath]["dispatches"]:
                origin = project.resolve(relpath, dotted)
                if origin is None:
                    continue
                split = project.split_module(origin)
                if split is None:
                    continue
                target_module, qualname = split
                if not qualname or "." in qualname:
                    continue  # methods/attributes out of cross-module scope
                target_relpath = project.by_module[target_module]
                target_facts = facts.get(target_relpath)
                if target_facts is None:
                    continue
                if (
                    qualname in target_facts["nested"]
                    and qualname not in target_facts["defined"]
                ):
                    yield self.project_violation(
                        project,
                        relpath,
                        line,
                        col,
                        f"{dotted} resolves to a nested function in "
                        f"{target_module}; closures cannot be pickled for "
                        "the pool — promote it to module level",
                    )
                    continue
                worker = target_facts["workers"].get(qualname)
                if worker is None:
                    continue
                for name in worker["globals"]:
                    yield self.project_violation(
                        project,
                        relpath,
                        line,
                        col,
                        f"dispatched worker {target_module}.{qualname}() "
                        f"declares `global {name}`; worker processes fork "
                        "their own copies, so the mutation races and "
                        "diverges",
                    )
                for name in worker["mutable_reads"]:
                    yield self.project_violation(
                        project,
                        relpath,
                        line,
                        col,
                        f"dispatched worker {target_module}.{qualname}() "
                        f"reads module-level mutable state `{name}`; pass "
                        "it as an argument so each dispatch ships an "
                        "explicit value",
                    )

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> frozenset[str]:
        nested: set[str] = set()
        for outer in ast.walk(tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(outer):
                if (
                    node is not outer
                    and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                ):
                    nested.add(node.name)
        return frozenset(nested)
