"""R14 — exception-taxonomy discipline in the runtime and ingest layers.

The supervisor's retry/recovery policy dispatches on exception *class*
(transient vs fatal, retryable vs checkpoint-corrupt); a bare ``ValueError``
raised deep in ``repro/runtime/`` or ``repro/ingest/`` falls through every
policy switch and becomes an unhandled crash instead of a classified fault.
So those layers may only raise from the ``repro.runtime.errors`` taxonomy:
classes defined in (or re-exported by) an ``errors`` module, plus any
project class deriving from one.  Taxonomy classes deliberately
multiple-inherit the builtin they replace (``ConfigurationError(SupervisorError,
ValueError)``), so callers' ``except ValueError`` keeps working while
policy code gains a typed hook.

Per file, the summary records every ``raise`` site with its resolved dotted
exception name; the project pass resolves each name through the import
table (following re-export chains) and checks membership in the taxonomy
closure.  Bare re-raises and variables are skipped (their class is whatever
was caught); ``NotImplementedError`` is allowed (abstract-method idiom).
"""

from __future__ import annotations

import ast
from typing import Any, Iterator

from .base import FileContext, ProjectRule, Violation, dotted_name

#: Builtins whose appearance in a ``raise`` is always fine.
_ALLOWED_BUILTINS = {"NotImplementedError"}

#: Builtin exception names we can classify without resolution.
_BUILTIN_EXCEPTIONS = {
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "BufferError", "EOFError", "Exception", "FloatingPointError",
    "GeneratorExit", "IndexError", "IndentationError", "IOError",
    "KeyboardInterrupt", "KeyError", "LookupError", "MemoryError",
    "NameError", "NotImplementedError", "OSError", "OverflowError",
    "PermissionError", "RecursionError", "ReferenceError", "RuntimeError",
    "StopAsyncIteration", "StopIteration", "SyntaxError", "SystemError",
    "SystemExit", "TabError", "TimeoutError", "TypeError",
    "UnboundLocalError", "UnicodeDecodeError", "UnicodeEncodeError",
    "UnicodeError", "ValueError", "ZeroDivisionError",
}


def _in_scope(ctx: FileContext) -> bool:
    parts = ctx.posix.split("/")
    return (
        "runtime" in parts or "ingest" in parts or "fleet" in parts
    ) and not (ctx.in_tests or ctx.in_benchmarks)


class ExceptionTaxonomyRule(ProjectRule):
    rule_id = "R14"
    title = "raise outside the runtime error taxonomy"
    rationale = (
        "retry/recovery policy dispatches on exception class; a builtin "
        "raised inside runtime/ingest/fleet skips every policy switch and turns "
        "a classifiable fault into an unhandled crash"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not (ctx.in_tests or ctx.in_benchmarks)

    def summarize(self, ctx: FileContext) -> Any | None:
        if not _in_scope(ctx):
            return None
        raises: list[list[Any]] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            dotted = dotted_name(target)
            if dotted is None:
                continue
            raises.append([dotted, node.lineno, node.col_offset])
        return {"raises": raises} if raises else None

    # -- project pass ------------------------------------------------------

    def check_project(self, project: Any) -> Iterator[Violation]:
        facts = project.facts.get(self.rule_id, {})
        if not facts:
            return
        taxonomy, taxonomy_modules = self._taxonomy(project)
        if not taxonomy_modules:
            # No errors module in the project: nothing to enforce against.
            return
        label = ", ".join(sorted(taxonomy_modules))
        for relpath in sorted(facts):
            for dotted, line, col in facts[relpath]["raises"]:
                head = dotted.split(".")[0]
                origin = project.resolve(relpath, dotted)
                if origin is not None and origin in taxonomy:
                    continue
                if origin is None:
                    # Unresolvable: a builtin name is a finding, a variable
                    # or third-party name is skipped (conservative).
                    if dotted not in _BUILTIN_EXCEPTIONS:
                        continue
                    if dotted in _ALLOWED_BUILTINS:
                        continue
                    yield self.project_violation(
                        project,
                        relpath,
                        line,
                        col,
                        f"raises builtin {dotted} inside runtime/ingest/fleet; "
                        f"raise a typed class from the {label} taxonomy so "
                        "retry/recovery policy can dispatch on it",
                    )
                    continue
                if head in _ALLOWED_BUILTINS:
                    continue
                yield self.project_violation(
                    project,
                    relpath,
                    line,
                    col,
                    f"raises {dotted} ({origin}), which is outside the "
                    f"{label} taxonomy; runtime/ingest/fleet faults must be "
                    "classifiable by the supervisor's policy switches",
                )

    def _taxonomy(self, project: Any) -> tuple[set[str], set[str]]:
        """(closure of taxonomy class origins, errors-module names)."""
        taxonomy: set[str] = set()
        modules: set[str] = set()
        for module, relpath in sorted(project.by_module.items()):
            if module.split(".")[-1] != "errors":
                continue
            modules.add(module)
            summary = project.summaries[relpath]
            for class_name in summary.get("classes", {}):
                taxonomy.add(f"{module}.{class_name}")
            # Re-exports: names the errors module imports are part of the
            # taxonomy under their *canonical* origin.
            for alias in summary.get("imports", {}):
                origin = project.resolve(relpath, alias)
                if origin is not None:
                    taxonomy.add(origin)
        if not modules:
            return taxonomy, modules
        # Closure: any project class whose base chain reaches the taxonomy.
        changed = True
        while changed:
            changed = False
            for relpath, summary in project.summaries.items():
                module = summary.get("module")
                if not module:
                    continue
                for class_name, info in summary.get("classes", {}).items():
                    origin = f"{module}.{class_name}"
                    if origin in taxonomy:
                        continue
                    for base in info.get("bases", []):
                        base_origin = project.resolve(relpath, base)
                        if base_origin in taxonomy:
                            taxonomy.add(origin)
                            changed = True
                            break
        return taxonomy, modules
