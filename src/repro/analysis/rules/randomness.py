"""R3 — no module-level random state inside ``src/repro``.

``random.*`` and the legacy ``np.random.<func>`` API draw from hidden
module-global generators: two call sites interleave differently across
refactors, process pools fork the state, and a seed set in one test leaks
into the next.  Every stochastic component in this repo takes an explicitly
seeded ``np.random.Generator`` (``np.random.default_rng(seed)``) as an
argument instead — that is what makes the synthetic datasets, k-shape
restarts and baseline detectors reproducible run over run.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation, dotted_name

#: The explicit-seeding surface of ``np.random`` — everything else is the
#: hidden-global legacy API.
_ALLOWED_NP_RANDOM = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


class ModuleRandomStateRule(Rule):
    rule_id = "R3"
    title = "module-level random state"
    rationale = (
        "hidden global RNG state breaks reproducibility; pass a seeded "
        "np.random.Generator (np.random.default_rng(seed)) explicitly"
    )

    def applies(self, ctx: FileContext) -> bool:
        return "repro/" in ctx.posix and not (ctx.in_tests or ctx.in_benchmarks)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.violation(
                            ctx,
                            node,
                            "import of the stdlib `random` module (global "
                            "state); use a seeded np.random.Generator",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        ctx,
                        node,
                        "import from the stdlib `random` module (global "
                        "state); use a seeded np.random.Generator",
                    )
                elif node.module in ("numpy.random", "numpy"):
                    for alias in node.names:
                        target = alias.name
                        if node.module == "numpy" and target != "random":
                            continue
                        if (
                            node.module == "numpy.random"
                            and target not in _ALLOWED_NP_RANDOM
                        ):
                            yield self.violation(
                                ctx,
                                node,
                                f"`from numpy.random import {target}` exposes "
                                "the hidden global generator; use "
                                "np.random.default_rng(seed)",
                            )
            elif isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted is None:
                    continue
                for prefix in ("np.random.", "numpy.random."):
                    if dotted.startswith(prefix):
                        member = dotted[len(prefix) :].split(".")[0]
                        if member not in _ALLOWED_NP_RANDOM:
                            yield self.violation(
                                ctx,
                                node,
                                f"{dotted} uses numpy's hidden global "
                                "generator; use a seeded "
                                "np.random.Generator instead",
                            )
                        break
