"""R7 — no bare ``except:`` / silently swallowed exceptions in persistence
and streaming paths.

Checkpoint save/restore and the streaming front-end are the two places an
exception means *corrupted or lost state*.  A bare ``except:`` (which also
eats ``KeyboardInterrupt``/``SystemExit``) or an ``except Exception: pass``
turns a half-written checkpoint or a dropped sample into a silent wrong
answer hours later.  Catch the narrowest type you can and either re-raise,
return an explicit degraded result, or surface the failure in the round's
quality report.

Scope: bare ``except:`` is flagged in every production module; swallowed
broad handlers additionally in files on the checkpoint/streaming/io paths.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator

from .base import FileContext, Rule, Violation, dotted_name

_BROAD = {"Exception", "BaseException"}
_STATE_PATH_STEMS = {"checkpoint", "streaming", "io", "faults"}


def _is_state_path(ctx: FileContext) -> bool:
    stem = PurePosixPath(ctx.relpath).stem
    return stem in _STATE_PATH_STEMS or stem.startswith(("checkpoint", "streaming"))


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Handler body does nothing but pass/``...``/``continue``."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis
        if isinstance(stmt, ast.Continue):
            continue
        return False
    return True


class SwallowedExceptionRule(Rule):
    rule_id = "R7"
    title = "bare / swallowed exception handler"
    rationale = (
        "a swallowed exception on the checkpoint or streaming path turns "
        "lost state into a silent wrong answer; catch narrowly and surface "
        "the failure"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not (ctx.in_tests or ctx.in_benchmarks)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        state_path = _is_state_path(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare `except:` also catches KeyboardInterrupt/"
                    "SystemExit; name the exception type",
                )
                continue
            if state_path and _swallows(node):
                caught = dotted_name(node.type) or "<expr>"
                if caught in _BROAD:
                    yield self.violation(
                        ctx,
                        node,
                        f"`except {caught}: pass` on a state-critical path "
                        "hides checkpoint/stream corruption; handle or "
                        "re-raise",
                    )
