"""R4 — no wall-clock reads in core/graph/timeseries hot paths.

A detection round's output must be a pure function of the windows it has
seen — that is what makes checkpoint/resume and the parallel offline path
bit-identical, and what lets a failure be replayed offline from the same
data.  ``time.time()`` / ``datetime.now()`` inside ``repro.core``,
``repro.graph`` or ``repro.timeseries`` smuggles the host clock into that
function.  Timing instrumentation belongs in ``repro.bench`` (which may use
``time.perf_counter``); timestamps belong to the caller, passed in as data.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation, dotted_name

#: Call targets that read the host clock.  Matched on the dotted suffix so
#: both ``time.time()`` and ``datetime.datetime.now()`` forms are caught.
_WALL_CLOCK_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)


class WallClockRule(Rule):
    rule_id = "R4"
    title = "wall-clock read in a hot path"
    rationale = (
        "round output must be a pure function of the input windows; clock "
        "reads break bit-identical resume/replay"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_package("core", "graph", "timeseries")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            for suffix in _WALL_CLOCK_SUFFIXES:
                if dotted == suffix or dotted.endswith("." + suffix):
                    yield self.violation(
                        ctx,
                        node,
                        f"{dotted}() reads the wall clock inside a "
                        "deterministic path; take time values as input or "
                        "move timing to repro.bench",
                    )
                    break
