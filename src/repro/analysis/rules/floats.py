"""R2 — no ``==`` / ``!=`` on float values outside tests.

Exact float comparison is how rank ties, threshold crossings and
convergence checks silently diverge between the fast and reference engines
(different but equally valid summation orders land within 1 ulp of each
other).  Production code must compare through the tolerance helpers in
:mod:`repro.core.numeric` (``float_eq`` / ``arrays_close``) or restructure
the comparison (``<=`` against a validated bound).

The rule fires only when one operand is *provably* float-valued: a float
literal, a call into a known float-returning function (``float``,
``np.mean``, ...), an ``np.array(..., dtype=np.float64)`` constructor, or a
local name only ever assigned such expressions.  Comparisons the AST cannot
type are left alone.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import (
    FileContext,
    Rule,
    Violation,
    infer_float_names,
    is_float_expression,
    iter_scopes,
)


class FloatEqualityRule(Rule):
    rule_id = "R2"
    title = "exact float equality"
    rationale = (
        "float == / != is sensitive to summation order and platform; use "
        "repro.core.numeric.float_eq / arrays_close or an inequality bound"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not (ctx.in_tests or ctx.in_benchmarks)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for scope, body in iter_scopes(ctx.tree):
            float_names = infer_float_names(body)
            for node in _walk_scope(scope):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left, *node.comparators]
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    if is_float_expression(left, float_names) or is_float_expression(
                        right, float_names
                    ):
                        yield self.violation(
                            ctx,
                            node,
                            "exact ==/!= on a float value; use "
                            "repro.core.numeric.float_eq/arrays_close or an "
                            "inequality with an explicit bound",
                        )
                        break


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    stack: list[ast.AST] = list(scope.body)  # type: ignore[attr-defined]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
