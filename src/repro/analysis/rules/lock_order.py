"""R12 — lock/queue acquisition-order analysis (deadlock cycles).

The supervised runtime and the persistent worker pool coordinate through
``multiprocessing`` queues, shared-memory slots and (potentially) locks.
Two code paths that acquire the same pair of resources in opposite orders
can deadlock — the class of bug PR 6 fixed by hand when a worker died
inside ``Queue.get`` while the parent blocked on the same channel.  This
rule builds the acquisition graph statically and reports every cycle.

Per file, the summary records the resources each module defines (names
bound to ``Lock``/``RLock``/``Semaphore``/``Condition``/``Queue``/
``SharedMemory`` constructors — module globals, ``self.x`` attributes, and
function locals) and, per function, which resources are *acquired while
which others are held*: ``with lock:`` bodies and ``acquire()``/
``release()`` track held sets; queue ``get``/``put`` and ``acquire`` are
instantaneous acquisition events.  The project pass propagates events
through the resolved call graph (a call made while holding L inherits the
callee's acquisitions), builds the global edge set ``held -> acquired``,
and reports each edge that participates in a cycle; re-acquiring a
non-reentrant lock while it is already held is the one-node cycle.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator

from ..callgraph import resolve_call
from .base import FileContext, ProjectRule, Violation, dotted_name

#: Constructor basenames that create an orderable resource, with kind.
_RESOURCE_CONSTRUCTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Semaphore": "lock",
    "BoundedSemaphore": "lock",
    "Condition": "lock",
    "Queue": "queue",
    "SimpleQueue": "queue",
    "JoinableQueue": "queue",
    "LifoQueue": "queue",
    "PriorityQueue": "queue",
    "SharedMemory": "shm",
}

#: Methods that acquire (or block on) a resource.
_ACQUIRE_METHODS = {"acquire", "get", "put", "join"}


def _constructor_kind(node: ast.expr) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    return _RESOURCE_CONSTRUCTORS.get(dotted.split(".")[-1])


class _FunctionWalker(ast.NodeVisitor):
    """Single-function walk tracking the held-resource stack."""

    def __init__(
        self,
        qualname: str,
        resolve: Any,  # callable: ast.expr -> resource id | None
        local_resources: dict[str, str],
    ) -> None:
        self.qualname = qualname
        self.resolve = resolve
        self.local_resources = local_resources
        self.held: list[str] = []
        self.events: list[list[Any]] = []  # [rid, line, col, held-at-time]
        self.held_calls: list[list[Any]] = []  # [callee, line, col, held]

    def _event(self, rid: str, node: ast.AST) -> None:
        self.events.append(
            [rid, node.lineno, node.col_offset, list(self.held)]
        )

    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: list[str] = []
        for item in node.items:
            rid = self.resolve(item.context_expr)
            if rid is not None:
                self._event(rid, item.context_expr)
                self.held.append(rid)
                acquired.append(rid)
            else:
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            rid = self.resolve(node.func.value)
            if rid is not None and attr in _ACQUIRE_METHODS:
                self._event(rid, node)
                if attr == "acquire":
                    self.held.append(rid)
                self.generic_visit(node)
                return
            if rid is not None and attr == "release":
                if rid in self.held:
                    self.held.remove(rid)
                self.generic_visit(node)
                return
        callee = dotted_name(node.func)
        if callee is not None and self.held:
            self.held_calls.append(
                [callee, node.lineno, node.col_offset, list(self.held)]
            )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested defs analysed separately; don't inherit held set

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


class LockOrderRule(ProjectRule):
    rule_id = "R12"
    title = "lock/queue acquisition-order cycle (potential deadlock)"
    rationale = (
        "two call paths acquiring the same resources in opposite orders "
        "deadlock under the wrong interleaving — the worker-killed-inside-"
        "Queue.get class of hang the runtime's watchdog cannot unwedge"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not (ctx.in_tests or ctx.in_benchmarks)

    # -- summaries ---------------------------------------------------------

    def summarize(self, ctx: FileContext) -> Any | None:
        module_resources: dict[str, str] = {}
        class_resources: dict[str, str] = {}
        kinds: dict[str, str] = {}

        for stmt in ctx.tree.body:
            value = getattr(stmt, "value", None)
            if value is None:
                continue
            kind = _constructor_kind(value)
            if kind is None:
                continue
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
                if isinstance(stmt, ast.AnnAssign)
                else []
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    module_resources[target.id] = kind

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    continue
                value = sub.value
                if value is None:
                    continue
                kind = _constructor_kind(value)
                if kind is None:
                    continue
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    dotted = dotted_name(target)
                    if dotted and dotted.startswith("self."):
                        class_resources[
                            f"{node.name}.{dotted[len('self.'):]}"
                        ] = kind

        functions: dict[str, Any] = {}

        def walk_function(
            qualname: str,
            func: ast.FunctionDef | ast.AsyncFunctionDef,
            class_name: str | None,
        ) -> None:
            local: dict[str, str] = {}
            for sub in ast.walk(func):
                if isinstance(sub, ast.Assign) and isinstance(
                    sub.targets[0], ast.Name
                ):
                    kind = _constructor_kind(sub.value)
                    if kind is not None:
                        local[sub.targets[0].id] = kind
                elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
                    kind = _constructor_kind(sub.context_expr)
                    if kind is not None and isinstance(
                        sub.optional_vars, ast.Name
                    ):
                        local[sub.optional_vars.id] = kind

            def resolve(expr: ast.expr) -> str | None:
                dotted = dotted_name(expr)
                if dotted is None:
                    return None
                if dotted in local:
                    return f"{qualname}:{dotted}"
                if dotted in module_resources:
                    return dotted
                if class_name is not None and dotted.startswith("self."):
                    attr = dotted[len("self."):]
                    # ``self._ctx.Queue`` style chains keep dots; only
                    # direct attributes are class resources.
                    if f"{class_name}.{attr}" in class_resources:
                        return f"{class_name}.{attr}"
                return None

            walker = _FunctionWalker(qualname, resolve, local)
            for stmt in func.body:
                walker.visit(stmt)
            if walker.events or walker.held_calls:
                functions[qualname] = {
                    "events": walker.events,
                    "held_calls": walker.held_calls,
                }
            for rid, kind in local.items():
                kinds[f"{qualname}:{rid}"] = kind

        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk_function(stmt.name, stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        walk_function(f"{stmt.name}.{member.name}", member, stmt.name)

        kinds.update(module_resources)
        kinds.update(class_resources)
        if not functions:
            return None
        return {"kinds": kinds, "functions": functions}

    # -- project pass ------------------------------------------------------

    def check_project(self, project: Any) -> Iterator[Violation]:
        facts = project.facts.get(self.rule_id, {})
        if not facts:
            return

        def global_rid(relpath: str, rid: str) -> str:
            module = project.summaries.get(relpath, {}).get("module") or relpath
            return f"{module}.{rid}"

        # Direct acquisition events per call-graph node.
        node_events: dict[str, set[str]] = {}
        kinds: dict[str, str] = {}
        for relpath in sorted(facts):
            payload = facts[relpath]
            for rid, kind in payload["kinds"].items():
                kinds[global_rid(relpath, rid)] = kind
            module = project.summaries.get(relpath, {}).get("module")
            for qualname, info in payload["functions"].items():
                node = f"{module}:{qualname}" if module else f"{relpath}:{qualname}"
                node_events.setdefault(node, set()).update(
                    global_rid(relpath, event[0]) for event in info["events"]
                )

        # Transitive acquisition sets through the call graph.
        closure_cache: dict[str, set[str]] = {}

        def acquired_closure(node: str) -> set[str]:
            cached = closure_cache.get(node)
            if cached is not None:
                return cached
            closure_cache[node] = set()  # cycle guard
            acquired = set(node_events.get(node, ()))
            if project.callgraph is not None:
                for callee in project.callgraph.callees(node):
                    acquired |= acquired_closure(callee)
            closure_cache[node] = acquired
            return acquired

        # Edge set held -> acquired, with one representative site per edge.
        edges: dict[tuple[str, str], tuple[str, int, int]] = {}

        def add_edge(
            held: str, acquired: str, relpath: str, line: int, col: int
        ) -> None:
            edges.setdefault((held, acquired), (relpath, line, col))

        for relpath in sorted(facts):
            payload = facts[relpath]
            module = project.summaries.get(relpath, {}).get("module")
            for qualname, info in sorted(payload["functions"].items()):
                for rid, line, col, held in info["events"]:
                    target = global_rid(relpath, rid)
                    for holder in held:
                        add_edge(
                            global_rid(relpath, holder), target, relpath, line, col
                        )
                for callee, line, col, held in info["held_calls"]:
                    resolved = None
                    if project.callgraph is not None:
                        resolved = resolve_call(project, relpath, qualname, callee)
                    if resolved is None:
                        continue
                    for target in sorted(acquired_closure(resolved)):
                        for holder in held:
                            add_edge(
                                global_rid(relpath, holder),
                                target,
                                relpath,
                                line,
                                col,
                            )

        yield from self._report_cycles(project, edges, kinds)

    def _report_cycles(
        self,
        project: Any,
        edges: dict[tuple[str, str], tuple[str, int, int]],
        kinds: dict[str, str],
    ) -> Iterator[Violation]:
        graph: dict[str, set[str]] = {}
        for held, acquired in edges:
            graph.setdefault(held, set()).add(acquired)
            graph.setdefault(acquired, set())

        sccs = _tarjan(graph)
        in_cycle: dict[str, frozenset[str]] = {}
        for component in sccs:
            if len(component) > 1:
                for node in component:
                    in_cycle[node] = component

        for (held, acquired) in sorted(edges):
            relpath, line, col = edges[(held, acquired)]
            if held == acquired:
                # Self-cycle: re-acquiring a non-reentrant resource.
                if kinds.get(held) == "rlock":
                    continue
                yield self.project_violation(
                    project,
                    relpath,
                    line,
                    col,
                    f"acquires {held} while already holding it; the resource "
                    "is not reentrant, so this path self-deadlocks",
                )
                continue
            component = in_cycle.get(held)
            if component is not None and acquired in component:
                members = " -> ".join(sorted(component))
                yield self.project_violation(
                    project,
                    relpath,
                    line,
                    col,
                    f"acquires {acquired} while holding {held}, closing an "
                    f"acquisition-order cycle ({members}); a conflicting "
                    "interleaving deadlocks",
                )


def _tarjan(graph: dict[str, set[str]]) -> list[frozenset[str]]:
    """Iterative Tarjan SCC (recursion-free for deep graphs)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[frozenset[str]] = []
    counter = 0

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, Any]] = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(frozenset(component))
    return result
