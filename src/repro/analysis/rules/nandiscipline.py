"""R8 — NaN discipline in degraded-mode-reachable reductions.

With ``CADConfig(allow_missing=True)`` the window and correlation arrays
legitimately carry NaN (missing readings, masked sensors).  A plain
``np.sum``/``np.mean``/``np.std`` over such an array does not crash — it
poisons the statistic and every moment downstream, so the 3-sigma test
quietly stops firing.  In modules the degraded path can reach, reductions
must either use the nan-aware variants (``np.nansum`` & co.), operate on an
explicitly masked selection, or carry a ``# repro: noqa[R8]`` pragma whose
comment states why the array is NaN-free by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation, dotted_name

_REDUCTIONS = {"sum", "mean", "std", "var", "average", "median", "percentile"}

#: Modules the degraded-data path flows through.  Matched on posix path
#: fragments under ``repro/``.
_DEGRADED_REACHABLE = (
    "timeseries/correlation",
    "timeseries/rolling",
    "timeseries/normalization",
    "core/coappearance",
    "core/pipeline",
    "core/streaming",
    "core/detector",
    "core/variation",
    "datasets/faults",
)


class NanDisciplineRule(Rule):
    rule_id = "R8"
    title = "NaN-unsafe reduction on a degraded-reachable path"
    rationale = (
        "allow_missing=True routes NaN through these arrays; a plain "
        "np.sum/np.mean/np.std silently poisons mu/sigma and stops the "
        "3-sigma test from firing"
    )

    def applies(self, ctx: FileContext) -> bool:
        posix = ctx.posix
        return any(f"repro/{frag}" in posix for frag in _DEGRADED_REACHABLE)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) != 2 or parts[0] not in ("np", "numpy"):
                continue
            if parts[1] in _REDUCTIONS:
                yield self.violation(
                    ctx,
                    node,
                    f"{dotted}() on a degraded-mode-reachable array; use "
                    f"np.nan{parts[1]} / an explicit mask, or justify "
                    "NaN-freeness with `# repro: noqa[R8] <reason>`",
                )
