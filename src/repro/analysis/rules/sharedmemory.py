"""R10 — shared-memory segments must close (and unlink) on a finally path.

``multiprocessing.shared_memory.SharedMemory`` is an OS resource, not a
Python object: dropping the last reference leaks the file descriptor and —
for created segments — the ``/dev/shm`` backing file itself, which outlives
the process.  An exception between ``SharedMemory(...)`` and the cleanup
call turns every crash into a leak, so the cleanup must sit on a
``finally`` path.  Created segments additionally need ``unlink()`` (close
alone only drops this process's mapping).

The rule is deliberately conservative (like every rule here): it only
fires when a segment is provably *locally owned* — bound to a plain local
name that never escapes the function.  A segment stored into an attribute,
container, or passed to another call has transferred ownership to a
lifecycle the AST cannot see (e.g. a pool's slot table that is torn down
in the pool's own ``shutdown`` finally), and is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation, dotted_name, iter_scopes


def _is_shared_memory_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = dotted_name(node.func)
    return dotted is not None and (
        dotted == "SharedMemory" or dotted.endswith(".SharedMemory")
    )


def _creates_segment(node: ast.Call) -> bool:
    return any(
        keyword.arg == "create"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is True
        for keyword in node.keywords
    )


def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def _is_cleanup_call(node: ast.Call, name: str) -> str | None:
    """``"close"``/``"unlink"`` when node is ``<name>.close()``-style."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in ("close", "unlink")
        and isinstance(func.value, ast.Name)
        and func.value.id == name
    ):
        return func.attr
    return None


def _uses_bare(root: ast.AST, name: str) -> bool:
    """True when the segment *object itself* appears in ``root``.

    ``shm.buf`` / ``shm.name`` reads (Attribute/Subscript access on the
    name) do not count — handing out a view of the buffer does not
    transfer ownership of the close/unlink obligation, while handing out
    the object itself (``slots[i] = shm``, ``Slot(shm)``) does.
    """
    if isinstance(root, ast.Name) and root.id == name:
        return True
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            if not (isinstance(child, ast.Name) and child.id == name):
                continue
            if (
                isinstance(parent, (ast.Attribute, ast.Subscript))
                and parent.value is child
            ):
                continue  # attribute/element access, not the object
            return True
    return False


def _escapes(body: list[ast.stmt], name: str) -> bool:
    """True when ``name`` leaves the scope: returned, yielded, stored into
    an attribute/container, aliased, or passed to any non-cleanup call."""
    for node in _walk_scope(body):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _uses_bare(node.value, name):
                return True
        elif isinstance(node, ast.Assign):
            if _is_shared_memory_call(node.value):
                if any(
                    not isinstance(target, ast.Name) for target in node.targets
                ):
                    return True  # bound straight into attribute/subscript
            elif _uses_bare(node.value, name):
                return True  # aliased or wrapped — ownership is ambiguous
        elif isinstance(node, ast.Call):
            if _is_cleanup_call(node, name) is not None:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if _uses_bare(arg, name):
                    return True
    return False


def _finally_cleanups(body: list[ast.stmt], name: str) -> set[str]:
    """Cleanup methods called on ``name`` inside any ``finally`` block."""
    found: set[str] = set()
    for node in _walk_scope(body):
        if not isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    method = _is_cleanup_call(sub, name)
                    if method is not None:
                        found.add(method)
    return found


class SharedMemoryLifecycleRule(Rule):
    rule_id = "R10"
    title = "SharedMemory without close()/unlink() on a finally path"
    rationale = (
        "a shared-memory segment is an OS resource; without cleanup on a "
        "finally path, any exception leaks the mapping — and for created "
        "segments the /dev/shm backing file, which outlives the process"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.in_tests

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for _scope, body in iter_scopes(ctx.tree):
            bindings: list[tuple[str, ast.Call]] = []
            for node in _walk_scope(body):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and _is_shared_memory_call(node.value)
                ):
                    assert isinstance(node.value, ast.Call)
                    bindings.append((node.targets[0].id, node.value))
            for name, call in bindings:
                if _escapes(body, name):
                    continue
                cleanups = _finally_cleanups(body, name)
                if "close" not in cleanups:
                    yield self.violation(
                        ctx,
                        call,
                        f"SharedMemory bound to local '{name}' has no "
                        f"{name}.close() in a finally block; an exception "
                        "here leaks the mapping",
                    )
                elif _creates_segment(call) and "unlink" not in cleanups:
                    yield self.violation(
                        ctx,
                        call,
                        f"created SharedMemory '{name}' has no "
                        f"{name}.unlink() in a finally block; the /dev/shm "
                        "segment would outlive the process",
                    )
