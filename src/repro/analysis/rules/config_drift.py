"""R13 — config / CLI / docs drift.

``CADConfig`` is the single knob surface the paper's reproduction exposes;
``cli.py`` maps flags onto its fields and README/DESIGN document them.
Those three views drift independently: a renamed field leaves a flag
feeding a keyword the constructor no longer accepts (a runtime TypeError
on a path tests rarely exercise), a removed flag leaves ``args.x`` reads
that explode at dispatch, and an undocumented field silently changes the
reproduction surface.  All three are cross-file facts, so this is a
project rule.

Checks:

* **unknown config keyword** — any call resolving to a project dataclass
  (constructor, or a ``suggest``-style classmethod on one) passing a
  keyword that is neither a field nor a declared parameter;
* **flag without a consumer** — an ``add_argument`` flag in a ``cli.py``
  whose dest is never read as ``args.<dest>`` in that file (dead surface,
  usually a leftover of a renamed field);
* **args read without a flag** — ``args.<name>`` read in a ``cli.py`` with
  no flag defining that dest (AttributeError at runtime);
* **undocumented field** — a field of a dataclass named ``CADConfig`` that
  appears in neither README.md nor DESIGN.md (as a bare word or
  ``--dashed-flag``).
"""

from __future__ import annotations

import ast
import re
from typing import Any, Iterator

from .base import FileContext, ProjectRule, Violation, dotted_name

#: Dataclasses whose fields must be covered by the project docs.
_DOC_CLASSES = ("CADConfig",)

#: argparse flags that argparse itself owns.
_ARGPARSE_BUILTIN_DESTS = {"help", "version", "func"}


def _flag_dest(call: ast.Call) -> tuple[str | None, str | None]:
    """(first flag string, resolved dest) for one add_argument call."""
    flags = [
        arg.value
        for arg in call.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    ]
    dest: str | None = None
    for keyword in call.keywords:
        if keyword.arg == "dest" and isinstance(keyword.value, ast.Constant):
            dest = str(keyword.value.value)
    if dest is None and flags:
        longs = [f for f in flags if f.startswith("--")]
        if longs:
            dest = longs[0].lstrip("-").replace("-", "_")
        elif flags[0].startswith("-"):
            dest = flags[0].lstrip("-").replace("-", "_")
        else:
            dest = flags[0]  # positional
    return (flags[0] if flags else None), dest


class ConfigDriftRule(ProjectRule):
    rule_id = "R13"
    title = "config / CLI / docs drift"
    rationale = (
        "flags, dataclass fields and doc tables describe the same knob "
        "surface; when they disagree the CLI crashes on paths tests skip "
        "or the documented reproduction surface silently diverges"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not (ctx.in_tests or ctx.in_benchmarks)

    def summarize(self, ctx: FileContext) -> Any | None:
        config_calls: list[list[Any]] = []
        flags: list[list[Any]] = []
        args_reads: dict[str, int] = {}
        is_cli = ctx.posix.rsplit("/", 1)[-1] == "cli.py"

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                last = dotted.split(".")[-1]
                keywords = [k.arg for k in node.keywords if k.arg is not None]
                has_star_kwargs = any(k.arg is None for k in node.keywords)
                if keywords and not has_star_kwargs:
                    # Record any call that *could* be a project dataclass
                    # constructor/classmethod; resolution happens project-
                    # side where every class is known.
                    config_calls.append(
                        [dotted, node.lineno, node.col_offset, sorted(keywords)]
                    )
                if is_cli and last == "add_argument":
                    flag, dest = _flag_dest(node)
                    if flag is not None and dest is not None:
                        flags.append(
                            [flag, dest, node.lineno, node.col_offset]
                        )
                elif is_cli and last in ("add_subparsers", "set_defaults"):
                    # Both bind args attributes without a flag string;
                    # record their dests so args.<dest> reads resolve.
                    for keyword in node.keywords:
                        if keyword.arg == "dest" and isinstance(
                            keyword.value, ast.Constant
                        ):
                            flags.append(
                                [
                                    str(keyword.value.value),
                                    str(keyword.value.value),
                                    node.lineno,
                                    node.col_offset,
                                ]
                            )
                        elif last == "set_defaults" and keyword.arg is not None:
                            flags.append(
                                [
                                    keyword.arg,
                                    keyword.arg,
                                    node.lineno,
                                    node.col_offset,
                                ]
                            )
            elif (
                is_cli
                and isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "args"
                and isinstance(node.ctx, ast.Load)
            ):
                args_reads.setdefault(node.attr, node.lineno)

        if not (config_calls or flags or args_reads):
            return None
        return {
            "config_calls": config_calls,
            "flags": flags,
            "args_reads": args_reads,
            "is_cli": is_cli,
        }

    # -- project pass ------------------------------------------------------

    def check_project(self, project: Any) -> Iterator[Violation]:
        facts = project.facts.get(self.rule_id, {})
        dataclasses = self._project_dataclasses(project)
        if facts:
            yield from self._check_config_calls(project, facts, dataclasses)
            yield from self._check_cli_surface(project, facts)
        # Doc coverage needs only the summaries: it must run even when no
        # file recorded calls/flags (a config module alone can drift).
        yield from self._check_docs(project, dataclasses)

    @staticmethod
    def _project_dataclasses(project: Any) -> dict[str, dict[str, Any]]:
        """Absolute class origin -> {fields, relpath, methods params}."""
        result: dict[str, dict[str, Any]] = {}
        for relpath, summary in project.summaries.items():
            module = summary.get("module")
            if not module:
                continue
            for name, info in summary.get("classes", {}).items():
                if not info.get("dataclass"):
                    continue
                result[f"{module}.{name}"] = {
                    "name": name,
                    "relpath": relpath,
                    "fields": info.get("fields", {}),
                    "defs": summary.get("defs", {}),
                }
        return result

    def _check_config_calls(
        self,
        project: Any,
        facts: dict[str, Any],
        dataclasses: dict[str, dict[str, Any]],
    ) -> Iterator[Violation]:
        for relpath in sorted(facts):
            for dotted, line, col, keywords in facts[relpath]["config_calls"]:
                origin = project.resolve(relpath, dotted)
                if origin is None:
                    continue
                target = dataclasses.get(origin)
                allowed: set[str] | None = None
                label = dotted
                if target is not None:
                    # Direct construction: keywords are exactly the fields.
                    allowed = set(target["fields"])
                else:
                    # Classmethod constructor (e.g. ``CADConfig.suggest``):
                    # keywords may also name the method's own parameters.
                    parent, _, method = origin.rpartition(".")
                    target = dataclasses.get(parent)
                    if target is None:
                        continue
                    method_info = target["defs"].get(
                        f"{target['name']}.{method}"
                    )
                    if method_info is None:
                        continue
                    allowed = set(target["fields"]) | set(
                        method_info.get("params", [])
                    )
                unknown = sorted(set(keywords) - allowed)
                for keyword in unknown:
                    yield self.project_violation(
                        project,
                        relpath,
                        line,
                        col,
                        f"passes unknown keyword '{keyword}' to "
                        f"{target['name']} ({origin}); no such field — "
                        "config/CLI drift crashes here at runtime",
                    )

    def _check_cli_surface(
        self, project: Any, facts: dict[str, Any]
    ) -> Iterator[Violation]:
        for relpath in sorted(facts):
            payload = facts[relpath]
            if not payload.get("is_cli"):
                continue
            dests: dict[str, tuple[str, int, int]] = {}
            for flag, dest, line, col in payload["flags"]:
                dests.setdefault(dest, (flag, line, col))
            reads = payload["args_reads"]
            for dest in sorted(dests):
                flag, line, col = dests[dest]
                if not flag.startswith("-"):
                    continue  # positionals are always consumed
                if dest in _ARGPARSE_BUILTIN_DESTS:
                    continue
                if dest not in reads:
                    yield self.project_violation(
                        project,
                        relpath,
                        line,
                        col,
                        f"flag '{flag}' (dest '{dest}') is never read as "
                        f"args.{dest}; dead CLI surface usually means a "
                        "renamed or removed config field",
                    )
            for name in sorted(reads):
                if name in dests or name in _ARGPARSE_BUILTIN_DESTS:
                    continue
                yield self.project_violation(
                    project,
                    relpath,
                    reads[name],
                    0,
                    f"reads args.{name} but defines no flag with dest "
                    f"'{name}'; this AttributeErrors the moment the "
                    "command runs",
                )

    def _check_docs(
        self, project: Any, dataclasses: dict[str, dict[str, Any]]
    ) -> Iterator[Violation]:
        if not project.docs:
            return
        doc_names = ", ".join(sorted(project.docs))
        corpus = "\n".join(project.docs.values())
        for origin in sorted(dataclasses):
            target = dataclasses[origin]
            if target["name"] not in _DOC_CLASSES:
                continue
            for field_name in sorted(target["fields"]):
                dashed = "--" + field_name.replace("_", "-")
                pattern = (
                    rf"\b{re.escape(field_name)}\b|{re.escape(dashed)}\b"
                )
                if re.search(pattern, corpus):
                    continue
                yield self.project_violation(
                    project,
                    target["relpath"],
                    target["fields"][field_name],
                    0,
                    f"{target['name']}.{field_name} is documented in "
                    f"neither of {doc_names}; every knob of the "
                    "reproduction surface must be in the doc tables",
                )
