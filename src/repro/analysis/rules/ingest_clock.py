"""R9 — no wall-clock or naive-datetime use in ingest or fleet code.

The frontier's whole contract is that ordering decisions — reorder,
dedup, late-drop, watermark advance — are pure functions of *producer*
timestamps carried inside :class:`~repro.ingest.SampleEnvelope`.  The
moment ``repro.ingest`` consults the host clock (wall or monotonic), the
bit-identical-under-chaos guarantee and checkpoint/resume both break:
the same envelope stream replayed a minute later would flush differently.
Naive datetime construction is the subtler cousin: ``fromtimestamp``
without ``tz=`` interprets an absolute producer timestamp in the *host's*
local zone, so two replicas in different zones disagree on the round
grid.  Producer time is data; it arrives in the envelope or not at all.

The multi-tenant fleet scheduler (:mod:`repro.fleet`) inherits the same
contract: cycle ordering and shard routing must replay bit-identically
from ``(seed, cycle)`` alone, so the fleet package is in scope too.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation, dotted_name
from .wallclock import _WALL_CLOCK_SUFFIXES

#: Monotonic/host clocks — harmless for benchmarking, but inside the
#: frontier they can only feed ordering decisions, which must replay.
_MONOTONIC_SUFFIXES = (
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
)

#: Naive-datetime constructors: ``utcfromtimestamp`` always returns a
#: naive object; ``fromtimestamp`` does unless ``tz=`` is passed.
_NAIVE_SUFFIXES = (
    "datetime.fromtimestamp",
    "datetime.utcfromtimestamp",
)


def _suffix_match(dotted: str, suffixes: tuple[str, ...]) -> str | None:
    for suffix in suffixes:
        if dotted == suffix or dotted.endswith("." + suffix):
            return suffix
    return None


class IngestClockRule(Rule):
    rule_id = "R9"
    title = "host clock or naive datetime in the ingest frontier"
    rationale = (
        "frontier ordering must be a pure function of producer timestamps; "
        "host clocks and zone-dependent datetimes break replay and "
        "bit-identity under delivery chaos"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_package("ingest", "fleet")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if _suffix_match(dotted, _WALL_CLOCK_SUFFIXES) is not None:
                yield self.violation(
                    ctx,
                    node,
                    f"{dotted}() reads the wall clock inside the ingest "
                    "frontier; producer time arrives in the envelope, not "
                    "from the host",
                )
            elif _suffix_match(dotted, _MONOTONIC_SUFFIXES) is not None:
                yield self.violation(
                    ctx,
                    node,
                    f"{dotted}() reads a host clock inside the ingest "
                    "frontier; ordering decisions keyed on it cannot be "
                    "replayed bit-identically",
                )
            elif _suffix_match(dotted, _NAIVE_SUFFIXES) is not None:
                if dotted.endswith("utcfromtimestamp") or not any(
                    keyword.arg == "tz" for keyword in node.keywords
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"{dotted}() builds a naive datetime; the round "
                        "grid would depend on the host time zone — pass "
                        "tz= or keep timestamps as floats",
                    )
