"""R6 — no mutable default arguments.

A ``def f(acc=[])`` default is evaluated once and shared across every call
— accumulated state leaks between detector instances and between test
cases, which reads as nondeterminism.  Default to ``None`` and materialise
inside the function, or use an immutable default (tuple, frozenset).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import FileContext, Rule, Violation, call_name

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "collections.deque",
    "defaultdict",
    "collections.defaultdict",
    "OrderedDict",
    "collections.OrderedDict",
    "Counter",
    "collections.Counter",
}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node) in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    rule_id = "R6"
    title = "mutable default argument"
    rationale = (
        "mutable defaults are shared across calls; state leaks between "
        "detector instances and test cases"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default argument in {name}(); default to "
                        "None (or an immutable value) and build inside the "
                        "function",
                    )
