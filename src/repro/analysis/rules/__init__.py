"""Rule registry for :mod:`repro.analysis`.

``ALL_RULES`` is the ordered tuple the engine runs; ordering is part of the
output contract (findings sort by path/line, ties by rule id).
"""

from __future__ import annotations

from .base import FileContext, ProjectRule, Rule, Violation
from .checkpoint_contract import CheckpointContractRule
from .config_drift import ConfigDriftRule
from .defaults import MutableDefaultRule
from .exception_taxonomy import ExceptionTaxonomyRule
from .exceptions import SwallowedExceptionRule
from .floats import FloatEqualityRule
from .ingest_clock import IngestClockRule
from .lock_order import LockOrderRule
from .nandiscipline import NanDisciplineRule
from .ordering import UnorderedIterationRule
from .parallel_dispatch import ParallelDispatchRule
from .randomness import ModuleRandomStateRule
from .sharedmemory import SharedMemoryLifecycleRule
from .wallclock import WallClockRule

ALL_RULES: tuple[Rule, ...] = (
    UnorderedIterationRule(),
    FloatEqualityRule(),
    ModuleRandomStateRule(),
    WallClockRule(),
    ParallelDispatchRule(),
    MutableDefaultRule(),
    SwallowedExceptionRule(),
    NanDisciplineRule(),
    IngestClockRule(),
    SharedMemoryLifecycleRule(),
    CheckpointContractRule(),
    LockOrderRule(),
    ConfigDriftRule(),
    ExceptionTaxonomyRule(),
)

RULES_BY_ID: dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "FileContext",
    "ProjectRule",
    "Rule",
    "Violation",
]
