"""R1 — no unordered set iteration on determinism-critical paths.

CAD's guarantees are bit-level: Theorem 1's 3-sigma test, the CSR-vs-dict
Louvain label identity, and parallel/resumed-run reproducibility all assume
every iteration order in the pipeline is a pure function of the input.
Python sets iterate in hash order, which varies with insertion history (and
with ``PYTHONHASHSEED`` for str keys) — one ``for v in some_set`` feeding a
graph sweep or a dict construction silently breaks all three.  Iterate
``sorted(...)`` or an ordered container instead; order-insensitive
consumers (``len``, ``min``, ``max``, ``any``, ``all``, ``sorted`` itself,
set/frozenset constructors) are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import (
    FileContext,
    Rule,
    Violation,
    call_name,
    infer_set_names,
    is_set_expression,
    iter_scopes,
)

#: Consuming an iterable through these callables is order-insensitive (or
#: produces an explicit order), so a set argument is fine.  ``sum`` is
#: listed even though float summation is order-sensitive — flagging it
#: drowned the real signal; R8 owns numeric hygiene.
_ORDER_INSENSITIVE_CALLS = {
    "sorted",
    "min",
    "max",
    "len",
    "any",
    "all",
    "sum",
    "set",
    "frozenset",
}

#: These callables freeze their argument's iteration order into an ordered
#: container, which is exactly the leak this rule exists to catch.
_ORDER_PRESERVING_CALLS = {"list", "tuple", "enumerate", "dict.fromkeys"}


class UnorderedIterationRule(Rule):
    rule_id = "R1"
    title = "unordered set iteration"
    rationale = (
        "set iteration order is not deterministic across runs; iterating it "
        "into ordering-sensitive code breaks CAD's bit-identical guarantees"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not (ctx.in_tests or ctx.in_benchmarks)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        exempt = _order_insensitive_genexps(ctx.tree)
        for scope, body in iter_scopes(ctx.tree):
            set_names = infer_set_names(body)
            yield from self._check_scope(ctx, scope, set_names, exempt)

    def _check_scope(
        self,
        ctx: FileContext,
        scope: ast.AST,
        set_names: frozenset[str],
        exempt: set[int],
    ) -> Iterator[Violation]:
        for node in _walk_scope(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_set_expression(node.iter, set_names):
                    yield self.violation(
                        ctx,
                        node.iter,
                        "iterating a set in a for-loop; wrap in sorted(...) "
                        "to pin the order",
                    )
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                if id(node) in exempt:
                    continue
                for comp in node.generators:
                    if is_set_expression(comp.iter, set_names):
                        yield self.violation(
                            ctx,
                            comp.iter,
                            "comprehension over a set feeds an ordered result; "
                            "iterate sorted(...) instead",
                        )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in _ORDER_PRESERVING_CALLS and node.args:
                    if is_set_expression(node.args[0], set_names):
                        yield self.violation(
                            ctx,
                            node,
                            f"{name}(...) of a set captures an undefined order; "
                            "use sorted(...) to pin it",
                        )


def _order_insensitive_genexps(tree: ast.Module) -> set[int]:
    """ids of generator expressions fed straight into order-insensitive
    consumers (``sorted(x for x in s)`` is fine)."""
    exempt: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and call_name(node) in _ORDER_INSENSITIVE_CALLS:
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp):
                    exempt.add(id(arg))
    return exempt


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's statements without descending into nested functions
    (those are visited as their own scopes, with their own inferred names)."""
    stack: list[ast.AST] = list(scope.body)  # type: ignore[attr-defined]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
