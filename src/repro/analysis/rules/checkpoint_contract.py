"""R11 — checkpoint save/load key symmetry across the whole program.

Bit-identical resume (DESIGN.md §4, §8) only holds when every key a
``save``/``to_state`` path writes is consumed by the matching
``load``/``from_state``/``restore`` path, across *every* supported
checkpoint version: an orphaned key silently drops state on restore, and a
hard read of a never-written key is a latent ``KeyError`` on the first real
recovery.  Both bugs live across function — often file — boundaries, which
is why this is a project rule.

Mechanics: the per-file summary records, for every function, the constant
string keys it writes (dict literals, ``d["k"] = v``, ``setdefault``) and
consumes (``d["k"]`` loads, ``.get``/``.pop``, ``"k" in d``,
``setdefault`` — a migration default both consumes the old layout and
writes the new one).  The project pass pairs writers with readers by the
codebase's naming conventions (``to_state``/``from_state``/``restore_state``,
``save_x``/``load_x``, ``_x_state``/``_restore_x_state``), expands each side
through its *same-module* callees via the call graph (so ``load_checkpoint``
inherits ``_read_checkpoint``'s reads, but each layer's contract stays
local), and reports asymmetries.  Dynamic keys (f-strings, variables) are
skipped entirely — the rule under-approximates rather than guesses.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator

from .base import FileContext, ProjectRule, Violation

_KeyMap = dict[str, int]  # key -> first line it was seen on


def _const_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _note(keys: _KeyMap, key: str | None, line: int) -> None:
    if key is not None and key not in keys:
        keys[key] = line


def _const_loop_vars(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, list[str]]:
    """Loop variables iterating a literal tuple/list of string constants:
    ``for name in ("baseline", "sums"):`` makes ``d[name]`` / ``d.get(name)``
    statically enumerable, a common checkpoint idiom for array groups."""
    loops: dict[str, list[str]] = {}
    for node in ast.walk(func):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        if not isinstance(node.target, ast.Name):
            continue
        if not isinstance(node.iter, (ast.Tuple, ast.List)):
            continue
        keys = [_const_str(el) for el in node.iter.elts]
        if keys and all(key is not None for key in keys):
            loops[node.target.id] = [key for key in keys if key is not None]
    return loops


#: Call basenames whose keyword arguments name archive keys.
_KEYWORD_ARCHIVE_WRITERS = {"savez", "savez_compressed"}


def _function_key_facts(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, Any] | None:
    writes: _KeyMap = {}
    setdefaults: _KeyMap = {}
    reads_hard: _KeyMap = {}
    reads_soft: _KeyMap = {}
    loops = _const_loop_vars(func)

    def keys_of(node: ast.AST) -> list[str]:
        key = _const_str(node)
        if key is not None:
            return [key]
        if isinstance(node, ast.Name):
            return loops.get(node.id, [])
        return []

    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    _note(writes, _const_str(key), key.lineno)
        elif isinstance(node, ast.Subscript):
            for key in keys_of(node.slice):
                if isinstance(node.ctx, ast.Store):
                    _note(writes, key, node.lineno)
                elif isinstance(node.ctx, ast.Load):
                    _note(reads_hard, key, node.lineno)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in ("get", "pop") and node.args:
                for key in keys_of(node.args[0]):
                    _note(reads_soft, key, node.lineno)
            elif attr == "setdefault" and node.args:
                for key in keys_of(node.args[0]):
                    _note(setdefaults, key, node.lineno)
            elif attr in _KEYWORD_ARCHIVE_WRITERS:
                # np.savez(path, **name=value): keywords are archive keys.
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        _note(writes, keyword.arg, node.lineno)
        elif isinstance(node, ast.Compare):
            if len(node.ops) == 1 and isinstance(node.ops[0], (ast.In, ast.NotIn)):
                for key in keys_of(node.left):
                    _note(reads_soft, key, node.lineno)
    if not (writes or setdefaults or reads_hard or reads_soft):
        return None
    return {
        "line": func.lineno,
        "writes": writes,
        "setdefaults": setdefaults,
        "reads_hard": reads_hard,
        "reads_soft": reads_soft,
    }


def _is_writer_name(name: str) -> bool:
    if name in ("to_state",):
        return True
    if name.startswith("save"):
        return True
    if name.startswith(("restore", "_restore", "from", "load", "_load")):
        return False
    return name.endswith("_state") and name not in ("from_state", "restore_state")


def _reader_names(writer: str) -> list[str]:
    """Candidate reader names for a writer, most specific first."""
    if writer == "to_state":
        return ["from_state", "restore_state"]
    if writer.startswith("save"):
        return ["load" + writer[len("save"):]]
    # ``_runtime_state`` -> ``_restore_runtime_state``; ``x_state`` ->
    # ``restore_x_state``.
    if writer.startswith("_"):
        return ["_restore" + writer]
    return ["restore_" + writer]


class CheckpointContractRule(ProjectRule):
    rule_id = "R11"
    title = "asymmetric checkpoint save/load key contract"
    rationale = (
        "a state key written but never consumed silently drops state on "
        "restore, and a hard-read key nobody writes is a KeyError on the "
        "first real recovery — both break bit-identical resume across "
        "checkpoint versions"
    )

    def applies(self, ctx: FileContext) -> bool:
        return not (ctx.in_tests or ctx.in_benchmarks)

    def summarize(self, ctx: FileContext) -> Any | None:
        facts: dict[str, Any] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            payload = _function_key_facts(node)
            if payload is None:
                continue
            qualname = self._qualname(ctx.tree, node)
            if qualname is not None:
                facts[qualname] = payload
        return facts or None

    @staticmethod
    def _qualname(tree: ast.Module, func: ast.AST) -> str | None:
        """Top-level functions and class methods only (closures excluded:
        their keys belong to their enclosing function's contract)."""
        for stmt in tree.body:
            if stmt is func:
                return getattr(func, "name", None)
            if isinstance(stmt, ast.ClassDef):
                for member in stmt.body:
                    if member is func:
                        return f"{stmt.name}.{getattr(func, 'name', '')}"
        return None

    def check_project(self, project: Any) -> Iterator[Violation]:
        facts = project.facts.get(self.rule_id, {})
        for relpath in sorted(facts):
            yield from self._check_module(project, relpath, facts)

    def _check_module(
        self, project: Any, relpath: str, all_facts: dict[str, Any]
    ) -> Iterator[Violation]:
        module_facts: dict[str, Any] = all_facts[relpath]
        summary = project.summaries.get(relpath, {})
        module = summary.get("module")
        for qualname in sorted(module_facts):
            last = qualname.split(".")[-1]
            if not _is_writer_name(last):
                continue
            readers = self._find_readers(
                qualname,
                last,
                module_facts,
                all_facts,
                relpath,
                summary.get("defs", {}),
            )
            if not readers:
                continue
            writer_side = self._closure(
                project, relpath, module, qualname, module_facts
            )
            reader_side: dict[str, _KeyMap] = {
                "writes": {}, "setdefaults": {}, "reads_hard": {}, "reads_soft": {}
            }
            for reader_relpath, reader_qual in readers:
                reader_summary = project.summaries.get(reader_relpath, {})
                side = self._closure(
                    project,
                    reader_relpath,
                    reader_summary.get("module"),
                    reader_qual,
                    all_facts.get(reader_relpath, {}),
                )
                for bucket, keys in side.items():
                    for key, line in keys.items():
                        reader_side[bucket].setdefault(key, line)
            yield from self._compare(
                project, relpath, qualname, writer_side,
                readers, reader_side,
            )

    def _find_readers(
        self,
        writer_qual: str,
        writer_last: str,
        module_facts: dict[str, Any],
        all_facts: dict[str, Any],
        relpath: str,
        module_defs: dict[str, Any],
    ) -> list[tuple[str, str]]:
        prefix = writer_qual[: -len(writer_last)]  # "" or "Class."
        candidates = _reader_names(writer_last)
        # Same class, then same module (any prefix), then global unique.
        for name in candidates:
            if prefix + name in module_facts:
                return [(relpath, prefix + name)]
        # An exact-name reader with no key facts of its own is still the
        # writer's counterpart (a thin wrapper delegating to helpers);
        # pairing with it lets the call-graph closure pull in the
        # helpers' reads instead of mis-pairing with an unrelated loader.
        for name in candidates:
            if prefix + name in module_defs:
                return [(relpath, prefix + name)]
        same_module = [
            qual
            for qual in module_facts
            if qual.split(".")[-1] in candidates
        ]
        if same_module:
            return [(relpath, qual) for qual in sorted(same_module)]
        if writer_last.startswith("save"):
            loaders = sorted(
                qual
                for qual in module_facts
                if qual.split(".")[-1].startswith("load")
            )
            if loaders:
                return [(relpath, qual) for qual in loaders]
        matches: list[tuple[str, str]] = []
        for other_relpath in sorted(all_facts):
            if other_relpath == relpath:
                continue
            for qual in sorted(all_facts[other_relpath]):
                if qual.split(".")[-1] in candidates:
                    matches.append((other_relpath, qual))
        return matches if len(matches) == 1 else []

    def _closure(
        self,
        project: Any,
        relpath: str,
        module: str | None,
        qualname: str,
        module_facts: dict[str, Any],
    ) -> dict[str, _KeyMap]:
        merged: dict[str, _KeyMap] = {
            "writes": {}, "setdefaults": {}, "reads_hard": {}, "reads_soft": {}
        }
        quals = {qualname}
        if module and project.callgraph is not None:
            node = f"{module}:{qualname}"
            for callee in project.callgraph.transitive_callees(
                node, within_module=module
            ):
                quals.add(callee.split(":", 1)[1])
        for qual in sorted(quals):
            payload = module_facts.get(qual)
            if not payload:
                continue
            for bucket in merged:
                for key, line in payload.get(bucket, {}).items():
                    merged[bucket].setdefault(key, line)
        return merged

    def _compare(
        self,
        project: Any,
        relpath: str,
        writer_qual: str,
        writer: dict[str, _KeyMap],
        readers: list[tuple[str, str]],
        reader: dict[str, _KeyMap],
    ) -> Iterator[Violation]:
        reader_label = ", ".join(
            f"{qual}()" for _, qual in readers
        )
        consumed = (
            set(reader["reads_hard"])
            | set(reader["reads_soft"])
            | set(reader["setdefaults"])
            | set(writer["reads_hard"])
            | set(writer["reads_soft"])
        )
        written = (
            set(writer["writes"])
            | set(writer["setdefaults"])
            | set(reader["writes"])
            | set(reader["setdefaults"])
        )
        for key in sorted(writer["writes"]):
            if key not in consumed:
                yield self.project_violation(
                    project,
                    relpath,
                    writer["writes"][key],
                    0,
                    f"checkpoint key '{key}' written by {writer_qual}() is "
                    f"never consumed by {reader_label}; orphaned keys drop "
                    "state silently on restore",
                )
        reader_relpath = readers[0][0]
        for key in sorted(reader["reads_hard"]):
            if key not in written:
                yield self.project_violation(
                    project,
                    reader_relpath,
                    reader["reads_hard"][key],
                    0,
                    f"checkpoint key '{key}' is hard-read by {reader_label} "
                    f"but never written by {writer_qual}(); restoring an "
                    "archive from that writer raises KeyError",
                )
