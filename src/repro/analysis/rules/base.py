"""Shared infrastructure for `repro.analysis` rules.

Every rule is an AST visitor packaged behind a tiny uniform interface:
``applies(ctx)`` decides from the file's path whether the rule is in scope,
``check(ctx)`` yields :class:`Violation` objects.  The helpers here — dotted
name resolution and light-weight local type inference for "definitely a set"
/ "definitely float-valued" expressions — are deliberately conservative: a
rule only fires when the AST *proves* the pattern, so the linter stays
quiet on code it cannot understand instead of drowning the signal in
false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Any, ClassVar, Iterator


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: where it is, which rule fired, and why it matters."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    source: str = field(compare=False, default="")

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "source": self.source,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "Violation":
        return cls(
            path=payload["path"],
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule=payload["rule"],
            message=payload["message"],
            source=payload.get("source", ""),
        )


@dataclass
class FileContext:
    """A parsed source file plus the path facts rules scope on."""

    relpath: str  # posix-style, as reported in findings
    source: str
    tree: ast.Module
    lines: list[str]

    @property
    def posix(self) -> str:
        return PurePosixPath(self.relpath).as_posix()

    @property
    def in_tests(self) -> bool:
        parts = PurePosixPath(self.relpath).parts
        name = PurePosixPath(self.relpath).name
        return (
            "tests" in parts
            or name.startswith("test_")
            or name == "conftest.py"
        )

    @property
    def in_benchmarks(self) -> bool:
        return "benchmarks" in PurePosixPath(self.relpath).parts

    def in_package(self, *subpackages: str) -> bool:
        """True when the file sits under ``repro/<subpackage>/`` for any
        of the given names (e.g. ``ctx.in_package("core", "graph")``)."""
        posix = self.posix
        return any(f"repro/{sub}/" in posix for sub in subpackages)

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class for one lint rule (see ``repro.analysis.rules``).

    File rules implement ``check(ctx)``.  Rules that need the whole-program
    view additionally implement ``summarize(ctx)`` (a JSON-safe per-file
    fact payload the engine caches by content hash) and
    ``check_project(project)`` (run once per analysis over the assembled
    :class:`~repro.analysis.project.ProjectContext`).
    """

    rule_id: ClassVar[str]
    title: ClassVar[str]
    rationale: ClassVar[str]

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def summarize(self, ctx: FileContext) -> Any | None:
        """Per-file facts for ``check_project``; must be JSON-serialisable.

        Returning ``None`` (the default) stores nothing for this file.
        """
        return None

    def check_project(self, project: Any) -> Iterator[Violation]:
        """Cross-file pass over a ProjectContext; default: no findings."""
        return iter(())

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            path=ctx.posix,
            line=line,
            col=col + 1,
            rule=self.rule_id,
            message=message,
            source=ctx.source_line(line),
        )

    def project_violation(
        self,
        project: Any,
        relpath: str,
        line: int,
        col: int,
        message: str,
    ) -> Violation:
        """A finding anchored in a file the project index knows about.

        ``col`` is 0-based (AST convention), matching :meth:`violation`.
        """
        source = ""
        lines = project.facts.get("__lines__", {}).get(relpath)
        if lines and 1 <= line <= len(lines):
            source = lines[line - 1].strip()
        return Violation(
            path=relpath,
            line=line,
            col=col + 1,
            rule=self.rule_id,
            message=message,
            source=source,
        )


class ProjectRule(Rule):
    """A rule with no per-file findings — only the project pass reports."""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, else None."""
    return dotted_name(node.func)


def iter_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


_SET_CALLS = {"set", "frozenset"}


def is_set_expression(node: ast.AST, set_names: frozenset[str]) -> bool:
    """True when ``node`` provably evaluates to a set/frozenset.

    ``set_names`` carries locally inferred set-typed variable names; see
    :func:`infer_set_names`.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in _SET_CALLS:
            return True
        # set.union(...) / set.intersection(...) style method results
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return is_set_expression(node.func.value, set_names)
        return False
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        # a | b is only called a set when one side provably is one.
        return is_set_expression(node.left, set_names) or is_set_expression(
            node.right, set_names
        )
    return False


def _annotation_is_set(annotation: ast.AST) -> bool:
    base = annotation
    if isinstance(base, ast.Subscript):
        base = base.value
    name = dotted_name(base)
    return name in {"set", "frozenset", "Set", "FrozenSet", "typing.Set", "typing.FrozenSet"}


def infer_set_names(scope_body: list[ast.stmt]) -> frozenset[str]:
    """Names that are only ever bound to set expressions in this scope.

    Single pass, no data-flow: a name qualifies when every plain/annotated
    assignment to it is a provable set expression (or a set annotation) and
    it is never rebound by a for-target, with-target, or import.  Augmented
    ``|=``/``&=``/``-=``/``^=`` keep set-ness.
    """
    candidates: dict[str, bool] = {}

    def disqualify(name: str) -> None:
        candidates[name] = False

    def observe(name: str, is_set: bool) -> None:
        candidates[name] = is_set and candidates.get(name, True)

    # Two-phase: first collect, using an empty set-name universe, then a
    # second pass with the first pass's names lets `b = a | extra` chain.
    known: frozenset[str] = frozenset()
    for _ in range(2):
        candidates.clear()
        for stmt in scope_body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            observe(target.id, is_set_expression(node.value, known))
                        else:
                            for sub in ast.walk(target):
                                if isinstance(sub, ast.Name):
                                    disqualify(sub.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    observe(node.target.id, _annotation_is_set(node.annotation))
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if not isinstance(
                        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
                    ):
                        disqualify(node.target.id)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    for sub in ast.walk(node.target):
                        if isinstance(sub, ast.Name):
                            disqualify(sub.id)
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    for alias in node.names:
                        disqualify((alias.asname or alias.name).split(".")[0])
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    disqualify(node.name)
        known = frozenset(name for name, ok in candidates.items() if ok)
    return known


_FLOAT_CALLS = {
    "float",
    "np.float64",
    "np.float32",
    "numpy.float64",
    "numpy.float32",
    "np.mean",
    "np.sum",
    "np.std",
    "np.var",
    "np.dot",
    "np.sqrt",
    "np.nanmean",
    "np.nansum",
    "np.nanstd",
    "np.nanvar",
    "math.sqrt",
    "math.exp",
    "math.log",
}

_FLOAT_ARRAY_CALLS = {
    "np.array",
    "np.asarray",
    "np.empty",
    "np.zeros",
    "np.ones",
    "np.full",
    "numpy.array",
    "numpy.asarray",
}

_FLOAT_DTYPES = {
    "float",
    "np.float64",
    "np.float32",
    "numpy.float64",
    "numpy.float32",
}


def _call_is_float_array(node: ast.Call) -> bool:
    name = call_name(node)
    if name not in _FLOAT_ARRAY_CALLS:
        return False
    for keyword in node.keywords:
        if keyword.arg == "dtype":
            dtype = dotted_name(keyword.value)
            if dtype in _FLOAT_DTYPES:
                return True
            if isinstance(keyword.value, ast.Constant) and keyword.value.value in (
                "float64",
                "float32",
                "float",
            ):
                return True
    return False


def is_float_expression(node: ast.AST, float_names: frozenset[str]) -> bool:
    """True when ``node`` provably carries float (or float-array) values."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return is_float_expression(node.operand, float_names)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            # True division always yields floats.
            return True
        return is_float_expression(node.left, float_names) or is_float_expression(
            node.right, float_names
        )
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in _FLOAT_CALLS:
            return True
        return _call_is_float_array(node)
    if isinstance(node, ast.Name):
        return node.id in float_names
    if isinstance(node, ast.Subscript):
        return is_float_expression(node.value, float_names)
    if isinstance(node, ast.IfExp):
        return is_float_expression(node.body, float_names) or is_float_expression(
            node.orelse, float_names
        )
    return False


def infer_float_names(scope_body: list[ast.stmt]) -> frozenset[str]:
    """Names only ever assigned provably-float expressions in this scope."""
    candidates: dict[str, bool] = {}
    known: frozenset[str] = frozenset()
    for _ in range(2):
        candidates.clear()
        for stmt in scope_body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            candidates[target.id] = is_float_expression(
                                node.value, known
                            ) and candidates.get(target.id, True)
                        else:
                            for sub in ast.walk(target):
                                if isinstance(sub, ast.Name):
                                    candidates[sub.id] = False
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    for sub in ast.walk(node.target):
                        if isinstance(sub, ast.Name):
                            candidates[sub.id] = False
        known = frozenset(name for name, ok in candidates.items() if ok)
    return known
