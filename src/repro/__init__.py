"""CAD reproduction: early anomaly detection for sensor-based MTS.

Reproduction of "A Stitch in Time Saves Nine: Enabling Early Anomaly
Detection with Correlation Analysis" (ICDE 2023).  The package provides:

* :mod:`repro.core` — the CAD detector (TSGs, Louvain communities,
  co-appearance mining, outlier-variation analysis) plus a streaming API;
* :mod:`repro.baselines` — the nine comparison methods, implemented from
  scratch (LOF, ECOD, IForest, USAD, RCoders, S2G, SAND, SAND*, NormA);
* :mod:`repro.evaluation` — the Delay-aware Evaluation scheme (PA, DPA,
  Ahead/Miss), VUS-ROC/VUS-PR, and sensor-level F1;
* :mod:`repro.datasets` — seeded synthetic simulators standing in for the
  paper's eight datasets;
* :mod:`repro.graph`, :mod:`repro.timeseries`, :mod:`repro.neural`,
  :mod:`repro.clustering` — the substrates everything is built on.

Quickstart::

    from repro import detect_anomalies
    from repro.datasets import load_dataset

    data = load_dataset("psm-sim")
    result = detect_anomalies(data.test, history=data.history)
    for anomaly in result.anomalies:
        print(anomaly.start, anomaly.stop, sorted(anomaly.sensors))
"""

from .core import (
    CAD,
    Anomaly,
    CADConfig,
    DetectionResult,
    RoundRecord,
    StreamingCAD,
    detect_anomalies,
)
from .timeseries import MultivariateTimeSeries, WindowSpec

__version__ = "1.0.0"

__all__ = [
    "CAD",
    "CADConfig",
    "StreamingCAD",
    "detect_anomalies",
    "Anomaly",
    "DetectionResult",
    "RoundRecord",
    "MultivariateTimeSeries",
    "WindowSpec",
    "__version__",
]
