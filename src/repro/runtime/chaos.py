"""Process-level chaos injection for the supervised runtime.

:mod:`repro.datasets.faults` corrupts the *data feed* (missing readings,
dropouts, stuck-at, duplicates, flapping).  This module corrupts the
*process*: rounds that crash mid-flight, rounds that stall past the
watchdog deadline, and checkpoints that land torn on disk.  Together they
are the failure model the soak harness (``benchmarks/bench_soak.py``)
drives the supervisor through.

Every decision is a pure function of ``(seed, channel, round_index,
attempt)`` — no ambient RNG, no call-history dependence — so a soak run is
exactly reproducible, and a *retry* of a crashed round re-rolls its fate
(that is what makes the injected failures transient).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .errors import ConfigurationError

__all__ = ["ChaosModel"]

# Channel tags decorrelate the fate/corruption draws under one seed.
_CHANNEL_FATE = 1
_CHANNEL_CORRUPT = 2


@dataclass(frozen=True)
class ChaosModel:
    """A reproducible process-fault scenario for one supervised stream.

    Attributes
    ----------
    seed:
        Root seed; all decisions derive from it deterministically.
    crash_rate:
        Probability a round attempt crashes mid-flight (the supervisor
        must restore the last valid checkpoint and replay).
    slow_rate:
        Probability a round attempt stalls for ``slow_seconds`` before
        completing (trips the watchdog when past the deadline).
    slow_seconds:
        Stall duration in (virtual) seconds.
    corrupt_rate:
        Probability a freshly written checkpoint generation is torn on
        disk (recovery must fall back past it).
    """

    seed: int = 0
    crash_rate: float = 0.0
    slow_rate: float = 0.0
    slow_seconds: float = 0.5
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for rate, label in (
            (self.crash_rate, "crash_rate"),
            (self.slow_rate, "slow_rate"),
            (self.corrupt_rate, "corrupt_rate"),
        ):
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1), got {rate}")
        if self.crash_rate + self.slow_rate >= 1.0:
            raise ConfigurationError(
                "crash_rate + slow_rate must be < 1, got "
                f"{self.crash_rate} + {self.slow_rate}"
            )
        if self.slow_seconds < 0.0:
            raise ConfigurationError(f"slow_seconds must be >= 0, got {self.slow_seconds}")
        if self.seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {self.seed}")

    @property
    def is_clean(self) -> bool:
        """True when no process fault can ever fire."""
        return (
            self.crash_rate <= 0.0
            and self.slow_rate <= 0.0
            and self.corrupt_rate <= 0.0
        )

    def round_fate(self, round_index: int, attempt: int) -> str | None:
        """``"crash"``, ``"slow"`` or None for one round attempt."""
        if self.crash_rate <= 0.0 and self.slow_rate <= 0.0:
            return None
        rng = np.random.default_rng(
            [self.seed, _CHANNEL_FATE, round_index, attempt]
        )
        draw = float(rng.random())
        if draw < self.crash_rate:
            return "crash"
        if draw < self.crash_rate + self.slow_rate:
            return "slow"
        return None

    def corrupts_checkpoint(self, round_index: int) -> bool:
        """Whether the generation written at ``round_index`` lands torn."""
        if self.corrupt_rate <= 0.0:
            return False
        rng = np.random.default_rng(
            [self.seed, _CHANNEL_CORRUPT, round_index]
        )
        return float(rng.random()) < self.corrupt_rate

    def corrupt_file(self, path: str | Path, round_index: int) -> None:
        """Deterministically tear the file at ``path``.

        Emulates a crash between the data write and its fsync reaching
        every block: the file is truncated to a seeded fraction of its
        length and a short run of bytes near the new end is scribbled.
        """
        path = Path(path)
        size = path.stat().st_size
        rng = np.random.default_rng(
            [self.seed, _CHANNEL_CORRUPT, round_index, size]
        )
        keep = int(size * (0.3 + 0.5 * float(rng.random())))
        with open(path, "r+b") as handle:
            handle.truncate(keep)
            if keep > 16:
                handle.seek(keep - 16)
                handle.write(rng.integers(0, 256, size=8, dtype=np.uint8).tobytes())
            handle.flush()
            os.fsync(handle.fileno())
