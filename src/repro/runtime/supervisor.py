"""The supervised streaming runtime: a self-healing wrapper around
:class:`~repro.core.streaming.StreamingCAD`.

The detector's primitives (degraded-data masking, bit-identical
checkpoint/restore, fault injection) came out of PR 1; this module adds the
*policy* that turns them into a service that survives real-world failures
without giving up the paper's Table VIII determinism:

* **Watchdog + bounded retries** — every round-completing push is timed
  against ``round_deadline``.  A round that crashes or overruns is
  discarded, the last valid checkpoint is restored, the gap is replayed
  from the in-memory sample buffer, and the round is re-attempted after a
  deterministic seeded exponential backoff (:class:`RetryPolicy`).  When
  the retry budget runs out, a late round is *accepted* (liveness beats
  latency) while a persistently crashing round raises
  :class:`RetryBudgetExceededError`.
* **Per-sensor circuit breakers** — consecutive faulty rounds (NaN
  fraction of a sensor's fresh samples at or above
  ``sensor_fault_threshold``) trip the sensor's breaker; while open, its
  readings are overwritten with NaN so the degraded-data machinery
  quarantines it; after a cooldown it is re-admitted on probation
  (:mod:`repro.runtime.breaker`).
* **Crash-safe auto-checkpointing** — every ``checkpoint_every`` emitted
  rounds, the stream state plus a runtime sidecar (breakers, counters,
  emitted-round high-water mark) is written as a rotated generation
  (:mod:`repro.runtime.rotation`); recovery scans newest-to-oldest and
  falls back past torn files.
* **Bounded ingest + health** — samples flow through a bounded queue with
  a deterministic shedding policy (:mod:`repro.runtime.queue`), and
  :meth:`StreamSupervisor.health` reports a structured
  :class:`HealthSnapshot`.
* **Delivery frontier (optional)** — with an attached
  :class:`~repro.ingest.IngestFrontier`, producers feed timestamped
  per-sensor envelopes via :meth:`StreamSupervisor.ingest` instead of
  aligned sample rows: out-of-order delivery is re-sequenced inside the
  disorder horizon, redelivery dedups idempotently, late envelopes follow
  the frontier's explicit policy, and the frontier's reorder state is
  checkpointed alongside the stream so a restarted process resumes
  mid-reorder without double-feeding (``benchmarks/bench_delivery.py``).

Determinism contract: with a :class:`~repro.runtime.clock.VirtualClock`
and a seeded :class:`~repro.runtime.chaos.ChaosModel`, a supervised run —
crashes, timeouts, torn checkpoints and all — emits a ``RoundRecord``
sequence bit-identical to the unsupervised fault-free run over the same
samples (``benchmarks/bench_soak.py`` asserts exactly this).  Quarantine
rounds are the one sanctioned divergence: masking a sensor *is* a data
change, per degraded-data semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

import numpy as np

if TYPE_CHECKING:  # imported lazily to keep repro.ingest <-> runtime acyclic
    from ..ingest.envelope import SampleEnvelope
    from ..ingest.frontier import IngestFrontier

from ..core.config import CADConfig
from ..core.parallel import pool_generation, restore_pool_generation
from ..core.pipeline import RoundCommunity
from ..core.result import RoundRecord
from ..core.streaming import PushError, StreamingCAD
from ..timeseries.mts import MultivariateTimeSeries
from .backoff import RetryPolicy
from .breaker import BreakerBank, BreakerPolicy
from .chaos import ChaosModel
from .clock import Clock, MonotonicClock
from .errors import (
    ConfigurationError,
    RecoveryError,
    RetryBudgetExceededError,
    RoundCrashError,
)
from .health import HealthSnapshot
from .queue import SHED_POLICIES, IngestQueue
from .rotation import CheckpointRotation, RecoveredStream

__all__ = ["SupervisorConfig", "StreamSupervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Policy knobs of the supervised runtime (all deterministic).

    Attributes
    ----------
    retry:
        Backoff/retry policy for transient round failures.
    breaker:
        Per-sensor circuit-breaker policy; ``failure_threshold=0`` disables
        quarantining.
    round_deadline:
        Watchdog deadline per round in seconds; None disables the watchdog.
    sensor_fault_threshold:
        A sensor is *faulty* in a round when at least this fraction of its
        fresh samples were NaN.
    checkpoint_every:
        Emit a checkpoint generation every this many completed rounds;
        0 disables auto-checkpointing (manual ``checkpoint_now`` only).
    keep_checkpoints:
        Checkpoint generations retained by the rotation.
    queue_capacity / shed_policy:
        Bounded-ingest parameters (see :mod:`repro.runtime.queue`).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    round_deadline: float | None = None
    sensor_fault_threshold: float = 0.5
    checkpoint_every: int = 50
    keep_checkpoints: int = 3
    queue_capacity: int = 8192
    shed_policy: str = "drop_oldest"

    def __post_init__(self) -> None:
        if self.round_deadline is not None and self.round_deadline <= 0.0:
            raise ConfigurationError(
                f"round_deadline must be > 0 or None, got {self.round_deadline}"
            )
        if not 0.0 < self.sensor_fault_threshold <= 1.0:
            raise ConfigurationError(
                "sensor_fault_threshold must be in (0, 1], got "
                f"{self.sensor_fault_threshold}"
            )
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.keep_checkpoints < 1:
            raise ConfigurationError(
                f"keep_checkpoints must be >= 1, got {self.keep_checkpoints}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"shed_policy must be one of {SHED_POLICIES}, got {self.shed_policy!r}"
            )


class StreamSupervisor:
    """Self-healing push-based CAD stream (see module docstring).

    Parameters
    ----------
    config, n_sensors:
        Forwarded to :class:`StreamingCAD`.  Quarantining (an enabled
        breaker policy) requires ``config.allow_missing`` because masking
        writes NaN readings.
    supervisor:
        Runtime policy; defaults to :class:`SupervisorConfig`'s defaults.
    checkpoint_dir:
        Directory for rotated checkpoint generations.  Without it the
        supervisor still retries transient failures, but must keep its
        entire replay buffer in memory and cannot survive process death.
    clock:
        Time source; inject a :class:`VirtualClock` for deterministic tests.
    chaos:
        Optional process-fault injector (soak/chaos harness only).
    frontier:
        Optional :class:`~repro.ingest.IngestFrontier`; attaching one
        enables the envelope API (:meth:`ingest` / :meth:`finish`),
        includes the reorder state in every checkpoint, and surfaces the
        frontier counters in :meth:`health`.  ``late_policy="nan_patch"``
        requires ``config.allow_missing`` (patched rows carry NaN).
    resume:
        When True (default) and ``checkpoint_dir`` holds a valid
        generation, adopt it: the stream, breaker states and counters
        continue where the previous process stopped, and rounds it already
        delivered are not re-emitted.
    """

    def __init__(
        self,
        config: CADConfig,
        n_sensors: int,
        *,
        supervisor: SupervisorConfig | None = None,
        checkpoint_dir: str | Path | None = None,
        clock: Clock | None = None,
        chaos: ChaosModel | None = None,
        frontier: "IngestFrontier | None" = None,
        resume: bool = True,
    ) -> None:
        self._sup = supervisor if supervisor is not None else SupervisorConfig()
        if self._sup.breaker.enabled and not config.allow_missing:
            raise ConfigurationError(
                "sensor quarantine masks readings as NaN and needs "
                "CADConfig(allow_missing=True); set it, or disable breakers "
                "with BreakerPolicy(failure_threshold=0)"
            )
        if frontier is not None:
            if frontier.config.n_sensors != n_sensors:
                raise ConfigurationError(
                    f"frontier assembles {frontier.config.n_sensors}-sensor "
                    f"rows, supervisor expects {n_sensors}"
                )
            if frontier.config.late_policy == "nan_patch" and not config.allow_missing:
                raise ConfigurationError(
                    'late_policy="nan_patch" emits NaN-patched rows and needs '
                    "CADConfig(allow_missing=True); set it, or use "
                    'late_policy="drop"'
                )
        self._frontier = frontier
        self._config = config
        self._n_sensors = n_sensors
        self._clock: Clock = clock if clock is not None else MonotonicClock()
        self._chaos = chaos
        self._rotation = (
            CheckpointRotation(checkpoint_dir, keep=self._sup.keep_checkpoints)
            if checkpoint_dir is not None
            else None
        )
        self._queue = IngestQueue(self._sup.queue_capacity, self._sup.shed_policy)
        self._stream = StreamingCAD(config, n_sensors)
        self._bank = BreakerBank(n_sensors, self._sup.breaker)
        self._mask = np.zeros(n_sensors, dtype=bool)
        self._mask_any = False
        self._history: MultivariateTimeSeries | None = None

        # Fresh-segment NaN accounting feeding the breaker fault verdicts.
        # Counting is lazy: raw samples sit in the replay buffer anyway, so
        # the hot path only moves indices and the isnan scan runs vectorised
        # once per segment (at round boundaries / checkpoint writes).
        self._nan_counts = np.zeros(n_sensors, dtype=np.int64)
        self._segment_start = 0  # absolute sample index the segment began at
        self._counted_upto = 0  # absolute sample index counted so far

        # Replay buffer: raw and masked samples since the oldest retained
        # checkpoint; entry i is absolute sample index _replay_base + i.
        self._replay_raw: list[np.ndarray] = []
        self._replay_masked: list[np.ndarray] = []
        self._replay_base = 0

        # Emission / health bookkeeping.
        self._max_emitted_index = -1
        self._samples_ingested = 0
        self._rounds_completed = 0
        self._degraded_rounds = 0
        self._retries = 0
        self._slow_rounds = 0
        self._crashes_recovered = 0
        self._checkpoints_written = 0
        self._last_checkpoint_round = -1
        self._rounds_since_checkpoint = 0
        self._attempts: dict[int, int] = {}

        # True while the local stage-A pipeline lags the stream: staged
        # rounds (fleet offload) advance stage B without touching the
        # local window→communities pipeline unless worker state rides
        # along.  While stale, in-process round pushes and checkpoints
        # are refused — see process_staged / resync_pipeline.
        self._pipeline_stale = False

        if resume and self._rotation is not None:
            restored = self._rotation.recover()
            if restored is not None:
                self._adopt_recovered(restored)

    # ----------------------------------------------------------------- #
    # Public surface
    # ----------------------------------------------------------------- #

    @property
    def stream(self) -> StreamingCAD:
        """The supervised stream (read-only diagnostics)."""
        return self._stream

    @property
    def breakers(self) -> BreakerBank:
        """The per-sensor circuit breakers."""
        return self._bank

    @property
    def frontier(self) -> "IngestFrontier | None":
        """The attached delivery frontier (None when feeding sample rows)."""
        return self._frontier

    def warm_up(self, history: MultivariateTimeSeries) -> None:
        """Seed detector statistics; kept for from-scratch recovery replay."""
        self._history = history
        self._stream.warm_up(history)

    def submit(self, sample: np.ndarray) -> bool:
        """Offer one sample to the bounded ingest queue (may shed)."""
        sample = self._validate(sample)
        return self._queue.offer(sample)

    def pump(self, max_samples: int | None = None) -> list[RoundRecord]:
        """Drain the ingest queue through the supervised pipeline.

        ``max_samples`` caps how many queued samples are consumed (the
        fleet scheduler's fairness quantum); None drains fully.
        """
        records: list[RoundRecord] = []
        taken = 0
        while len(self._queue):
            if max_samples is not None and taken >= max_samples:
                break
            taken += 1
            records.extend(self._process_raw(self._queue.pop()))
        return records

    @property
    def pending_samples(self) -> int:
        """Validated samples waiting in the bounded ingest queue."""
        return len(self._queue)

    def pop_pending(self) -> np.ndarray:
        """Pop one queued sample without processing it.

        The fleet scheduler uses this to look at the next sample, decide
        whether it completes a round (offload candidate), and route it
        through :meth:`process` or :meth:`process_staged` itself.  Raises
        :class:`~repro.runtime.errors.QueueEmptyError` when empty.
        """
        return self._queue.pop()

    def process(self, sample: np.ndarray) -> list[RoundRecord]:
        """Feed one sample synchronously; return the *new* records.

        Bypasses the ingest queue (a synchronous caller provides its own
        backpressure); use :meth:`submit` + :meth:`pump` for decoupled
        producers that need the bounded queue.
        """
        return self._process_raw(self._validate(sample))

    # ----------------------------------------------------------------- #
    # Staged rounds (fleet stage-A offload)
    # ----------------------------------------------------------------- #

    def stage_window(self, sample: np.ndarray) -> np.ndarray:
        """The masked window the round completed by ``sample`` would score.

        Only legal when ``sample`` is round-completing.  Quarantine masking
        happens *here*, parent-side — the shipped window already carries
        the breaker state, so offloaded stage A needs no knowledge of it.
        Nothing is ingested; feed the same sample to :meth:`process_staged`
        with the computed stage to complete the round.
        """
        return self._stream.peek_window(self._masked(self._validate(sample)))

    def process_staged(
        self,
        sample: np.ndarray,
        stage: "RoundCommunity",
        pipeline_state: dict[str, Any] | None = None,
    ) -> list[RoundRecord]:
        """Complete a round from an offloaded stage-A result.

        ``stage`` must be the result of stage A over exactly
        ``stage_window(sample)`` (usually computed in a pool worker); the
        full supervised envelope — chaos fates, watchdog, retries, breaker
        updates, emission dedup, auto-checkpointing — runs as if the round
        had been computed in-process, and the emitted records are
        bit-identical.  Any recovery mid-round falls back to an in-process
        recompute (replay rebuilds the live pipeline anyway).

        Without ``pipeline_state`` the local stage-A pipeline goes *stale*
        (:attr:`pipeline_stale`); the caller must sync worker state back —
        or call :meth:`resync_pipeline` — before any in-process round or
        checkpoint.
        """
        raw = self._validate(sample)
        if self._stream.samples_seen + 1 != self._stream.next_round_end:
            raise ConfigurationError(
                "process_staged requires a round-completing sample; next "
                f"sample is {self._stream.samples_seen + 1}, round closes at "
                f"{self._stream.next_round_end}"
            )
        masked = self._masked(raw)
        self._replay_raw.append(raw)
        self._replay_masked.append(masked)
        self._samples_ingested += 1
        return self._guarded_round(masked, stage=stage, pipeline_state=pipeline_state)

    @property
    def pipeline_stale(self) -> bool:
        """True while the local stage-A pipeline lags offloaded rounds."""
        return self._pipeline_stale

    @property
    def checkpoint_due_next_round(self) -> bool:
        """Would completing one more round trigger an auto-checkpoint?

        The fleet scheduler asks before dispatching an offloaded round so
        it can request the worker's pipeline state exactly when the
        checkpoint will need it.
        """
        return (
            self._rotation is not None
            and self._sup.checkpoint_every > 0
            and self._rounds_since_checkpoint + 1 >= self._sup.checkpoint_every
        )

    @property
    def retries_performed(self) -> int:
        """Total retries so far (scheduler probe for mid-call recoveries)."""
        return self._retries

    def pipeline_state(self) -> dict[str, Any] | None:
        """Picklable stage-A pipeline state to seed a worker cache.

        None for the stateless reference engine.  Refused while the local
        pipeline is stale — shipping a lagging state would corrupt the
        worker's cache.
        """
        if self._pipeline_stale:
            raise RecoveryError(
                "stage-A pipeline is stale (offloaded rounds not yet "
                "synced); resync before exporting its state"
            )
        pipeline = self._stream.detector.pipeline
        if pipeline.kernel is None:
            return None
        return pipeline.to_state()

    def adopt_pipeline_state(self, state: dict[str, Any] | None) -> None:
        """Adopt worker-returned stage-A state; clears :attr:`pipeline_stale`.

        ``None`` is accepted for the stateless reference engine (nothing
        to restore, the pipeline is never meaningfully stale).
        """
        if state is not None:
            self._stream.detector.pipeline.restore_state(state)
        self._pipeline_stale = False

    def resync_pipeline(self) -> None:
        """Rebuild the live stage-A pipeline after offload went stale.

        Restores the newest valid checkpoint and replays the gap in
        process — the same machinery crash recovery uses, minus the
        backoff.  Used when the worker holding the cached pipeline died
        and its state cannot be fetched back.  No-op when already live.
        """
        if not self._pipeline_stale:
            return
        self._restore_and_replay(exclude_last=False)

    def process_many(self, samples: np.ndarray) -> list[RoundRecord]:
        """Feed an ``(n_sensors, t)`` block sample by sample.

        The block is copied once up front; the per-sample loop then feeds
        views of the private copy, skipping ``process``'s per-sample copy.
        """
        samples = np.array(samples, dtype=np.float64)  # private copy
        if samples.ndim != 2 or samples.shape[0] != self._n_sensors:
            raise ConfigurationError(
                f"expected ({self._n_sensors}, t) block, got shape {samples.shape}"
            )
        records: list[RoundRecord] = []
        for column in samples.T:
            records.extend(self._process_raw(column))
        return records

    def run(self, samples: Iterable[np.ndarray]) -> Iterator[RoundRecord]:
        """Generator form of :meth:`process` over a sample source."""
        for sample in samples:
            for record in self.process(np.asarray(sample)):
                yield record

    # ----------------------------------------------------------------- #
    # Envelope API (delivery frontier)
    # ----------------------------------------------------------------- #

    def _require_frontier(self) -> "IngestFrontier":
        if self._frontier is None:
            raise ConfigurationError(
                "no IngestFrontier attached; construct the supervisor with "
                "frontier=IngestFrontier(...) to ingest envelopes"
            )
        return self._frontier

    def ingest(self, envelope: "SampleEnvelope") -> list[RoundRecord]:
        """Feed one timestamped envelope; return the *new* round records.

        Rows are pulled off the frontier one at a time and fed through the
        full supervised pipeline, so a checkpoint written mid-flush still
        captures every not-yet-consumed row inside the frontier state.
        """
        frontier = self._require_frontier()
        frontier.push(envelope)
        records: list[RoundRecord] = []
        while True:
            row = frontier.pop_ready()
            if row is None:
                return records
            records.extend(self._process_raw(row))

    def ingest_many(
        self, envelopes: Iterable["SampleEnvelope"]
    ) -> list[RoundRecord]:
        """Feed a batch of envelopes (any delivery order)."""
        records: list[RoundRecord] = []
        for envelope in envelopes:
            records.extend(self.ingest(envelope))
        return records

    def finish(self) -> list[RoundRecord]:
        """Drain the frontier past the watermark (end of the stream).

        Rows the watermark was still holding back flush in grid order;
        call once after the last envelope.  No-op without a frontier.
        """
        if self._frontier is None:
            return []
        records: list[RoundRecord] = []
        for row in self._frontier.drain():
            records.extend(self._process_raw(row))
        return records

    def checkpoint_now(self) -> Path | None:
        """Write a checkpoint generation immediately (None without a dir)."""
        if self._rotation is None:
            return None
        return self._write_checkpoint()

    def health(self) -> HealthSnapshot:
        """Structured health report (see :class:`HealthSnapshot`)."""
        stats = self._frontier.stats() if self._frontier is not None else None
        return HealthSnapshot(
            rounds_completed=self._rounds_completed,
            samples_ingested=self._samples_ingested,
            samples_shed=self._queue.shed,
            queue_depth=len(self._queue),
            queue_high_watermark=self._queue.high_watermark,
            queue_policy=self._queue.policy,
            queue_capacity=self._queue.capacity,
            retries=self._retries,
            slow_rounds=self._slow_rounds,
            crashes_recovered=self._crashes_recovered,
            checkpoints_written=self._checkpoints_written,
            last_checkpoint_round=self._last_checkpoint_round,
            checkpoint_lag=self._rounds_since_checkpoint,
            open_breakers=self._bank.open_sensors(),
            half_open_breakers=self._bank.half_open_sensors(),
            breaker_trips=self._bank.total_times_opened(),
            degraded_rounds=self._degraded_rounds,
            samples_reordered=stats.reordered if stats is not None else 0,
            samples_deduped=stats.deduped if stats is not None else 0,
            samples_late_dropped=stats.late_dropped if stats is not None else 0,
            cells_nan_patched=stats.nan_patched if stats is not None else 0,
            rows_dropped=stats.rows_dropped if stats is not None else 0,
            watermark_lag=stats.watermark_lag if stats is not None else 0,
            pool_generation=pool_generation(),
        )

    # ----------------------------------------------------------------- #
    # Supervised per-sample pipeline
    # ----------------------------------------------------------------- #

    def _validate(self, sample: np.ndarray) -> np.ndarray:
        sample = np.array(sample, dtype=np.float64).reshape(-1)  # fresh copy
        if sample.shape != (self._n_sensors,):
            raise ConfigurationError(
                f"expected sample of {self._n_sensors} readings, got {sample.shape}"
            )
        return sample

    def _refresh_mask(self) -> None:
        """Re-derive the cached quarantine mask after breaker changes."""
        if self._sup.breaker.enabled:
            self._mask = self._bank.quarantine_mask()
            self._mask_any = bool(self._mask.any())
        else:
            self._mask_any = False

    def _masked(self, raw: np.ndarray) -> np.ndarray:
        """Apply the current quarantine mask to one raw sample."""
        if not self._mask_any:
            return raw
        masked = raw.copy()
        masked[self._mask] = np.nan
        return masked

    def _process_raw(self, raw: np.ndarray) -> list[RoundRecord]:
        masked = self._masked(raw)
        self._replay_raw.append(raw)
        self._replay_masked.append(masked)
        self._samples_ingested += 1

        if self._stream.samples_seen + 1 < self._stream.next_round_end:
            # Mid-window sample: nothing to supervise, push straight through.
            record = self._stream.push(masked)
            if record is not None:  # pragma: no cover - defensive
                return self._finish_round(record)
            return []
        return self._guarded_round(masked)

    def _guarded_round(
        self,
        masked: np.ndarray,
        stage: RoundCommunity | None = None,
        pipeline_state: dict[str, Any] | None = None,
    ) -> list[RoundRecord]:
        """Watchdog/chaos/retry envelope around a round-completing push.

        With ``stage`` the first attempt applies the offloaded stage-A
        result (:meth:`StreamingCAD.push_staged`); any recovery drops to
        the in-process recompute — replay rebuilt the live pipeline, and
        stage A is pure, so both paths emit the same record.
        """
        round_index = self._stream.detector.rounds_processed
        retry = self._sup.retry
        staged = stage is not None
        while True:
            attempt = self._attempts.get(round_index, 0)
            fate = (
                self._chaos.round_fate(round_index, attempt)
                if self._chaos is not None
                else None
            )
            if fate == "crash":
                failure: Exception = RoundCrashError(round_index, attempt)
                if attempt >= retry.max_retries:
                    raise RetryBudgetExceededError(round_index, attempt + 1, failure)
                self._attempts[round_index] = attempt + 1
                self._retries += 1
                self._crashes_recovered += 1
                self._recover_and_replay(round_index, attempt)
                staged = False
                continue

            start = self._clock.monotonic()
            if fate == "slow" and self._chaos is not None:
                self._clock.sleep(self._chaos.slow_seconds)
            if staged and stage is not None:
                record = self._stream.push_staged(masked, stage, pipeline_state)
                self._pipeline_stale = (
                    pipeline_state is None
                    and self._stream.detector.pipeline.kernel is not None
                )
            else:
                if self._pipeline_stale:
                    raise RecoveryError(
                        f"round {round_index}: in-process push with a stale "
                        "stage-A pipeline; sync worker state or call "
                        "resync_pipeline() first"
                    )
                record = self._stream.push(masked)
            elapsed = self._clock.monotonic() - start
            if record is None:  # pragma: no cover - push/boundary invariant
                raise RecoveryError(
                    f"round {round_index}: push completed no round at a "
                    "window boundary; stream state is inconsistent"
                )

            deadline = self._sup.round_deadline
            if deadline is not None and elapsed > deadline:
                self._slow_rounds += 1
                if attempt < retry.max_retries:
                    # Watchdog: discard the late round, restore, re-attempt.
                    self._attempts[round_index] = attempt + 1
                    self._retries += 1
                    self._recover_and_replay(round_index, attempt)
                    staged = False
                    continue
                # Budget exhausted: accept the late round (liveness first).
            self._attempts.pop(round_index, None)
            return self._finish_round(record)

    def _flush_nan_counts(self) -> None:
        """Catch the NaN accounting up to the stream's current position."""
        end = self._stream.samples_seen
        if end <= self._counted_upto:
            return
        block = self._replay_raw[
            self._counted_upto - self._replay_base : end - self._replay_base
        ]
        self._nan_counts += np.isnan(np.column_stack(block)).sum(axis=1)
        self._counted_upto = end

    def _reset_segment(self) -> None:
        self._nan_counts[:] = 0
        self._segment_start = self._stream.samples_seen
        self._counted_upto = self._stream.samples_seen

    def _round_fault_verdicts(self) -> np.ndarray:
        self._flush_nan_counts()
        segment_len = self._stream.samples_seen - self._segment_start
        fraction = self._nan_counts / max(1, segment_len)
        return fraction >= self._sup.sensor_fault_threshold

    def _finish_round(self, record: RoundRecord) -> list[RoundRecord]:
        """Breaker updates, emission dedup and auto-checkpointing."""
        if self._sup.breaker.enabled:
            if self._bank.record_round(self._round_fault_verdicts()):
                self._refresh_mask()
        self._reset_segment()

        emitted: list[RoundRecord] = []
        if record.index > self._max_emitted_index:
            self._max_emitted_index = record.index
            self._rounds_completed += 1
            if record.quality is not None and record.quality.degraded:
                self._degraded_rounds += 1
            emitted.append(record)

        self._rounds_since_checkpoint += 1
        if (
            self._rotation is not None
            and self._sup.checkpoint_every > 0
            and self._rounds_since_checkpoint >= self._sup.checkpoint_every
        ):
            self._write_checkpoint()
        return emitted

    # ----------------------------------------------------------------- #
    # Checkpointing
    # ----------------------------------------------------------------- #

    def _runtime_state(self) -> dict[str, Any]:
        self._flush_nan_counts()
        frontier_state = (
            self._frontier.to_state() if self._frontier is not None else None
        )
        return {
            "frontier": frontier_state,
            "breakers": self._bank.to_state(),
            "nan_counts": [int(v) for v in self._nan_counts],
            "segment_len": self._stream.samples_seen - self._segment_start,
            "max_emitted_index": self._max_emitted_index,
            # The worker pool outlives crash recovery (workers are
            # stateless between calls); only its respawn counter is
            # persisted so post-restore health keeps counting upward.
            "pool_generation": pool_generation(),
            "health": {
                "rounds_completed": self._rounds_completed,
                "degraded_rounds": self._degraded_rounds,
                "retries": self._retries,
                "slow_rounds": self._slow_rounds,
                "crashes_recovered": self._crashes_recovered,
                "checkpoints_written": self._checkpoints_written,
            },
        }

    def _write_checkpoint(self) -> Path:
        assert self._rotation is not None
        if self._pipeline_stale:
            raise RecoveryError(
                "checkpoint requested while the stage-A pipeline is stale "
                "(offloaded rounds not yet synced); a checkpoint written now "
                "would resume with a lagging kernel — sync worker state or "
                "call resync_pipeline() first"
            )
        round_index = self._stream.detector.rounds_processed
        generation = self._rotation.write(
            self._stream, round_index, self._runtime_state()
        )
        self._checkpoints_written += 1
        self._last_checkpoint_round = round_index
        self._rounds_since_checkpoint = 0
        if self._chaos is not None and self._chaos.corrupts_checkpoint(round_index):
            # Chaos harness: tear the archive we just wrote; a later
            # recovery must fall back past it to the previous generation.
            self._chaos.corrupt_file(generation.path, round_index)
        self._trim_replay()
        return generation.path

    def _trim_replay(self) -> None:
        """Drop replay entries no retained checkpoint could need."""
        if self._rotation is None:
            return
        covered = self._rotation.min_covered_samples()
        if covered <= self._replay_base:
            return
        drop = covered - self._replay_base
        del self._replay_raw[:drop]
        del self._replay_masked[:drop]
        self._replay_base = covered

    # ----------------------------------------------------------------- #
    # Recovery
    # ----------------------------------------------------------------- #

    def _adopt_recovered(self, restored: RecoveredStream) -> None:
        """Resume a previous process's stream (init-time recovery)."""
        if restored.stream.detector.config != self._config:
            raise RecoveryError(
                f"{restored.generation.path}: checkpoint config does not match "
                "the supervisor's CADConfig; resume with the original config"
            )
        if restored.stream.detector.n_sensors != self._n_sensors:
            raise RecoveryError(
                f"{restored.generation.path}: checkpoint has "
                f"{restored.stream.detector.n_sensors} sensors, supervisor "
                f"expects {self._n_sensors}"
            )
        self._stream = restored.stream
        self._pipeline_stale = False
        self._replay_base = restored.stream.samples_seen
        self._replay_raw.clear()
        self._replay_masked.clear()
        self._restore_runtime_state(restored.runtime_state, process_restart=True)
        self._last_checkpoint_round = restored.generation.round_index
        self._rounds_since_checkpoint = 0

    def _restore_runtime_state(
        self, state: dict[str, Any], *, process_restart: bool = False
    ) -> None:
        breakers = state.get("breakers")
        if isinstance(breakers, list) and len(breakers) == self._n_sensors:
            self._bank = BreakerBank.from_state(self._sup.breaker, breakers)
        else:
            self._bank = BreakerBank(self._n_sensors, self._sup.breaker)
        counts = state.get("nan_counts")
        if isinstance(counts, list) and len(counts) == self._n_sensors:
            self._nan_counts = np.asarray(counts, dtype=np.int64)
        else:
            self._nan_counts = np.zeros(self._n_sensors, dtype=np.int64)
        self._refresh_mask()
        segment_len = int(state.get("segment_len", 0))
        self._segment_start = self._stream.samples_seen - segment_len
        self._counted_upto = self._stream.samples_seen
        self._max_emitted_index = max(
            self._max_emitted_index, int(state.get("max_emitted_index", -1))
        )
        restore_pool_generation(int(state.get("pool_generation", 0)))
        if process_restart:
            # Frontier reorder state resumes only across process death: an
            # in-process retry keeps the *live* frontier, because rows it
            # already flushed sit in the replay buffer and rewinding it
            # would re-flush them on the next envelope.
            frontier_state = state.get("frontier")
            if self._frontier is not None and frontier_state is not None:
                self._frontier.restore_state(frontier_state)
            health = state.get("health", {})
            self._rounds_completed = int(health.get("rounds_completed", 0))
            self._degraded_rounds = int(health.get("degraded_rounds", 0))
            self._retries = int(health.get("retries", 0))
            self._slow_rounds = int(health.get("slow_rounds", 0))
            self._crashes_recovered = int(health.get("crashes_recovered", 0))
            self._checkpoints_written = int(health.get("checkpoints_written", 0))

    def _recover_and_replay(self, round_index: int, attempt: int) -> None:
        """Back off, restore the newest valid state, replay up to the
        failing sample (exclusive), leaving it ready for re-attempt."""
        self._clock.sleep(self._sup.retry.delay(round_index, attempt))
        self._restore_and_replay(exclude_last=True)

    def _restore_and_replay(self, *, exclude_last: bool) -> None:
        """Restore the newest valid state and replay the buffered gap.

        ``exclude_last=True`` leaves the final replay entry (the failing
        sample of a retried round) for the caller to re-attempt;
        ``exclude_last=False`` replays everything (pipeline resync after
        offload — every buffered sample was already stage-B-processed).
        Either way the stream object is rebuilt in-process, so the local
        stage-A pipeline comes out live.
        """
        restored = self._rotation.recover() if self._rotation is not None else None
        if restored is not None:
            self._stream = restored.stream
            self._restore_runtime_state(restored.runtime_state)
            skip = restored.stream.samples_seen - self._replay_base
            if skip < 0:
                raise RecoveryError(
                    f"replay buffer starts at sample {self._replay_base} but "
                    f"the recovered checkpoint is at {restored.stream.samples_seen}; "
                    "state cannot be reconstructed"
                )
        elif self._replay_base == 0:
            # No checkpoint anywhere: rebuild from scratch (including the
            # warm-up, which the supervisor kept for exactly this).
            self._stream = StreamingCAD(self._config, self._n_sensors)
            if self._history is not None:
                self._stream.warm_up(self._history)
            self._bank = BreakerBank(self._n_sensors, self._sup.breaker)
            self._refresh_mask()
            self._reset_segment()
            skip = 0
        else:
            raise RecoveryError(
                "no valid checkpoint generation survived and the replay "
                f"buffer only reaches back to sample {self._replay_base}; "
                "cannot reconstruct the stream"
            )
        # Replay everything between the restored state and the failing
        # sample; the failing sample itself is re-attempted by the caller
        # (with exclude_last=False there is no failing sample to hold back).
        self._pipeline_stale = False
        stop = len(self._replay_raw) - (1 if exclude_last else 0)
        self._replay_range(skip, stop)

    def _replay_range(self, start: int, stop: int) -> None:
        """Re-feed replay entries ``[start, stop)`` through the detector.

        Pushes run in per-round chunks via ``push_many`` — the quarantine
        mask can only change at round boundaries, and a chunked failure
        surfaces its exact absolute sample offset via ``PushError.index``.
        Emission is naturally suppressed (all replayed rounds are at or
        below the emitted high-water mark), while breaker/NaN accounting is
        re-derived so post-recovery state matches the pre-failure state.
        """
        i = start
        while i < stop:
            take = min(
                stop - i, self._stream.next_round_end - self._stream.samples_seen
            )
            masked_block = np.column_stack(self._replay_masked[i : i + take])
            try:
                records = self._stream.push_many(masked_block)
            except PushError as exc:
                raise RecoveryError(
                    "replay failed at absolute sample "
                    f"{self._replay_base + i + exc.index}: {exc}"
                ) from exc
            for record in records:
                if self._sup.breaker.enabled:
                    if self._bank.record_round(self._round_fault_verdicts()):
                        self._refresh_mask()
                self._reset_segment()
                if record.index > self._max_emitted_index:  # pragma: no cover
                    raise RecoveryError(
                        f"replay produced unemitted round {record.index}; "
                        "replay range and emission bookkeeping disagree"
                    )
            i += take
