"""Bounded ingest queue with an explicit, deterministic shedding policy.

When rounds run slow (retries, recovery, an overloaded box) the sample
source keeps producing.  Unbounded buffering turns that into unbounded
memory and unbounded staleness, so the supervisor ingests through a
bounded queue with one of three policies, chosen up front and applied
deterministically (no timing dependence — an offer either fits or it
does not):

``"drop_oldest"`` (default)
    Shed the oldest queued sample to make room — the stream stays fresh
    and keeps its tail; a gap appears in the middle.  Shed samples surface
    as missing data (the degraded-data machinery sees a shorter feed), not
    as silent corruption.
``"drop_newest"``
    Refuse the incoming sample — the queue's contents are stable, the
    freshest data is lost.
``"error"``
    Raise :class:`~repro.runtime.errors.QueueOverflowError` — explicit
    backpressure for sources that can block upstream.

Counters (`accepted`, `shed`, `high_watermark`) feed the
:class:`~repro.runtime.health.HealthSnapshot`.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .errors import ConfigurationError, QueueEmptyError, QueueOverflowError

__all__ = ["SHED_POLICIES", "IngestQueue"]

SHED_POLICIES = ("drop_oldest", "drop_newest", "error")


class IngestQueue:
    """FIFO of pending samples with a hard capacity and shed accounting."""

    def __init__(self, capacity: int, policy: str = "drop_oldest") -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {SHED_POLICIES}, got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self._queue: deque[np.ndarray] = deque()
        self.accepted = 0
        self.shed = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._queue)

    def offer(self, sample: np.ndarray) -> bool:
        """Enqueue ``sample``; returns False iff it was shed.

        Under ``"drop_oldest"`` the *offer* always succeeds (returns True)
        but the queue head may have been shed to make room; under
        ``"drop_newest"`` a full queue rejects the offer; under
        ``"error"`` a full queue raises.
        """
        if len(self._queue) >= self.capacity:
            if self.policy == "error":
                raise QueueOverflowError(self.capacity)
            if self.policy == "drop_newest":
                self.shed += 1
                return False
            self._queue.popleft()
            self.shed += 1
        self._queue.append(sample)
        self.accepted += 1
        self.high_watermark = max(self.high_watermark, len(self._queue))
        return True

    def pop(self) -> np.ndarray:
        """Dequeue the oldest pending sample."""
        if not self._queue:
            raise QueueEmptyError("ingest queue is empty")
        return self._queue.popleft()

    def clear(self) -> None:
        self._queue.clear()
