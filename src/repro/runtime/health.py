"""The supervisor's structured health report.

A :class:`HealthSnapshot` is a frozen, JSON-serialisable view of everything
an operator (or the CI soak job) needs to judge a supervised stream at a
glance: progress, retry pressure, breaker states, checkpoint lag and
shedding.  It is pure data — produced by
:meth:`~repro.runtime.supervisor.StreamSupervisor.health`, uploaded as a CI
artifact by the chaos-soak job, and printable from ``repro run``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = ["HealthSnapshot"]


@dataclass(frozen=True)
class HealthSnapshot:
    """Point-in-time health of one supervised stream.

    Attributes
    ----------
    rounds_completed:
        Rounds emitted to the consumer (excluding replayed duplicates).
    samples_ingested:
        Samples accepted off the ingest queue into the detector.
    samples_shed:
        Samples dropped by the bounded-queue shedding policy.
    queue_depth, queue_high_watermark:
        Current and worst-case ingest backlog.
    queue_policy, queue_capacity:
        The bounded queue's shedding policy and hard capacity — reported so
        an operator reading ``samples_shed`` can tell *which* policy shed
        (``drop_oldest`` gaps the middle, ``drop_newest`` loses the tail).
    retries:
        Transient-failure retries performed (crashes + timeouts).
    slow_rounds:
        Rounds that ran past the watchdog deadline (including ones
        ultimately accepted late after the retry budget ran out).
    crashes_recovered:
        Mid-round crashes survived via checkpoint restore + replay.
    checkpoints_written:
        Checkpoint generations written so far.
    last_checkpoint_round:
        Round index of the newest generation (-1 before the first).
    checkpoint_lag:
        Rounds completed since the newest checkpoint — the replay cost an
        immediate crash would incur.
    open_breakers, half_open_breakers:
        Sensors currently quarantined / on probation (sorted).
    breaker_trips:
        Total closed->open transitions over the stream's life.
    degraded_rounds:
        Emitted rounds whose decision used incomplete data (masked sensors
        or missing readings).
    samples_reordered, samples_deduped, samples_late_dropped:
        Delivery-frontier counters (zero without an attached
        :class:`~repro.ingest.IngestFrontier`): out-of-order envelopes
        re-sequenced, redelivered envelopes absorbed idempotently, and
        envelopes discarded for arriving past the watermark.
    cells_nan_patched:
        Sample cells emitted as NaN because their envelope missed the
        watermark (``late_policy="nan_patch"``); absorbed by the
        degraded-data path.
    rows_dropped:
        Whole sample rows skipped as incomplete (``late_policy="drop"``).
    watermark_lag:
        Rows currently held in the reorder buffer between the flush
        frontier and the newest observed row.
    pool_generation:
        Worker-pool respawn counter (0 when no pool has ever respawned a
        dead worker).  Checkpointed alongside the stream, so the count
        survives process restarts.
    """

    rounds_completed: int = 0
    samples_ingested: int = 0
    samples_shed: int = 0
    queue_depth: int = 0
    queue_high_watermark: int = 0
    queue_policy: str = "drop_oldest"
    queue_capacity: int = 0
    retries: int = 0
    slow_rounds: int = 0
    crashes_recovered: int = 0
    checkpoints_written: int = 0
    last_checkpoint_round: int = -1
    checkpoint_lag: int = 0
    open_breakers: tuple[int, ...] = field(default=())
    half_open_breakers: tuple[int, ...] = field(default=())
    breaker_trips: int = 0
    degraded_rounds: int = 0
    samples_reordered: int = 0
    samples_deduped: int = 0
    samples_late_dropped: int = 0
    cells_nan_patched: int = 0
    rows_dropped: int = 0
    watermark_lag: int = 0
    pool_generation: int = 0

    def to_dict(self) -> dict[str, object]:
        payload = asdict(self)
        payload["open_breakers"] = list(self.open_breakers)
        payload["half_open_breakers"] = list(self.half_open_breakers)
        payload["healthy"] = self.healthy
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @property
    def healthy(self) -> bool:
        """No quarantined sensors and no ingest shedding so far."""
        return not self.open_breakers and self.samples_shed == 0
