"""Supervised streaming runtime for the CAD detector.

This package turns the detector's fault-tolerance *primitives* (degraded
data masking, bit-identical checkpoints, fault injection) into a
self-healing *service*: a :class:`StreamSupervisor` that wraps
:class:`~repro.core.streaming.StreamingCAD` with a per-round watchdog,
deterministic retry/backoff, per-sensor circuit breakers, crash-safe
rotated checkpoints, a bounded ingest queue and a structured health
report.  See DESIGN.md section 8 for the failure model.
"""

from .backoff import RetryPolicy
from .breaker import BreakerBank, BreakerPolicy, BreakerState, SensorBreaker
from .chaos import ChaosModel
from .clock import Clock, MonotonicClock, VirtualClock
from .errors import (
    CheckpointError,
    ConfigurationError,
    EnvelopeValidationError,
    FleetError,
    FleetManifestError,
    FrontierStateError,
    IngestError,
    InvalidSampleError,
    PushError,
    QueueOverflowError,
    RecoveryError,
    RetryBudgetExceededError,
    RoundCrashError,
    RoundTimeoutError,
    SequenceConflictError,
    SupervisorError,
    TransientRoundError,
    UnknownTenantError,
)
from .health import HealthSnapshot
from .queue import SHED_POLICIES, IngestQueue
from .rotation import CheckpointRotation, Generation, RecoveredStream
from .supervisor import StreamSupervisor, SupervisorConfig

__all__ = [
    "RetryPolicy",
    "BreakerBank",
    "BreakerPolicy",
    "BreakerState",
    "SensorBreaker",
    "ChaosModel",
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "CheckpointError",
    "ConfigurationError",
    "EnvelopeValidationError",
    "FleetError",
    "FleetManifestError",
    "UnknownTenantError",
    "FrontierStateError",
    "IngestError",
    "InvalidSampleError",
    "PushError",
    "QueueOverflowError",
    "RecoveryError",
    "SequenceConflictError",
    "RetryBudgetExceededError",
    "RoundCrashError",
    "RoundTimeoutError",
    "SupervisorError",
    "TransientRoundError",
    "HealthSnapshot",
    "SHED_POLICIES",
    "IngestQueue",
    "CheckpointRotation",
    "Generation",
    "RecoveredStream",
    "StreamSupervisor",
    "SupervisorConfig",
]
