"""Structured error taxonomy of the streaming runtime.

Every failure the supervisor handles (or gives up on) is typed, so policy
code switches on exception class instead of string-matching messages:

``SupervisorError``
    Base of everything raised by :mod:`repro.runtime`.
``ConfigurationError``
    A runtime/ingest component was handed invalid parameters — at
    construction (a bad policy/config value) or at a call site (a sample
    block of the wrong shape).  Also derives from :class:`ValueError`, so
    pre-taxonomy callers catching ``ValueError`` keep working.
``QueueEmptyError``
    Popping from an empty ingest queue.  Also derives from
    :class:`IndexError` (the builtin ``deque``/``list`` convention it
    replaces).
``TransientRoundError``
    A round failed in a way worth retrying (the supervisor restores the
    last valid checkpoint, replays, backs off and re-attempts).  Subtypes:
    ``RoundTimeoutError`` (watchdog deadline exceeded) and
    ``RoundCrashError`` (the round died mid-flight — in production an
    abrupt process exit, in the chaos harness an injected crash).
``RetryBudgetExceededError``
    A round kept failing past ``RetryPolicy.max_retries``; the stream
    cannot make progress and the failure is surfaced to the operator.
``RecoveryError``
    Crash recovery itself failed: no valid checkpoint generation survived
    *and* the in-memory replay buffer cannot cover the gap.
``QueueOverflowError``
    The bounded ingest queue overflowed under the ``"error"`` shedding
    policy (the explicit-backpressure mode; the drop policies shed instead).
``IngestError``
    Base of the delivery-frontier rejection taxonomy (:mod:`repro.ingest`).
    Subtypes: ``EnvelopeValidationError`` (an envelope failed schema /
    shape / dtype / finiteness validation and never entered the reorder
    buffer), ``SequenceConflictError`` (two envelopes with *different*
    sequence numbers claimed the same grid cell — producer-side numbering
    is broken, which dedup must not paper over), and ``FrontierStateError``
    (a checkpointed frontier state could not be restored consistently).
``FleetError``
    Base of the multi-tenant fleet runtime taxonomy (:mod:`repro.fleet`).
    Subtypes: ``UnknownTenantError`` (a sample/envelope named a tenant the
    shard router does not know — fleet membership is declared up front,
    never inferred from traffic) and ``FleetManifestError`` (the fleet
    checkpoint manifest disagrees with the configured tenant set, shard
    count, or per-tenant lineage, so a blind resume would silently mix
    checkpoint lineages across fleets).

:class:`~repro.core.checkpoint.CheckpointError` (corrupt/unreadable
checkpoint file), :class:`~repro.core.streaming.PushError` (mid-batch
push failure with the exact offset) and
:class:`~repro.core.streaming.InvalidSampleError` (non-finite readings in a
pushed sample) are re-exported here so runtime callers import the full
taxonomy from one place.
"""

from __future__ import annotations

from ..core.checkpoint import CheckpointError
from ..core.streaming import InvalidSampleError, PushError

__all__ = [
    "SupervisorError",
    "ConfigurationError",
    "QueueEmptyError",
    "TransientRoundError",
    "RoundTimeoutError",
    "RoundCrashError",
    "RetryBudgetExceededError",
    "RecoveryError",
    "QueueOverflowError",
    "IngestError",
    "EnvelopeValidationError",
    "SequenceConflictError",
    "FrontierStateError",
    "FleetError",
    "UnknownTenantError",
    "FleetManifestError",
    "CheckpointError",
    "PushError",
    "InvalidSampleError",
]


class SupervisorError(Exception):
    """Base class for every error raised by the streaming runtime."""


class ConfigurationError(SupervisorError, ValueError):
    """Invalid parameters handed to a runtime/ingest component.

    Covers both construction-time values (a negative retry budget) and
    call-time arguments (a sample block of the wrong shape).  Derives from
    :class:`ValueError` too: the runtime layers raised plain ``ValueError``
    before the taxonomy existed, and callers validating inputs with
    ``except ValueError`` must keep working (R14 migration).
    """


class QueueEmptyError(SupervisorError, IndexError):
    """Popped an empty ingest queue (also an :class:`IndexError`)."""


class TransientRoundError(SupervisorError):
    """A round failed in a retryable way.

    Attributes
    ----------
    round_index:
        Global index of the round that failed (detector numbering, i.e.
        warm-up rounds included).
    attempt:
        0-based attempt at which the failure happened.
    """

    def __init__(self, round_index: int, attempt: int, reason: str) -> None:
        super().__init__(f"round {round_index} (attempt {attempt}): {reason}")
        self.round_index = round_index
        self.attempt = attempt
        self.reason = reason


class RoundTimeoutError(TransientRoundError):
    """The watchdog deadline elapsed before the round completed."""

    def __init__(
        self, round_index: int, attempt: int, elapsed: float, deadline: float
    ) -> None:
        super().__init__(
            round_index,
            attempt,
            f"took {elapsed:.3f}s against a {deadline:.3f}s deadline",
        )
        self.elapsed = elapsed
        self.deadline = deadline


class RoundCrashError(TransientRoundError):
    """The round crashed mid-flight (process death / injected chaos)."""

    def __init__(self, round_index: int, attempt: int) -> None:
        super().__init__(round_index, attempt, "crashed mid-round")


class RetryBudgetExceededError(SupervisorError):
    """A round exhausted its retry budget without completing."""

    def __init__(self, round_index: int, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"round {round_index} failed {attempts} time(s); giving up: {last}"
        )
        self.round_index = round_index
        self.attempts = attempts
        self.last = last


class RecoveryError(SupervisorError):
    """Crash recovery could not reconstruct a consistent stream state."""


class QueueOverflowError(SupervisorError):
    """The bounded ingest queue overflowed under the ``"error"`` policy."""

    def __init__(self, capacity: int) -> None:
        super().__init__(
            f"ingest queue overflowed (capacity {capacity}); "
            "consumer is not keeping up"
        )
        self.capacity = capacity


class IngestError(SupervisorError):
    """Base class of the delivery-frontier rejection taxonomy."""


class EnvelopeValidationError(IngestError):
    """A :class:`~repro.ingest.SampleEnvelope` failed validation.

    Attributes
    ----------
    field:
        Name of the envelope field that failed (``"sensor"``, ``"seq"``,
        ``"timestamp"``, ``"value"``).
    reason:
        Human-readable description of the violation.
    """

    def __init__(self, field: str, reason: str) -> None:
        super().__init__(f"invalid envelope {field}: {reason}")
        self.field = field
        self.reason = reason


class SequenceConflictError(IngestError):
    """Two different sequence numbers claimed the same grid cell.

    Redelivery of the *same* ``(sensor, seq)`` is idempotent (deduped);
    two *different* sequence numbers landing on one ``(sensor, row)`` cell
    mean the producer's numbering or clock is broken, and silently keeping
    either value would corrupt the stream.
    """

    def __init__(self, sensor: int, row: int, held_seq: int, new_seq: int) -> None:
        super().__init__(
            f"sensor {sensor} row {row}: cell already holds seq {held_seq}, "
            f"seq {new_seq} maps to the same grid position; producer "
            "sequence numbering and timestamps disagree"
        )
        self.sensor = sensor
        self.row = row
        self.held_seq = held_seq
        self.new_seq = new_seq


class FrontierStateError(IngestError):
    """A checkpointed frontier state payload is inconsistent or foreign."""


class FleetError(SupervisorError):
    """Base class of the multi-tenant fleet runtime taxonomy."""


class UnknownTenantError(FleetError, KeyError):
    """A sample or envelope named a tenant the fleet does not own.

    Fleet membership is declared at construction (the shard router hashes
    a fixed tenant set); traffic for an undeclared tenant is a routing
    bug upstream, not a reason to silently create a pipeline.  Also an
    :class:`KeyError`, matching the mapping-lookup idiom it replaces.
    """

    def __init__(self, tenant: str) -> None:
        super().__init__(f"unknown tenant {tenant!r}; not in the fleet's tenant set")
        self.tenant = tenant

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class FleetManifestError(FleetError):
    """The fleet checkpoint manifest cannot be reconciled with the fleet.

    Raised when a resume finds a manifest whose tenant set, shard count,
    or per-tenant checkpoint lineage disagrees with the configured fleet:
    adopting it blindly would mix checkpoint lineages across fleets and
    break the per-tenant bit-identity contract.
    """
