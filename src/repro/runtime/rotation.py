"""Rotated, crash-safe checkpoint generations with fall-back recovery.

Layout — one directory per supervised stream::

    <dir>/ckpt-0000000400.npz    # StreamingCAD state (atomic, see
    <dir>/ckpt-0000000400.json   #   repro.core.checkpoint) + runtime sidecar
    <dir>/ckpt-0000000800.npz    # newer generation
    <dir>/ckpt-0000000800.json

The zero-padded number is the global round index at which the generation
was taken, so lexicographic order equals recency.  ``keep`` generations are
retained; older pairs are pruned after each successful write.

The sidecar carries everything the *supervisor* (as opposed to the
detector) accumulates — breaker states, ingest counters, emitted-round
count — so a restarted process resumes quarantine decisions and suppresses
already-delivered records.  Both files are written atomically (tmp +
fsync + ``os.replace``), and :meth:`CheckpointRotation.recover` scans
newest-to-oldest, *falling back past* any generation whose archive or
sidecar is corrupt instead of dying on it.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from ..core.streaming import StreamingCAD
from .errors import ConfigurationError

__all__ = ["CheckpointRotation", "Generation", "RecoveredStream"]

_SIDECAR_FORMAT = "repro-runtime-state"
_SIDECAR_VERSION = 1
_NAME_RE = re.compile(r"^ckpt-(\d{10})\.npz$")


@dataclass(frozen=True)
class Generation:
    """One on-disk checkpoint generation (archive + sidecar pair)."""

    round_index: int
    path: Path
    sidecar: Path


@dataclass(frozen=True)
class RecoveredStream:
    """Result of a successful recovery scan.

    ``skipped`` lists the newer generations that had to be passed over
    because their archive or sidecar was corrupt.
    """

    stream: StreamingCAD
    generation: Generation
    runtime_state: dict[str, Any]
    skipped: tuple[Path, ...]


class CheckpointRotation:
    """Write/prune/recover rotated checkpoint generations in a directory."""

    def __init__(self, directory: str | Path, keep: int = 3) -> None:
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    # ----------------------------------------------------------------- #
    # Writing
    # ----------------------------------------------------------------- #

    def write(
        self,
        stream: StreamingCAD,
        round_index: int,
        runtime_state: dict[str, Any],
    ) -> Generation:
        """Persist one generation atomically and prune old ones.

        ``runtime_state`` is the supervisor's own state payload; it is
        stamped with format/version/counters and written to the sidecar.
        """
        if round_index < 0:
            raise ConfigurationError(f"round_index must be >= 0, got {round_index}")
        path = self.directory / f"ckpt-{round_index:010d}.npz"
        sidecar = path.with_suffix(".json")
        save_checkpoint(stream, path)  # atomic tmp + fsync + os.replace
        payload = {
            "format": _SIDECAR_FORMAT,
            "version": _SIDECAR_VERSION,
            "round_index": round_index,
            "samples_seen": stream.samples_seen,
            "runtime": runtime_state,
        }
        self._write_sidecar(sidecar, payload)
        self.prune()
        return Generation(round_index, path, sidecar)

    @staticmethod
    def _write_sidecar(sidecar: Path, payload: dict[str, Any]) -> None:
        tmp = sidecar.with_name(sidecar.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, sidecar)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def prune(self) -> list[Generation]:
        """Delete all but the newest ``keep`` generations; return removals."""
        generations = self.generations()
        removed = []
        for generation in generations[self.keep :]:
            generation.path.unlink(missing_ok=True)
            generation.sidecar.unlink(missing_ok=True)
            removed.append(generation)
        return removed

    # ----------------------------------------------------------------- #
    # Scanning / recovery
    # ----------------------------------------------------------------- #

    def generations(self) -> list[Generation]:
        """On-disk generations, newest first.  Foreign files are ignored.

        The directory scan is explicitly sorted by name before the
        round-index sort: ``iterdir``/``os.listdir`` order is a filesystem
        artifact (hash order on some, insertion order on others), and
        recovery decisions must never depend on it.
        """
        found = []
        for entry in sorted(self.directory.iterdir()):
            match = _NAME_RE.match(entry.name)
            if match is None:
                continue
            found.append(
                Generation(int(match.group(1)), entry, entry.with_suffix(".json"))
            )
        found.sort(key=lambda g: g.round_index, reverse=True)
        return found

    def min_covered_samples(self) -> int:
        """Smallest ``samples_seen`` over the retained, readable generations.

        The supervisor keeps its replay buffer back to this sample count so
        that recovery can fall back to *any* retained generation and still
        replay forward.  0 when no generation is readable (the replay
        buffer must then cover the whole stream or recovery starts fresh).
        """
        counts = []
        for generation in self.generations():
            payload = self._read_sidecar(generation.sidecar)
            if payload is not None:
                counts.append(int(payload["samples_seen"]))
        return min(counts) if counts else 0

    def recover(self) -> RecoveredStream | None:
        """Restore the newest *valid* generation, falling back past corrupt ones.

        Returns None when the directory holds no recoverable generation at
        all (including the empty/fresh-start case).
        """
        skipped: list[Path] = []
        for generation in self.generations():
            payload = self._read_sidecar(generation.sidecar)
            if payload is None:
                skipped.append(generation.sidecar)
                continue
            try:
                stream = load_checkpoint(generation.path)
            except CheckpointError:
                # Torn or corrupt archive: fall back to the previous
                # generation — exactly why more than one is retained.
                skipped.append(generation.path)
                continue
            if stream.samples_seen != int(payload["samples_seen"]):
                skipped.append(generation.path)
                continue
            return RecoveredStream(
                stream=stream,
                generation=generation,
                runtime_state=dict(payload["runtime"]),
                skipped=tuple(skipped),
            )
        return None

    @staticmethod
    def _read_sidecar(sidecar: Path) -> dict[str, Any] | None:
        """Parse and validate a sidecar; None when missing or corrupt."""
        try:
            with open(sidecar, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != _SIDECAR_FORMAT:
            return None
        if payload.get("version") != _SIDECAR_VERSION:
            return None
        if "samples_seen" not in payload or "runtime" not in payload:
            return None
        return payload
