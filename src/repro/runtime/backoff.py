"""Deterministic seeded exponential backoff with jitter.

Classic exponential backoff draws its jitter from an ambient RNG, which
makes retry timing — and therefore everything downstream of the ingest
queue — irreproducible.  :class:`RetryPolicy` instead derives each delay
from ``(seed, round_index, attempt)`` alone: the same failure at the same
round always waits the same time, across processes and across resumes,
while different rounds still de-synchronise (the point of jitter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ConfigurationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff + jitter.

    Attributes
    ----------
    max_retries:
        Retries allowed per round *after* the first attempt; 0 disables
        retrying entirely.
    base_delay:
        Delay of attempt 0 in seconds (before jitter).
    multiplier:
        Exponential growth factor per attempt.
    max_delay:
        Cap on the un-jittered delay.
    jitter:
        Jitter amplitude as a fraction of the delay: the drawn delay lies
        in ``[delay, delay * (1 + jitter)]``.  0 disables jitter.
    seed:
        Root of the per-``(round, attempt)`` jitter derivation.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0.0:
            raise ConfigurationError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ConfigurationError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ConfigurationError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )
        if self.jitter < 0.0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")
        if self.seed < 0:
            # np.random.SeedSequence entropy must be non-negative.
            raise ConfigurationError(f"seed must be >= 0, got {self.seed}")

    def delay(self, round_index: int, attempt: int) -> float:
        """Backoff before retrying ``round_index`` after failed ``attempt``.

        Pure function of ``(seed, round_index, attempt)`` — no call-history
        dependence, so a resumed process retries on the same schedule the
        crashed one would have.
        """
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter <= 0.0 or raw <= 0.0:
            return raw
        rng = np.random.default_rng([self.seed, round_index, attempt])
        return raw * (1.0 + self.jitter * float(rng.random()))
