"""Per-sensor circuit breakers: quarantine flaky sensors deterministically.

A flapping sensor (intermittent NaN bursts, crashed collector, loose wire)
would otherwise drip partial data into every round it touches.  The
degraded-data machinery (PR 1) already handles *sustained* gaps — a sensor
whose window is mostly missing gets masked — but a sensor that flaps on
exactly the masking boundary makes round output flicker with the fault
phase.  The breaker adds hysteresis on top:

* ``CLOSED`` — healthy.  ``failure_threshold`` *consecutive* faulty rounds
  trip it to ``OPEN`` (a single clean round resets the count).
* ``OPEN`` — quarantined.  The supervisor overwrites the sensor's readings
  with NaN before they reach the detector, handing it to the degraded-data
  masking path (its RC freezes, it gains no TSG edges).  After
  ``open_rounds`` rounds the breaker moves to ``HALF_OPEN`` probation.
* ``HALF_OPEN`` — probation.  Raw readings pass through again.
  ``probation_rounds`` consecutive clean rounds re-close the breaker; any
  faulty round trips it straight back to ``OPEN``.

All transitions are driven by per-round fault verdicts computed from the
*raw* feed, so the breaker bank's evolution is a pure function of the input
stream — replaying the same samples after a crash reproduces the same
quarantine decisions, which is what keeps supervised recovery bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

import numpy as np

from .errors import ConfigurationError

__all__ = ["BreakerState", "BreakerPolicy", "SensorBreaker", "BreakerBank"]


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When to trip, how long to quarantine, how long to probe.

    ``failure_threshold = 0`` disables the breakers entirely (every sensor
    stays ``CLOSED`` forever) — the supervisor then never masks anything.
    """

    failure_threshold: int = 3
    open_rounds: int = 10
    probation_rounds: int = 5

    def __post_init__(self) -> None:
        if self.failure_threshold < 0:
            raise ConfigurationError(
                f"failure_threshold must be >= 0, got {self.failure_threshold}"
            )
        if self.open_rounds < 1:
            raise ConfigurationError(f"open_rounds must be >= 1, got {self.open_rounds}")
        if self.probation_rounds < 1:
            raise ConfigurationError(
                f"probation_rounds must be >= 1, got {self.probation_rounds}"
            )

    @property
    def enabled(self) -> bool:
        return self.failure_threshold > 0


class SensorBreaker:
    """State machine for one sensor (see module docstring for semantics)."""

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.rounds_open = 0
        self.clean_probation_rounds = 0
        self.times_opened = 0

    @property
    def quarantined(self) -> bool:
        """True while the sensor's readings must be masked out."""
        return self.state is BreakerState.OPEN

    def record(self, faulty: bool) -> BreakerState:
        """Advance one round with this round's fault verdict; return state."""
        if not self.policy.enabled:
            return self.state
        if self.state is BreakerState.CLOSED:
            if faulty:
                self.consecutive_failures += 1
                if self.consecutive_failures >= self.policy.failure_threshold:
                    self._open()
            else:
                self.consecutive_failures = 0
        elif self.state is BreakerState.OPEN:
            # Time-based cooldown; the sensor is masked, so the fault verdict
            # (computed from raw readings) is observed but does not extend
            # the quarantine — probation is what re-tests the sensor.
            self.rounds_open += 1
            if self.rounds_open >= self.policy.open_rounds:
                self.state = BreakerState.HALF_OPEN
                self.clean_probation_rounds = 0
        else:  # HALF_OPEN
            if faulty:
                self._open()
            else:
                self.clean_probation_rounds += 1
                if self.clean_probation_rounds >= self.policy.probation_rounds:
                    self.state = BreakerState.CLOSED
                    self.consecutive_failures = 0
        return self.state

    def _open(self) -> None:
        self.state = BreakerState.OPEN
        self.rounds_open = 0
        self.clean_probation_rounds = 0
        self.consecutive_failures = 0
        self.times_opened += 1

    def to_state(self) -> dict[str, Any]:
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "rounds_open": self.rounds_open,
            "clean_probation_rounds": self.clean_probation_rounds,
            "times_opened": self.times_opened,
        }

    @classmethod
    def from_state(cls, policy: BreakerPolicy, state: dict[str, Any]) -> "SensorBreaker":
        breaker = cls(policy)
        breaker.state = BreakerState(state["state"])
        breaker.consecutive_failures = int(state["consecutive_failures"])
        breaker.rounds_open = int(state["rounds_open"])
        breaker.clean_probation_rounds = int(state["clean_probation_rounds"])
        breaker.times_opened = int(state["times_opened"])
        return breaker


class BreakerBank:
    """The per-sensor breakers of one stream, with vectorised queries."""

    def __init__(self, n_sensors: int, policy: BreakerPolicy) -> None:
        if n_sensors < 1:
            raise ConfigurationError(f"n_sensors must be >= 1, got {n_sensors}")
        self.policy = policy
        self._breakers = [SensorBreaker(policy) for _ in range(n_sensors)]
        # True while every breaker is CLOSED with a zero failure streak —
        # the common case, where a clean round cannot change any state.
        self._idle = True

    def __len__(self) -> int:
        return len(self._breakers)

    def __getitem__(self, sensor: int) -> SensorBreaker:
        return self._breakers[sensor]

    def quarantine_mask(self) -> np.ndarray:
        """Boolean ``(n_sensors,)`` mask of currently quarantined sensors."""
        return np.array([b.quarantined for b in self._breakers], dtype=bool)

    def record_round(self, faulty: np.ndarray) -> bool:
        """Advance every breaker one round with per-sensor fault verdicts.

        Returns False when the round provably changed nothing (every
        breaker idle and no verdict faulty), so callers can skip
        recomputing derived state like the quarantine mask.
        """
        faulty = np.asarray(faulty, dtype=bool)
        if faulty.shape != (len(self._breakers),):
            raise ConfigurationError(
                f"expected {len(self._breakers)} fault verdicts, got {faulty.shape}"
            )
        if self._idle and not bool(faulty.any()):
            return False
        for breaker, verdict in zip(self._breakers, faulty):
            breaker.record(bool(verdict))
        self._idle = all(
            b.state is BreakerState.CLOSED and b.consecutive_failures == 0
            for b in self._breakers
        )
        return True

    def states(self) -> list[BreakerState]:
        return [b.state for b in self._breakers]

    def open_sensors(self) -> tuple[int, ...]:
        return tuple(
            i for i, b in enumerate(self._breakers) if b.state is BreakerState.OPEN
        )

    def half_open_sensors(self) -> tuple[int, ...]:
        return tuple(
            i for i, b in enumerate(self._breakers) if b.state is BreakerState.HALF_OPEN
        )

    def total_times_opened(self) -> int:
        return sum(b.times_opened for b in self._breakers)

    def to_state(self) -> list[dict[str, Any]]:
        return [b.to_state() for b in self._breakers]

    @classmethod
    def from_state(
        cls, policy: BreakerPolicy, state: list[dict[str, Any]]
    ) -> "BreakerBank":
        bank = cls(len(state), policy)
        bank._breakers = [SensorBreaker.from_state(policy, s) for s in state]
        bank._idle = all(
            b.state is BreakerState.CLOSED and b.consecutive_failures == 0
            for b in bank._breakers
        )
        return bank
