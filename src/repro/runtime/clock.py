"""Injectable time source for the supervisor.

The detector itself is clock-free (lint rule R4 bans wall-clock reads in
``repro.core``); only the *supervisor* needs to measure round durations and
sleep between retries.  It does both through a :class:`Clock` so that

* production uses :class:`MonotonicClock` (``time.monotonic`` +
  ``time.sleep``), and
* tests and the chaos/soak harness use :class:`VirtualClock`, where time
  advances only when code sleeps or calls :meth:`VirtualClock.advance` —
  making watchdog timeouts, backoff waits and ingest-queue backpressure
  fully deterministic and instantaneous to simulate.
"""

from __future__ import annotations

import time
from typing import Protocol

from .errors import ConfigurationError

__all__ = ["Clock", "MonotonicClock", "VirtualClock"]


class Clock(Protocol):
    """Minimal time interface the supervisor needs."""

    def monotonic(self) -> float:
        """Seconds from an arbitrary, monotonically increasing origin."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (virtually or in real time)."""
        ...


class MonotonicClock:
    """Real time: ``time.monotonic`` / ``time.sleep``."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0.0:
            time.sleep(seconds)


class VirtualClock:
    """Deterministic simulated time for tests and the soak harness.

    ``sleep`` advances the clock instead of blocking, and ``advance`` lets
    a harness model external elapsed time (e.g. an injected slow round).
    ``slept`` accumulates only the time spent in :meth:`sleep`, so tests
    can assert exactly how much backoff delay the supervisor paid.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.slept = 0.0

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ConfigurationError(f"cannot sleep a negative duration ({seconds})")
        self._now += seconds
        self.slept += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without counting it as supervisor sleep."""
        if seconds < 0.0:
            raise ConfigurationError(f"cannot advance time backwards ({seconds})")
        self._now += seconds
