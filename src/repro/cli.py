"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List the registered simulated datasets.
``generate --dataset NAME --out FILE``
    Materialise a dataset and save it as npz.
``detect --dataset NAME [--theta T] [--csv FILE]``
    Run CAD on a registered dataset (or a CSV exported with
    ``repro.datasets.export_csv``) and print the anomalies with root-cause
    rankings and DaE scores.  ``--allow-missing`` switches the detector into
    degraded-data mode (NaN readings tolerated, per-round data-quality
    report); ``--fault-rate R`` additionally corrupts the test feed with
    missing-at-random gaps to demo fault tolerance.
``compare --dataset NAME [--methods A,B,...]``
    Run several methods and print F1_PA / F1_DPA plus Ahead/Miss vs CAD.
``run --dataset NAME [--supervised] [...]``
    Stream a dataset sample-by-sample through ``StreamingCAD``.  With
    ``--supervised`` the stream runs under the :mod:`repro.runtime`
    supervisor — per-round watchdog (``--deadline``), bounded retries
    (``--max-retries``), sensor circuit breakers (``--quarantine-after``),
    rotated crash-safe checkpoints (``--checkpoint-every``,
    ``--checkpoint-dir``) — and ends with a health report
    (``--health-out`` writes it as JSON).  ``--disorder-horizon H`` (with
    ``--late-policy`` and ``--dedup/--no-dedup``) routes the feed through
    the :mod:`repro.ingest` frontier as timestamped envelopes, tolerating
    out-of-order, duplicate and late delivery.
``fleet run --dataset NAME --tenants N [...]``
    Stream a dataset through N independent tenant pipelines multiplexed
    over one shared worker pool (:mod:`repro.fleet`): deterministic shard
    routing (``--shards``), fair seed-deterministic scheduling
    (``--seed``, ``--quantum``), optional stage-A offload (``--jobs``)
    and a crash-safe fleet checkpoint manifest (``--manifest-dir``,
    ``--checkpoint-every``).  Ends with the cross-tenant anomaly feed and
    a fleet health rollup (``--health-out`` writes it as JSON).
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .baselines import METHOD_NAMES, CADDetector, make_detector
from .bench import probe_rc_level, tuned_cad_config
from .core import CADConfig, rank_root_causes
from .datasets import dataset_names, load_dataset, save_dataset
from .evaluation import ahead_miss, best_f1, best_predictions


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAD: early anomaly detection with correlation analysis (ICDE 2023 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list registered simulated datasets")

    generate = commands.add_parser("generate", help="materialise a dataset to npz")
    generate.add_argument("--dataset", required=True, choices=dataset_names())
    generate.add_argument("--out", required=True, help="output .npz path")

    detect = commands.add_parser("detect", help="run CAD on a dataset")
    detect.add_argument("--dataset", required=True, choices=dataset_names())
    detect.add_argument(
        "--theta",
        type=float,
        default=None,
        help="outlier threshold; default: probe the RC level and use 0.85x",
    )
    detect.add_argument(
        "--top-causes", type=int, default=5, help="root-cause sensors to print per anomaly"
    )
    detect.add_argument(
        "--allow-missing",
        action="store_true",
        help="degraded-data mode: tolerate NaN readings and report data quality",
    )
    detect.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="corrupt the test feed with this missing-at-random rate (implies --allow-missing)",
    )
    detect.add_argument(
        "--fault-seed", type=int, default=0, help="seed for the injected faults"
    )
    detect.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for offline detection (-1 = all CPUs); "
        "results are identical for any job count",
    )
    detect.add_argument(
        "--engine",
        choices=("fast", "delta", "reference"),
        default="fast",
        help="per-round pipeline: fast (incremental correlation), delta "
        "(fast plus round-over-round TSG maintenance), or reference "
        "(readable dict-based path); outputs are identical",
    )
    detect.add_argument(
        "--louvain-verify",
        type=int,
        default=0,
        help="delta engine: warm-start Louvain and verify against a cold "
        "run every V rounds; 0 (default) runs cold every round",
    )

    run = commands.add_parser(
        "run", help="stream a dataset through StreamingCAD, optionally supervised"
    )
    run.add_argument("--dataset", required=True, choices=dataset_names())
    run.add_argument(
        "--supervised",
        action="store_true",
        help="wrap the stream in the repro.runtime supervisor",
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="retry budget per round before giving up (supervised only)",
    )
    run.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-round watchdog deadline in seconds (supervised only)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=50,
        help="rounds between checkpoint generations; 0 disables (supervised only)",
    )
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for rotated checkpoints; resumes from it when non-empty",
    )
    run.add_argument(
        "--quarantine-after",
        type=int,
        default=3,
        help="consecutive faulty rounds before a sensor's breaker opens; "
        "0 disables quarantining (supervised only)",
    )
    run.add_argument(
        "--allow-missing",
        action="store_true",
        help="degraded-data mode: tolerate NaN readings",
    )
    run.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="corrupt the streamed feed with this missing-at-random rate "
        "(implies --allow-missing)",
    )
    run.add_argument(
        "--fault-seed", type=int, default=0, help="seed for the injected faults"
    )
    run.add_argument(
        "--health-out",
        default=None,
        help="write the final HealthSnapshot as JSON to this path (supervised only)",
    )
    run.add_argument(
        "--disorder-horizon",
        type=int,
        default=0,
        help="route the feed through the ingest frontier as timestamped "
        "envelopes, reordering within this many rows; 0 pushes rows directly",
    )
    run.add_argument(
        "--late-policy",
        choices=("drop", "nan_patch"),
        default="nan_patch",
        help="frontier handling of rows incomplete at flush time: nan_patch "
        "emits NaN cells into the degraded-data path (implies "
        "--allow-missing), drop skips the row",
    )
    run.add_argument(
        "--dedup",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="absorb redelivered (sensor, seq) envelopes idempotently",
    )
    run.add_argument(
        "--engine",
        choices=("fast", "delta", "reference"),
        default="fast",
        help="per-round pipeline: fast (incremental correlation), delta "
        "(fast plus round-over-round TSG maintenance), or reference "
        "(readable dict-based path); outputs are identical",
    )

    fleet = commands.add_parser(
        "fleet", help="multi-tenant fleet runtime (repro.fleet)"
    )
    fleet_commands = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_commands.add_parser(
        "run", help="stream a dataset through N tenant pipelines over one pool"
    )
    fleet_run.add_argument("--dataset", required=True, choices=dataset_names())
    fleet_run.add_argument(
        "--tenants",
        type=int,
        default=2,
        help="number of tenant pipelines (ids tenant-00, tenant-01, ...)",
    )
    fleet_run.add_argument(
        "--shards",
        type=int,
        default=8,
        help="width of the shard space tenants hash into",
    )
    fleet_run.add_argument(
        "--manifest-dir",
        default=None,
        help="directory for the fleet checkpoint manifest and per-tenant "
        "checkpoints; resumes from it when non-empty",
    )
    fleet_run.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="shared-pool workers for stage-A offload; 0 runs every round "
        "in-process (outputs are identical either way)",
    )
    fleet_run.add_argument(
        "--quantum",
        type=int,
        default=256,
        help="fairness quantum: max pending samples one tenant consumes "
        "per scheduler cycle",
    )
    fleet_run.add_argument(
        "--seed", type=int, default=0, help="seeds the per-cycle scheduling permutation"
    )
    fleet_run.add_argument(
        "--checkpoint-every",
        type=int,
        default=50,
        help="rounds between per-tenant checkpoint generations; 0 disables",
    )
    fleet_run.add_argument(
        "--engine",
        choices=("fast", "delta", "reference"),
        default="fast",
        help="per-round pipeline engine shared by all tenants",
    )
    fleet_run.add_argument(
        "--health-out",
        default=None,
        help="write the final FleetHealthSnapshot as JSON to this path",
    )

    compare = commands.add_parser("compare", help="compare methods on a dataset")
    compare.add_argument("--dataset", required=True, choices=dataset_names())
    compare.add_argument(
        "--methods",
        default="CAD,LOF,ECOD,IForest",
        help=f"comma-separated subset of: {', '.join(METHOD_NAMES)}",
    )
    compare.add_argument("--seed", type=int, default=0)
    return parser


def cmd_datasets() -> int:
    for name in dataset_names():
        data = None
        try:
            from .datasets import get_spec

            spec = get_spec(name)
            print(
                f"{name:12s}  {spec.n_sensors:5d} sensors  "
                f"history {spec.history_length:6d}  test {spec.test_length:6d}  "
                f"{spec.n_anomalies} anomalies"
            )
        finally:
            del data
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    save_dataset(dataset, args.out)
    print(f"wrote {args.dataset} to {args.out} "
          f"({dataset.n_sensors} sensors, {dataset.test.length} test points)")
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset)
    theta = args.theta
    if theta is None:
        theta = 0.85 * probe_rc_level(data)
        print(f"probed RC level -> theta = {theta:.3f}")
    if not 0.0 <= args.fault_rate < 1.0:
        raise SystemExit(f"--fault-rate must be in [0, 1), got {args.fault_rate}")
    allow_missing = args.allow_missing or args.fault_rate > 0.0
    config = CADConfig.suggest(
        data.test.length,
        data.n_sensors,
        k=data.recommended_k,
        theta=theta,
        allow_missing=allow_missing,
        n_jobs=args.jobs,
        engine=args.engine,
        louvain_verify=args.louvain_verify,
    )
    test = data.test
    if args.fault_rate > 0.0:
        from .datasets import FaultModel
        from .timeseries import MultivariateTimeSeries

        faults = FaultModel(missing_rate=args.fault_rate, seed=args.fault_seed)
        test = MultivariateTimeSeries(faults.apply(test.values), allow_missing=True)
        print(
            f"injected missing-at-random faults at rate {args.fault_rate:.3f} "
            f"(seed {args.fault_seed})"
        )
    detector = CADDetector(config)
    detector.fit(data.history)
    scores = detector.score(test)
    result = detector.last_result

    print(f"\n{result.n_anomalies} anomalies on {args.dataset}:")
    for anomaly in result.anomalies:
        causes = rank_root_causes(result, anomaly)[: args.top_causes]
        ranked = ", ".join(f"{c.sensor}({c.evidence:.1f})" for c in causes)
        print(f"  [{anomaly.start:6d}, {anomaly.stop:6d})  top causes: {ranked}")

    if allow_missing:
        from .bench import format_quality_report

        print()
        print(format_quality_report(result.rounds))

    print(f"\nF1_PA  = {best_f1(scores, data.labels, 'pa'):.3f}")
    print(f"F1_DPA = {best_f1(scores, data.labels, 'dpa'):.3f}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from .core import StreamingCAD
    from .runtime import BreakerPolicy, RetryPolicy, StreamSupervisor, SupervisorConfig

    if not 0.0 <= args.fault_rate < 1.0:
        raise SystemExit(f"--fault-rate must be in [0, 1), got {args.fault_rate}")
    if args.max_retries < 0:
        raise SystemExit(f"--max-retries must be >= 0, got {args.max_retries}")
    if args.quarantine_after < 0:
        raise SystemExit(f"--quarantine-after must be >= 0, got {args.quarantine_after}")
    if args.disorder_horizon < 0:
        raise SystemExit(
            f"--disorder-horizon must be >= 0, got {args.disorder_horizon}"
        )

    data = load_dataset(args.dataset)
    quarantining = args.supervised and args.quarantine_after > 0
    nan_patching = args.disorder_horizon > 0 and args.late_policy == "nan_patch"
    allow_missing = (
        args.allow_missing or args.fault_rate > 0.0 or quarantining or nan_patching
    )
    config = CADConfig.suggest(
        data.test.length,
        data.n_sensors,
        k=data.recommended_k,
        allow_missing=allow_missing,
        engine=args.engine,
    )
    test_values = data.test.values
    if args.fault_rate > 0.0:
        from .datasets import FaultModel

        faults = FaultModel(missing_rate=args.fault_rate, seed=args.fault_seed)
        test_values = faults.apply(test_values)
        print(
            f"injected missing-at-random faults at rate {args.fault_rate:.3f} "
            f"(seed {args.fault_seed})"
        )

    frontier = None
    if args.disorder_horizon > 0:
        from .ingest import FrontierConfig, IngestFrontier, envelopes_from_matrix

        frontier = IngestFrontier(
            FrontierConfig(
                n_sensors=data.n_sensors,
                disorder_horizon=args.disorder_horizon,
                late_policy=args.late_policy,
                dedup=args.dedup,
            )
        )
        envelopes = envelopes_from_matrix(test_values)

    if args.supervised:
        supervisor = StreamSupervisor(
            config,
            data.n_sensors,
            supervisor=SupervisorConfig(
                retry=RetryPolicy(max_retries=args.max_retries),
                breaker=BreakerPolicy(failure_threshold=args.quarantine_after),
                round_deadline=args.deadline,
                checkpoint_every=args.checkpoint_every,
            ),
            checkpoint_dir=args.checkpoint_dir,
            frontier=frontier,
        )
        # A supervisor recovered from --checkpoint-dir already carries its
        # warmed statistics; re-warming would advance the round counter
        # past the recovered state.
        if supervisor.stream.samples_seen == 0:
            supervisor.warm_up(data.history)
        if frontier is not None:
            # Envelopes are re-sent in full: (sensor, seq) dedup and late
            # accounting absorb the overlap with the recovered state.
            records = supervisor.ingest_many(envelopes)
            records.extend(supervisor.finish())
        else:
            # Raw rows carry no identity, so resume from the recovered
            # sample count instead of re-feeding duplicates as new data.
            records = supervisor.process_many(
                test_values[:, supervisor.stream.samples_seen :]
            )
        health = supervisor.health()
    else:
        stream = StreamingCAD(config, data.n_sensors)
        stream.warm_up(data.history)
        if frontier is not None:
            records = []
            for envelope in envelopes:
                frontier.push(envelope)
                while (row := frontier.pop_ready()) is not None:
                    record = stream.push(row)
                    if record is not None:
                        records.append(record)
            for row in frontier.drain():
                record = stream.push(row)
                if record is not None:
                    records.append(record)
        else:
            records = stream.push_many(test_values)
        health = None

    abnormal = sum(1 for record in records if record.abnormal)
    mode = "supervised" if args.supervised else "unsupervised"
    print(
        f"streamed {args.dataset} ({mode}): {len(records)} rounds, "
        f"{abnormal} abnormal"
    )
    if frontier is not None:
        stats = frontier.stats()
        print(
            f"frontier: accepted {stats.accepted} | reordered {stats.reordered} | "
            f"deduped {stats.deduped} | late {stats.late_dropped} | "
            f"nan-patched {stats.nan_patched} | rows dropped {stats.rows_dropped}"
        )
    if health is not None:
        status = "healthy" if health.healthy else "DEGRADED"
        print(
            f"health: {status} | retries {health.retries} | "
            f"slow {health.slow_rounds} | crashes {health.crashes_recovered} | "
            f"checkpoints {health.checkpoints_written} | "
            f"quarantined {list(health.open_breakers)} | "
            f"probation {list(health.half_open_breakers)} | "
            f"shed {health.samples_shed}"
        )
        if args.health_out is not None:
            with open(args.health_out, "w", encoding="utf-8") as handle:
                handle.write(health.to_json())
                handle.write("\n")
            print(f"wrote health snapshot to {args.health_out}")
    return 0


def cmd_fleet_run(args: argparse.Namespace) -> int:
    from .fleet import FleetConfig, FleetManager, TenantSpec, anomaly_feed
    from .runtime import SupervisorConfig

    if args.tenants < 1:
        raise SystemExit(f"--tenants must be >= 1, got {args.tenants}")
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.jobs < 0:
        raise SystemExit(f"--jobs must be >= 0, got {args.jobs}")
    if args.quantum < 1:
        raise SystemExit(f"--quantum must be >= 1, got {args.quantum}")
    if args.seed < 0:
        raise SystemExit(f"--seed must be >= 0, got {args.seed}")
    if args.checkpoint_every < 0:
        raise SystemExit(
            f"--checkpoint-every must be >= 0, got {args.checkpoint_every}"
        )

    data = load_dataset(args.dataset)
    config = CADConfig.suggest(
        data.test.length,
        data.n_sensors,
        k=data.recommended_k,
        allow_missing=True,
        engine=args.engine,
    )
    tenant_ids = [f"tenant-{i:02d}" for i in range(args.tenants)]
    supervisor_config = SupervisorConfig(checkpoint_every=args.checkpoint_every)
    manager = FleetManager(
        [
            TenantSpec(tenant, config, data.n_sensors, supervisor=supervisor_config)
            for tenant in tenant_ids
        ],
        fleet=FleetConfig(
            shards=args.shards,
            seed=args.seed,
            quantum=args.quantum,
            offload_jobs=args.jobs,
        ),
        manifest_dir=args.manifest_dir,
    )
    start = {
        tenant: manager.supervisor(tenant).stream.samples_seen
        for tenant in tenant_ids
    }
    # Warm up only tenants starting from scratch: a tenant recovered from
    # its checkpoint lineage already carries its warmed statistics, and
    # re-warming would advance the round counter past the recovered state.
    fresh = {tenant: data.history for tenant in tenant_ids if start[tenant] == 0}
    if fresh:
        manager.warm_up(fresh)

    test_values = data.test.values
    records = []
    for index in range(test_values.shape[1]):
        for tenant in tenant_ids:
            if index >= start[tenant]:
                manager.submit(tenant, test_values[:, index])
        records.extend(manager.pump())
    records.extend(manager.finish())

    health = manager.health()
    feed = anomaly_feed(records)
    print(
        f"fleet streamed {args.dataset} x{args.tenants}: "
        f"{health.rounds_completed} rounds over {args.shards} shards, "
        f"{len(feed)} abnormal"
    )
    for entry in feed:
        print(
            f"  {entry.tenant} round {entry.record.index} "
            f"[{entry.record.start}, {entry.record.stop}) "
            f"deviation {entry.record.deviation:.2f}"
        )
    status = "healthy" if health.healthy else "DEGRADED"
    print(
        f"health: {status} | cycles {health.cycles} | "
        f"offloaded {health.offloaded_rounds} | "
        f"fallbacks {health.stage_fallbacks} | "
        f"resyncs {health.cache_resyncs} | "
        f"retries {health.retries} | shed {health.samples_shed} | "
        f"checkpoints {health.checkpoints_written}"
    )
    if manager.manifest_path is not None:
        print(f"fleet manifest: {manager.manifest_path}")
    if args.health_out is not None:
        with open(args.health_out, "w", encoding="utf-8") as handle:
            handle.write(health.to_json())
            handle.write("\n")
        print(f"wrote fleet health snapshot to {args.health_out}")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    if args.fleet_command == "run":
        return cmd_fleet_run(args)
    raise AssertionError(f"unhandled fleet command {args.fleet_command!r}")


def cmd_compare(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset)
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    predictions = {}
    print(f"{'method':8s}  {'F1_PA':>6s}  {'F1_DPA':>6s}")
    for name in methods:
        if name == "CAD":
            detector = make_detector(name, cad_config=tuned_cad_config(data))
        else:
            detector = make_detector(name, seed=args.seed)
        detector.fit(data.history)
        scores = detector.score(data.test)
        predictions[name] = best_predictions(scores, data.labels, "dpa")
        print(f"{name:8s}  {100 * best_f1(scores, data.labels, 'pa'):6.1f}"
              f"  {100 * best_f1(scores, data.labels, 'dpa'):6.1f}")

    if "CAD" in predictions and len(predictions) > 1:
        print(f"\n{'CAD vs':8s}  {'Ahead':>6s}  {'Miss':>6s}")
        for name, other in predictions.items():
            if name == "CAD":
                continue
            relative = ahead_miss(predictions["CAD"], other, data.labels)
            print(f"{name:8s}  {100 * relative.ahead:6.1f}  {100 * relative.miss:6.1f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return cmd_datasets()
    if args.command == "generate":
        return cmd_generate(args)
    if args.command == "detect":
        return cmd_detect(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "fleet":
        return cmd_fleet(args)
    if args.command == "compare":
        return cmd_compare(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
