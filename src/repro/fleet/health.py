"""Cross-tenant rollups: fleet anomaly feed and fleet health snapshot.

Per-tenant outputs stay bit-identical to solo runs (that is the fleet's
core guarantee), so the rollup layer never *transforms* records — it only
*attributes* them.  :class:`FleetRecord` wraps one tenant's
:class:`~repro.core.result.RoundRecord` with its tenant id and shard;
:func:`anomaly_feed` merges the abnormal ones into a single
deterministic feed; :class:`FleetHealthSnapshot` aggregates every
tenant's :class:`~repro.runtime.health.HealthSnapshot` next to the
fleet-level scheduler counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from ..core.result import RoundRecord
from ..runtime.errors import UnknownTenantError
from ..runtime.health import HealthSnapshot

__all__ = ["FleetRecord", "anomaly_feed", "FleetHealthSnapshot"]


@dataclass(frozen=True)
class FleetRecord:
    """One tenant's round record with fleet attribution."""

    tenant: str
    shard: int
    record: RoundRecord

    @property
    def index(self) -> int:
        """Round index within the tenant's own stream."""
        return self.record.index

    @property
    def abnormal(self) -> bool:
        """Whether the tenant's round tripped the paper's deviation rule."""
        return self.record.abnormal

    def to_dict(self) -> dict[str, object]:
        """JSON-ready attribution row for the fleet anomaly feed."""
        return {
            "tenant": self.tenant,
            "shard": self.shard,
            "round": self.record.index,
            "start": self.record.start,
            "stop": self.record.stop,
            "n_variations": self.record.n_variations,
            "deviation": self.record.deviation,
            "abnormal": self.record.abnormal,
            "variations": sorted(self.record.variations),
            "outliers": sorted(self.record.outliers),
        }


def anomaly_feed(records: Iterable[FleetRecord]) -> list[FleetRecord]:
    """Merge per-tenant outputs into one deterministic anomaly feed.

    Keeps only abnormal rounds, ordered by ``(round index, tenant id)``
    — a stable interleaving that does not depend on scheduler visiting
    order, so the feed of a fleet run equals the merge of the solo runs.
    """
    abnormal = [fr for fr in records if fr.record.abnormal]
    abnormal.sort(key=lambda fr: (fr.record.index, fr.tenant))
    return abnormal


@dataclass(frozen=True)
class FleetHealthSnapshot:
    """Aggregated health of every tenant plus fleet scheduler counters.

    ``tenants`` holds the per-tenant snapshots (sorted by tenant id) with
    their shard assignment; the scalar fields are either fleet-level
    counters (cycles, offload bookkeeping) or sums over the tenants.
    """

    shards: int = 1
    cycles: int = 0
    offloaded_rounds: int = 0
    stage_fallbacks: int = 0
    cache_resyncs: int = 0
    pool_jobs: int = 0
    rounds_completed: int = 0
    samples_ingested: int = 0
    samples_shed: int = 0
    retries: int = 0
    slow_rounds: int = 0
    crashes_recovered: int = 0
    checkpoints_written: int = 0
    breaker_trips: int = 0
    degraded_rounds: int = 0
    samples_reordered: int = 0
    samples_deduped: int = 0
    samples_late_dropped: int = 0
    rows_dropped: int = 0
    tenants: tuple[tuple[str, int, HealthSnapshot], ...] = field(default=())

    @classmethod
    def aggregate(
        cls,
        per_tenant: "dict[str, tuple[int, HealthSnapshot]]",
        *,
        shards: int,
        cycles: int,
        offloaded_rounds: int,
        stage_fallbacks: int,
        cache_resyncs: int,
        pool_jobs: int,
    ) -> "FleetHealthSnapshot":
        """Roll ``{tenant: (shard, snapshot)}`` up into one fleet snapshot."""
        rows = tuple(
            (tenant, per_tenant[tenant][0], per_tenant[tenant][1])
            for tenant in sorted(per_tenant)
        )
        snaps = [snap for _, _, snap in rows]
        return cls(
            shards=shards,
            cycles=cycles,
            offloaded_rounds=offloaded_rounds,
            stage_fallbacks=stage_fallbacks,
            cache_resyncs=cache_resyncs,
            pool_jobs=pool_jobs,
            rounds_completed=sum(s.rounds_completed for s in snaps),
            samples_ingested=sum(s.samples_ingested for s in snaps),
            samples_shed=sum(s.samples_shed for s in snaps),
            retries=sum(s.retries for s in snaps),
            slow_rounds=sum(s.slow_rounds for s in snaps),
            crashes_recovered=sum(s.crashes_recovered for s in snaps),
            checkpoints_written=sum(s.checkpoints_written for s in snaps),
            breaker_trips=sum(s.breaker_trips for s in snaps),
            degraded_rounds=sum(s.degraded_rounds for s in snaps),
            samples_reordered=sum(s.samples_reordered for s in snaps),
            samples_deduped=sum(s.samples_deduped for s in snaps),
            samples_late_dropped=sum(s.samples_late_dropped for s in snaps),
            rows_dropped=sum(s.rows_dropped for s in snaps),
            tenants=rows,
        )

    @property
    def healthy(self) -> bool:
        """True when every tenant's snapshot reports healthy."""
        return all(snap.healthy for _, _, snap in self.tenants)

    def tenant_snapshot(self, tenant: str) -> HealthSnapshot:
        """The per-tenant snapshot (:class:`UnknownTenantError`, a
        ``KeyError``, for unknown tenants)."""
        for tid, _, snap in self.tenants:
            if tid == tenant:
                return snap
        raise UnknownTenantError(tenant)

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form (JSON-ready, nested per-tenant dicts)."""
        out: dict[str, object] = {
            "healthy": self.healthy,
            "shards": self.shards,
            "cycles": self.cycles,
            "offloaded_rounds": self.offloaded_rounds,
            "stage_fallbacks": self.stage_fallbacks,
            "cache_resyncs": self.cache_resyncs,
            "pool_jobs": self.pool_jobs,
            "rounds_completed": self.rounds_completed,
            "samples_ingested": self.samples_ingested,
            "samples_shed": self.samples_shed,
            "retries": self.retries,
            "slow_rounds": self.slow_rounds,
            "crashes_recovered": self.crashes_recovered,
            "checkpoints_written": self.checkpoints_written,
            "breaker_trips": self.breaker_trips,
            "degraded_rounds": self.degraded_rounds,
            "samples_reordered": self.samples_reordered,
            "samples_deduped": self.samples_deduped,
            "samples_late_dropped": self.samples_late_dropped,
            "rows_dropped": self.rows_dropped,
            "tenants": {
                tenant: {"shard": shard, **snap.to_dict()}
                for tenant, shard, snap in self.tenants
            },
        }
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """JSON form of :meth:`to_dict` (sorted keys)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
