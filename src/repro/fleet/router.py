"""Deterministic shard router for the multi-tenant fleet.

Tenants are mapped to shards by a *stable* hash of the tenant id —
``sha256``, not Python's ``hash()``, which is salted per process
(PYTHONHASHSEED) and would re-shuffle the fleet on every restart.  The
mapping is therefore a pure function of ``(tenant, shards)``: the same
tenant lands on the same shard across processes, restarts and hosts,
which is what lets the fleet manifest record shard assignments and
verify them on resume, and what gives each tenant a stable worker
affinity in the shared pool (the worker-side pipeline cache keys off
it — see :mod:`repro.core.parallel`).
"""

from __future__ import annotations

import hashlib
import re

from ..runtime.errors import ConfigurationError, UnknownTenantError

__all__ = ["TENANT_ID_RE", "stable_shard", "validate_tenant_id", "ShardRouter"]

#: Tenant ids double as checkpoint directory names and manifest keys, so
#: they are restricted to a filesystem- and JSON-safe alphabet.
TENANT_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_tenant_id(tenant: str) -> str:
    """Return ``tenant`` if it is a legal tenant id, else raise.

    Raises :class:`~repro.runtime.errors.ConfigurationError` — tenant ids
    become directory names under the fleet manifest, so the alphabet is
    restricted up front instead of failing deep inside checkpoint IO.
    """
    if not isinstance(tenant, str) or TENANT_ID_RE.match(tenant) is None:
        raise ConfigurationError(
            f"illegal tenant id {tenant!r}: need 1-64 chars of "
            "[A-Za-z0-9._-] starting with an alphanumeric (ids become "
            "manifest keys and checkpoint directory names)"
        )
    return tenant


def stable_shard(tenant: str, shards: int) -> int:
    """Shard index of ``tenant`` in a ``shards``-wide fleet.

    Stable across processes and hosts: the first 8 bytes of
    ``sha256(tenant)`` taken as a big-endian integer, mod ``shards``.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    digest = hashlib.sha256(tenant.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


class ShardRouter:
    """Routes tenant ids of a fixed fleet onto shards.

    The router is the fleet's membership authority: looking up a tenant
    that was never registered raises
    :class:`~repro.runtime.errors.UnknownTenantError` instead of silently
    hashing an arbitrary string onto a shard.
    """

    def __init__(self, tenants: "list[str] | tuple[str, ...]", shards: int) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self._shards = shards
        self._assignment: dict[str, int] = {}
        for tenant in tenants:
            validate_tenant_id(tenant)
            if tenant in self._assignment:
                raise ConfigurationError(f"duplicate tenant id {tenant!r}")
            self._assignment[tenant] = stable_shard(tenant, shards)

    @property
    def shards(self) -> int:
        """Width of the shard space."""
        return self._shards

    @property
    def tenants(self) -> tuple[str, ...]:
        """Registered tenant ids, sorted."""
        return tuple(sorted(self._assignment))

    def shard_of(self, tenant: str) -> int:
        """Shard index of a registered tenant."""
        try:
            return self._assignment[tenant]
        except KeyError:
            raise UnknownTenantError(tenant) from None

    def worker_of(self, tenant: str, jobs: int) -> int:
        """Worker index of a registered tenant in a ``jobs``-worker pool.

        Shards fold onto workers round-robin, so a tenant keeps the same
        worker for the life of a pool — the affinity the worker-side
        pipeline cache relies on.
        """
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        return self.shard_of(tenant) % jobs

    def assignment(self) -> dict[str, int]:
        """``{tenant: shard}`` snapshot (sorted keys, detached copy)."""
        return {tenant: self._assignment[tenant] for tenant in sorted(self._assignment)}
