"""Fair, seed-deterministic round ordering for the fleet scheduler.

Each :meth:`FleetManager.pump` call is one *cycle*: every tenant gets a
turn, the order within the cycle is a fresh permutation drawn from
``np.random.default_rng([seed, cycle])``, and each turn consumes at most
``quantum`` pending samples.  The permutation is a pure function of
``(seed, cycle, tenant set)`` — no host clock, no global RNG state — so
a resumed fleet replays the exact visiting order of the original run
(R9: scheduling must be clockless and replayable).

Permuting instead of rotating keeps the schedule *fair in expectation*
without being *phase-locked*: with a rotation, tenant ``i`` would always
run right after tenant ``i-1`` and systematic biases (e.g. a slow tenant
always warming the pool for the same successor) would persist for the
whole run.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..runtime.errors import ConfigurationError

__all__ = ["cycle_order"]


def cycle_order(tenants: Iterable[str], seed: int, cycle: int) -> tuple[str, ...]:
    """Visiting order of ``tenants`` for scheduler cycle ``cycle``.

    Deterministic: sorted tenant ids permuted by
    ``np.random.default_rng([seed, cycle])``.  ``seed`` and ``cycle``
    must be non-negative (they feed a ``SeedSequence``).
    """
    if seed < 0 or cycle < 0:
        raise ConfigurationError(
            f"seed and cycle must be non-negative, got seed={seed} cycle={cycle}"
        )
    ordered = sorted(tenants)
    rng = np.random.default_rng([seed, cycle])
    return tuple(ordered[i] for i in rng.permutation(len(ordered)))
