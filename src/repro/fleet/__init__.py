"""Multi-tenant fleet runtime for the CAD detector.

Runs N independent tenant pipelines — each a supervised
:class:`~repro.core.streaming.StreamingCAD` with its own config, breaker
state and checkpoint lineage — over one shared worker pool:

* :class:`ShardRouter` / :func:`stable_shard` — deterministic
  tenant→shard→worker routing (stable across restarts);
* :func:`cycle_order` — fair, seed-deterministic scheduling permutation;
* :class:`FleetManager` — ownership, scheduling, stage-A offload with
  worker-side pipeline caches, fleet checkpoint manifest (v4) and
  kill-anywhere resume;
* :class:`FleetRecord` / :func:`anomaly_feed` /
  :class:`FleetHealthSnapshot` — cross-tenant anomaly and health rollups.

Per-tenant outputs are bit-identical to solo runs; see DESIGN.md §12.
"""

from .health import FleetHealthSnapshot, FleetRecord, anomaly_feed
from .manager import MANIFEST_NAME, FleetConfig, FleetManager, TenantSpec
from .router import TENANT_ID_RE, ShardRouter, stable_shard, validate_tenant_id
from .scheduler import cycle_order

__all__ = [
    "FleetHealthSnapshot",
    "FleetRecord",
    "anomaly_feed",
    "MANIFEST_NAME",
    "FleetConfig",
    "FleetManager",
    "TenantSpec",
    "TENANT_ID_RE",
    "ShardRouter",
    "stable_shard",
    "validate_tenant_id",
    "cycle_order",
]
