"""Multi-tenant fleet manager: N supervised CAD pipelines, one pool.

:class:`FleetManager` owns one :class:`~repro.runtime.StreamSupervisor`
per tenant — each with its own :class:`~repro.core.config.CADConfig`,
breaker bank, checkpoint lineage and (optionally) ingest frontier — and
interleaves their rounds over the process-wide shared
:class:`~repro.core.parallel.WorkerPool`:

* **Routing** — envelopes carry a ``tenant`` id; a deterministic
  :class:`~repro.fleet.router.ShardRouter` maps tenants to shards and
  shards to pool workers (stable affinity).
* **Scheduling** — :meth:`pump` runs one fair cycle: tenants are visited
  in a seed-deterministic permutation (:func:`~repro.fleet.scheduler.cycle_order`),
  each consuming at most ``quantum`` pending samples.  A tenant's
  round-completing sample is *dispatched* to its affine worker (stage A
  offload) and the cycle moves on; results are collected and completed —
  through the full supervised envelope — at the end of the cycle.
* **State discipline** — workers cache one stage-A pipeline per tenant
  (keyed by a per-manager serial, so a recreated manager never trusts a
  previous manager's caches).  The parent's pipeline goes stale while
  rounds run remotely; worker state is shipped back exactly when a
  checkpoint needs it, and every sync point (finish, checkpoint_now,
  cache loss) restores the invariant before in-process work resumes.
* **Checkpointing** — with a ``manifest_dir``, each tenant rotates
  checkpoints under ``tenants/<tenant>/`` and the fleet writes an atomic
  v4 manifest naming every tenant's directory, shard and schedule
  position.  Kill the process anywhere; constructing a new manager over
  the same directory resumes every tenant at its exact round.

Per-tenant outputs are bit-identical to N solo runs by construction:
nothing a tenant's pipeline consumes depends on any other tenant —
scheduling only changes *when* a tenant's next sample is processed,
never *what* it sees.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from ..core.checkpoint import load_fleet_manifest, save_fleet_manifest
from ..core.config import CADConfig
from ..core.parallel import StaleWorkerCacheError, WorkerPool, get_worker_pool
from ..core.result import RoundRecord
from ..ingest.envelope import SampleEnvelope
from ..ingest.frontier import FrontierConfig, IngestFrontier
from ..runtime.chaos import ChaosModel
from ..runtime.clock import Clock
from ..runtime.errors import (
    CheckpointError,
    ConfigurationError,
    FleetManifestError,
    UnknownTenantError,
)
from ..runtime.supervisor import StreamSupervisor, SupervisorConfig
from ..timeseries.mts import MultivariateTimeSeries
from .health import FleetHealthSnapshot, FleetRecord
from .router import ShardRouter, validate_tenant_id
from .scheduler import cycle_order

__all__ = ["TenantSpec", "FleetConfig", "FleetManager", "MANIFEST_NAME"]

#: Manifest file name inside the fleet's manifest directory.
MANIFEST_NAME = "manifest.json"

#: Per-tenant checkpoint directories live under ``<manifest_dir>/tenants/``.
_TENANTS_DIRNAME = "tenants"

#: Worker-side pipeline caches are keyed ``"<manager serial>:<tenant>"``.
#: The serial is process-unique, so a *new* FleetManager over the same
#: tenants (e.g. an in-process kill/resume) misses the old cache entries
#: and re-ships state instead of trusting pipelines another manager
#: instance advanced.
_FLEET_SERIAL = itertools.count()


@dataclass(frozen=True)
class TenantSpec:
    """Static description of one tenant pipeline.

    ``frontier`` switches the tenant to envelope ingest (out-of-order
    delivery tolerated); without it the tenant consumes pre-aligned
    sample rows via :meth:`FleetManager.submit`.  ``chaos`` injects the
    tenant's own fault schedule (soak harness).
    """

    tenant: str
    config: CADConfig
    n_sensors: int
    supervisor: SupervisorConfig | None = None
    frontier: FrontierConfig | None = None
    chaos: ChaosModel | None = None

    def __post_init__(self) -> None:
        validate_tenant_id(self.tenant)
        if self.n_sensors < 1:
            raise ConfigurationError(
                f"tenant {self.tenant!r}: n_sensors must be >= 1, got {self.n_sensors}"
            )


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-level knobs (all deterministic).

    Attributes
    ----------
    shards:
        Width of the shard space tenants hash into.
    seed:
        Seeds the per-cycle scheduling permutation (non-negative).
    quantum:
        Fairness quantum — max pending samples one tenant consumes per
        scheduler cycle.
    offload_jobs:
        Workers of the shared pool used for stage-A offload; 0 keeps
        every round in-process (no pool dependency).
    """

    shards: int = 1
    seed: int = 0
    quantum: int = 256
    offload_jobs: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {self.seed}")
        if self.quantum < 1:
            raise ConfigurationError(f"quantum must be >= 1, got {self.quantum}")
        if self.offload_jobs < 0:
            raise ConfigurationError(
                f"offload_jobs must be >= 0, got {self.offload_jobs}"
            )


class _TenantRuntime:
    """Mutable per-tenant scheduler state."""

    __slots__ = ("spec", "shard", "supervisor", "cache_key", "remote_cached")

    def __init__(
        self,
        spec: TenantSpec,
        shard: int,
        supervisor: StreamSupervisor,
        cache_key: str,
    ) -> None:
        self.spec = spec
        self.shard = shard
        self.supervisor = supervisor
        self.cache_key = cache_key
        #: True while the affine worker's cached pipeline is known to
        #: equal this tenant's stream position (state need not be shipped).
        self.remote_cached = False


class _Dispatch:
    """One in-flight offloaded round (dispatch → collect within a cycle)."""

    __slots__ = ("rt", "raw", "window", "task_id", "want_state")

    def __init__(
        self,
        rt: _TenantRuntime,
        raw: np.ndarray,
        window: np.ndarray,
        task_id: int,
        want_state: bool,
    ) -> None:
        self.rt = rt
        self.raw = raw
        self.window = window
        self.task_id = task_id
        self.want_state = want_state


class FleetManager:
    """Owns and schedules a fleet of tenant pipelines (see module docs)."""

    def __init__(
        self,
        specs: Iterable[TenantSpec],
        *,
        fleet: FleetConfig | None = None,
        manifest_dir: str | Path | None = None,
        clock: Clock | None = None,
        resume: bool = True,
    ) -> None:
        self._fleet = fleet if fleet is not None else FleetConfig()
        spec_list = list(specs)
        if not spec_list:
            raise ConfigurationError("a fleet needs at least one tenant")
        self._router = ShardRouter([s.tenant for s in spec_list], self._fleet.shards)
        self._serial = next(_FLEET_SERIAL)
        self._manifest_dir = Path(manifest_dir) if manifest_dir is not None else None
        self._cycle = 0
        self._offloaded_rounds = 0
        self._stage_fallbacks = 0
        self._cache_resyncs = 0

        specs_by_id = {spec.tenant: spec for spec in spec_list}
        if resume:
            self._adopt_manifest(specs_by_id)

        self._runtimes: dict[str, _TenantRuntime] = {}
        for tenant in sorted(specs_by_id):
            spec = specs_by_id[tenant]
            shard = self._router.shard_of(tenant)
            checkpoint_dir = (
                self._manifest_dir / _TENANTS_DIRNAME / tenant
                if self._manifest_dir is not None
                else None
            )
            frontier = (
                IngestFrontier(spec.frontier) if spec.frontier is not None else None
            )
            supervisor = StreamSupervisor(
                spec.config,
                spec.n_sensors,
                supervisor=spec.supervisor,
                checkpoint_dir=checkpoint_dir,
                clock=clock,
                chaos=spec.chaos,
                frontier=frontier,
                resume=resume,
            )
            self._runtimes[tenant] = _TenantRuntime(
                spec, shard, supervisor, f"{self._serial}:{tenant}"
            )

        self._pool: WorkerPool | None = (
            get_worker_pool(self._fleet.offload_jobs)
            if self._fleet.offload_jobs > 0
            else None
        )
        self._write_manifest()

    # ----------------------------------------------------------------- #
    # Introspection
    # ----------------------------------------------------------------- #

    @property
    def tenants(self) -> tuple[str, ...]:
        """Tenant ids, sorted."""
        return self._router.tenants

    @property
    def router(self) -> ShardRouter:
        """The fleet's shard router."""
        return self._router

    @property
    def cycle(self) -> int:
        """Scheduler cycles completed (also the next cycle's index)."""
        return self._cycle

    @property
    def manifest_path(self) -> Path | None:
        """Path of the fleet manifest (None when running ephemeral)."""
        if self._manifest_dir is None:
            return None
        return self._manifest_dir / MANIFEST_NAME

    def supervisor(self, tenant: str) -> StreamSupervisor:
        """The tenant's supervisor (diagnostics / tests)."""
        return self._rt(tenant).supervisor

    # ----------------------------------------------------------------- #
    # Feeding
    # ----------------------------------------------------------------- #

    def warm_up(self, histories: Mapping[str, MultivariateTimeSeries]) -> None:
        """Seed per-tenant detector statistics from historical data."""
        for tenant in sorted(histories):
            self._rt(tenant).supervisor.warm_up(histories[tenant])

    def submit(self, tenant: str, sample: np.ndarray) -> bool:
        """Offer one aligned sample row to a tenant's bounded queue.

        Backpressure is per tenant: a slow tenant sheds from *its own*
        queue (per its shed policy) and cannot stall the others.  Returns
        False when the sample was shed.
        """
        rt = self._rt(tenant)
        if rt.supervisor.frontier is not None:
            raise ConfigurationError(
                f"tenant {tenant!r} ingests timestamped envelopes; "
                "route them via ingest(), not submit()"
            )
        return rt.supervisor.submit(sample)

    def ingest(self, envelope: SampleEnvelope) -> int:
        """Route one timestamped envelope to its tenant's frontier.

        The envelope's ``tenant`` field addresses the pipeline; the empty
        default routes to the fleet's single tenant (the solo-compatible
        mode) and raises :class:`~repro.runtime.errors.UnknownTenantError`
        in a multi-tenant fleet.  Returns the tenant's flushable-row count.
        """
        tenant = envelope.tenant
        if tenant == "":
            if len(self._runtimes) == 1:
                tenant = next(iter(self._runtimes))
            else:
                raise UnknownTenantError("")
        rt = self._rt(tenant)
        frontier = rt.supervisor.frontier
        if frontier is None:
            raise ConfigurationError(
                f"tenant {tenant!r} has no ingest frontier; feed aligned "
                "sample rows via submit()"
            )
        return frontier.push(envelope)

    def ingest_many(self, envelopes: Iterable[SampleEnvelope]) -> None:
        """Route a batch of envelopes (any delivery order, any tenants)."""
        for envelope in envelopes:
            self.ingest(envelope)

    # ----------------------------------------------------------------- #
    # Scheduling
    # ----------------------------------------------------------------- #

    def pump(self) -> list[FleetRecord]:
        """Run one fair scheduler cycle; return the new fleet records.

        Visits every tenant in this cycle's seed-deterministic order,
        consuming at most ``quantum`` pending samples each.  With offload
        enabled, a tenant's turn ends at its first round-completing
        sample: stage A is dispatched to the tenant's affine worker and
        the next tenant runs while it computes.  All dispatched rounds are
        collected and completed (through the full supervised envelope —
        chaos fates, watchdog, breakers, checkpoints) before pump returns,
        so records never outlive a cycle.
        """
        order = cycle_order(self._runtimes, self._fleet.seed, self._cycle)
        self._cycle += 1
        records: list[FleetRecord] = []
        wave: list[_Dispatch] = []
        for tenant in order:
            self._feed(self._runtimes[tenant], records, wave)
        for entry in wave:
            self._complete(entry, records)
        return records

    def drain(self) -> list[FleetRecord]:
        """Pump until no tenant has a pending sample or flushable row."""
        records: list[FleetRecord] = []
        while any(
            self._has_ready(self._runtimes[t]) for t in sorted(self._runtimes)
        ):
            records.extend(self.pump())
        return records

    def finish(self) -> list[FleetRecord]:
        """End of stream: drain queues, flush frontiers past watermarks.

        Rows a tenant's watermark was still holding back are processed
        in-process (worker caches are synced first, then invalidated —
        the workers never see these rows).  Writes the final manifest.
        """
        records = self.drain()
        for tenant in sorted(self._runtimes):
            rt = self._runtimes[tenant]
            supervisor = rt.supervisor
            if supervisor.frontier is None:
                continue
            rows = list(supervisor.frontier.drain())
            if not rows:
                continue
            self._sync_tenant(rt)
            for row in rows:
                self._extend(records, rt, supervisor.process(row))
            rt.remote_cached = False
        self._write_manifest()
        return records

    def checkpoint_now(self) -> None:
        """Checkpoint every tenant immediately and rewrite the manifest.

        Tenants whose live pipeline lags offloaded rounds sync worker
        state back first (a state fetch, not a replay), so the written
        generation is exactly the stream's current round.
        """
        for tenant in sorted(self._runtimes):
            rt = self._runtimes[tenant]
            self._sync_tenant(rt)
            rt.supervisor.checkpoint_now()
        self._write_manifest()

    def health(self) -> FleetHealthSnapshot:
        """Aggregate fleet health (see :class:`FleetHealthSnapshot`)."""
        per_tenant = {
            tenant: (rt.shard, rt.supervisor.health())
            for tenant, rt in sorted(self._runtimes.items())
        }
        return FleetHealthSnapshot.aggregate(
            per_tenant,
            shards=self._fleet.shards,
            cycles=self._cycle,
            offloaded_rounds=self._offloaded_rounds,
            stage_fallbacks=self._stage_fallbacks,
            cache_resyncs=self._cache_resyncs,
            pool_jobs=self._pool.jobs if self._pool is not None else 0,
        )

    # ----------------------------------------------------------------- #
    # Internals
    # ----------------------------------------------------------------- #

    def _rt(self, tenant: str) -> _TenantRuntime:
        try:
            return self._runtimes[tenant]
        except KeyError:
            raise UnknownTenantError(tenant) from None

    def _extend(
        self,
        records: list[FleetRecord],
        rt: _TenantRuntime,
        new: list[RoundRecord],
    ) -> None:
        for record in new:
            records.append(FleetRecord(rt.spec.tenant, rt.shard, record))

    def _has_ready(self, rt: _TenantRuntime) -> bool:
        supervisor = rt.supervisor
        if supervisor.pending_samples > 0:
            return True
        frontier = supervisor.frontier
        return frontier is not None and frontier.ready_count() > 0

    def _next_raw(self, rt: _TenantRuntime) -> np.ndarray | None:
        """Pop the tenant's next pending sample row (None when idle).

        Popped rows are processed before control leaves the tenant's
        turn — frontier rows advance the frontier the moment they pop,
        so a checkpoint between pop and process would lose them.
        """
        supervisor = rt.supervisor
        frontier = supervisor.frontier
        if frontier is not None:
            return frontier.pop_ready()
        if supervisor.pending_samples > 0:
            return supervisor.pop_pending()
        return None

    def _feed(
        self,
        rt: _TenantRuntime,
        records: list[FleetRecord],
        wave: list[_Dispatch],
    ) -> None:
        """One tenant's turn: up to ``quantum`` samples, one dispatch."""
        supervisor = rt.supervisor
        stream = supervisor.stream
        taken = 0
        while taken < self._fleet.quantum:
            raw = self._next_raw(rt)
            if raw is None:
                return
            taken += 1
            if (
                self._pool is not None
                and stream.samples_seen + 1 == stream.next_round_end
            ):
                wave.append(self._dispatch(rt, raw))
                return
            self._extend(records, rt, supervisor.process(raw))

    def _dispatch(self, rt: _TenantRuntime, raw: np.ndarray) -> _Dispatch:
        """Ship one round-completing sample's stage A to the affine worker."""
        assert self._pool is not None
        supervisor = rt.supervisor
        window = supervisor.stage_window(raw)
        state = None if rt.remote_cached else supervisor.pipeline_state()
        want_state = supervisor.checkpoint_due_next_round
        task_id = self._pool.submit_tenant_round(
            self._router.worker_of(rt.spec.tenant, self._pool.jobs),
            rt.spec.config,
            rt.spec.n_sensors,
            tenant=rt.cache_key,
            windows=[window],
            pipeline_state=state,
            return_state=want_state,
        )
        return _Dispatch(rt, raw, window, task_id, want_state)

    def _complete(self, entry: _Dispatch, records: list[FleetRecord]) -> None:
        """Collect one dispatched round and run it through stage B."""
        assert self._pool is not None
        rt = entry.rt
        supervisor = rt.supervisor
        try:
            try:
                stages, state_after = self._pool.collect(entry.task_id)
            except StaleWorkerCacheError:
                # The affine worker lost its cache (death/respawn or pool
                # turnover): re-seed it with fresh parent state and retry.
                self._cache_resyncs += 1
                rt.remote_cached = False
                if supervisor.pipeline_stale:
                    supervisor.resync_pipeline()
                task_id = self._pool.submit_tenant_round(
                    self._router.worker_of(rt.spec.tenant, self._pool.jobs),
                    rt.spec.config,
                    rt.spec.n_sensors,
                    tenant=rt.cache_key,
                    windows=[entry.window],
                    pipeline_state=supervisor.pipeline_state(),
                    return_state=entry.want_state,
                )
                stages, state_after = self._pool.collect(task_id)
            retries_before = supervisor.retries_performed
            self._extend(
                records, rt, supervisor.process_staged(entry.raw, stages[0], state_after)
            )
            if supervisor.retries_performed != retries_before:
                # A mid-round recovery recomputed the round in process.
                # Deterministic replay leaves the rebuilt local pipeline
                # equal to the worker's cache, so the cache stays valid.
                self._stage_fallbacks += 1
            rt.remote_cached = True
            self._offloaded_rounds += 1
        except BaseException:
            # The round did not complete; whether the worker advanced is
            # unknowable here, so stop trusting its cache.
            rt.remote_cached = False
            raise

    def _sync_tenant(self, rt: _TenantRuntime) -> None:
        """Make the tenant's live pipeline current before in-process work.

        Fast path: fetch the cached state back from the affine worker
        (an empty-window probe).  If the cache is gone, fall back to
        checkpoint-restore + replay (:meth:`StreamSupervisor.resync_pipeline`).
        """
        supervisor = rt.supervisor
        if not supervisor.pipeline_stale:
            return
        if self._pool is not None and rt.remote_cached:
            task_id = self._pool.submit_tenant_round(
                self._router.worker_of(rt.spec.tenant, self._pool.jobs),
                rt.spec.config,
                rt.spec.n_sensors,
                tenant=rt.cache_key,
                windows=[],
                return_state=True,
            )
            try:
                _, state = self._pool.collect(task_id)
            except StaleWorkerCacheError:
                state = None
            if state is not None:
                supervisor.adopt_pipeline_state(state)
                return
            self._cache_resyncs += 1
            rt.remote_cached = False
        supervisor.resync_pipeline()

    # ----------------------------------------------------------------- #
    # Manifest
    # ----------------------------------------------------------------- #

    def _adopt_manifest(self, specs_by_id: dict[str, TenantSpec]) -> None:
        """Validate and adopt an existing fleet manifest (resume path)."""
        if self._manifest_dir is None:
            return
        path = self._manifest_dir / MANIFEST_NAME
        if not path.exists():
            return
        try:
            manifest = load_fleet_manifest(path)
        except CheckpointError as exc:
            raise FleetManifestError(f"unreadable fleet manifest {path}: {exc}") from exc
        if manifest["shards"] != self._fleet.shards:
            raise FleetManifestError(
                f"manifest {path} was written for {manifest['shards']} shards, "
                f"fleet is configured with {self._fleet.shards}; resharding "
                "invalidates tenant/worker affinity"
            )
        for tenant in sorted(manifest["tenants"]):
            entry = manifest["tenants"][tenant]
            if tenant not in specs_by_id:
                raise FleetManifestError(
                    f"manifest {path} names tenant {tenant!r} which is not "
                    "configured; resuming would orphan its checkpoints"
                )
            if not isinstance(entry, dict):
                raise FleetManifestError(
                    f"manifest {path}: tenant {tenant!r} entry is not an object"
                )
            expected_shard = self._router.shard_of(tenant)
            if entry.get("shard") != expected_shard:
                raise FleetManifestError(
                    f"manifest {path}: tenant {tenant!r} recorded on shard "
                    f"{entry.get('shard')}, router assigns {expected_shard}"
                )
            n_sensors = specs_by_id[tenant].n_sensors
            if entry.get("n_sensors") != n_sensors:
                raise FleetManifestError(
                    f"manifest {path}: tenant {tenant!r} checkpoints hold "
                    f"{entry.get('n_sensors')}-sensor streams, spec says "
                    f"{n_sensors}"
                )
        cycle = manifest["cycle"]
        if cycle < 0:
            raise FleetManifestError(f"manifest {path}: negative cycle {cycle}")
        self._cycle = cycle

    def _write_manifest(self) -> None:
        if self._manifest_dir is None:
            return
        tenants = {
            tenant: {
                "shard": rt.shard,
                "directory": f"{_TENANTS_DIRNAME}/{tenant}",
                "n_sensors": rt.spec.n_sensors,
                "engine": rt.spec.config.engine,
            }
            for tenant, rt in sorted(self._runtimes.items())
        }
        save_fleet_manifest(
            self._manifest_dir / MANIFEST_NAME,
            shards=self._fleet.shards,
            seed=self._fleet.seed,
            cycle=self._cycle,
            tenants=tenants,
        )
