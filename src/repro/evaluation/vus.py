"""Volume Under the Surface (VUS-ROC / VUS-PR), after PA or DPA.

Paper Fig. 5 reports VUS-ROC and VUS-PR (Paparrizos et al., PVLDB 2022)
computed after applying PA and DPA.  VUS generalises AUC by sweeping a
*buffer length* ``l``: ground-truth borders are softened with a sqrt ramp of
width ``l`` so near-misses around anomaly boundaries earn partial credit,
an ROC (or PR) curve is traced per ``l``, and the volume is the average of
the per-buffer areas.

This is a documented simplification of the original (DESIGN.md §3): we use
symmetric sqrt ramps on both sides of each anomaly and trace the curves on a
regular threshold grid, applying the requested point adjustment to the
binarised predictions before the soft-weighted confusion is accumulated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .point_adjust import adjust_predictions
from .segments import label_segments


def soft_labels(labels: np.ndarray, buffer_length: int) -> np.ndarray:
    """Soften a 0/1 label vector with sqrt ramps of width ``buffer_length``.

    Points inside an anomaly keep weight 1.  A point at distance ``d``
    (1-based) from the nearest anomaly border, within the buffer, gets
    weight ``sqrt(1 - d / (buffer_length + 1))``.  Overlapping ramps take
    the maximum.
    """
    labels = (np.asarray(labels) != 0).astype(np.float64)
    if buffer_length <= 0:
        return labels
    soft = labels.copy()
    length = labels.size
    ramp = np.sqrt(1.0 - np.arange(1, buffer_length + 1) / (buffer_length + 1))
    for segment in label_segments(labels):
        # Ramp before the segment start.
        lo = max(0, segment.start - buffer_length)
        before = ramp[: segment.start - lo][::-1]
        np.maximum(soft[lo : segment.start], before, out=soft[lo : segment.start])
        # Ramp after the segment end.
        hi = min(length, segment.stop + buffer_length)
        after = ramp[: hi - segment.stop]
        np.maximum(soft[segment.stop : hi], after, out=soft[segment.stop : hi])
    return soft


@dataclass(frozen=True)
class VusResult:
    """VUS-ROC and VUS-PR plus the per-buffer areas they average."""

    vus_roc: float
    vus_pr: float
    buffer_lengths: tuple[int, ...]
    roc_aucs: tuple[float, ...]
    pr_aucs: tuple[float, ...]


def _curve_areas(
    scores: np.ndarray,
    labels: np.ndarray,
    soft: np.ndarray,
    mode: str,
    thresholds: np.ndarray,
) -> tuple[float, float]:
    """ROC and PR areas for one buffer's soft labels."""
    weight_pos = soft
    weight_neg = 1.0 - soft
    total_pos = weight_pos.sum()
    total_neg = weight_neg.sum()

    tprs, fprs, precisions = [], [], []
    for t in thresholds:
        predictions = (scores >= t).astype(np.int8)
        if mode != "none":
            predictions = adjust_predictions(predictions, labels, mode)
        mask = predictions != 0
        tp = weight_pos[mask].sum()
        fp = weight_neg[mask].sum()
        tprs.append(tp / total_pos if total_pos > 0 else 0.0)
        fprs.append(fp / total_neg if total_neg > 0 else 0.0)
        denominator = tp + fp
        precisions.append(tp / denominator if denominator > 0 else 1.0)

    fprs = np.array(fprs)
    tprs = np.array(tprs)
    precisions = np.array(precisions)

    # ROC: order by FPR and anchor at (0,0) and (1,1).
    order = np.argsort(fprs, kind="stable")
    roc_x = np.concatenate([[0.0], fprs[order], [1.0]])
    roc_y = np.concatenate([[0.0], tprs[order], [1.0]])
    roc_auc = float(np.trapezoid(roc_y, roc_x))

    # PR: average-precision-style step integration along descending
    # thresholds (strict -> permissive).  Predictions only grow as the
    # threshold falls, so recall is monotone non-decreasing on that path
    # even after PA/DPA adjustment, and duplicate-recall points contribute
    # nothing instead of corrupting the area.
    pr_auc = 0.0
    previous_recall = 0.0
    for index in range(len(thresholds) - 1, -1, -1):
        recall = tprs[index]
        if recall > previous_recall:
            pr_auc += (recall - previous_recall) * precisions[index]
            previous_recall = recall
    return roc_auc, float(pr_auc)


def vus(
    scores: np.ndarray,
    labels: np.ndarray,
    mode: str = "pa",
    max_buffer: int | None = None,
    n_buffers: int = 6,
    n_thresholds: int = 51,
) -> VusResult:
    """Compute VUS-ROC and VUS-PR of ``scores`` against ``labels``.

    Parameters
    ----------
    scores:
        Per-point anomaly scores in [0, 1].
    labels:
        0/1 ground truth.
    mode:
        Point adjustment applied to binarised predictions before the
        soft-weighted confusion: ``"pa"``, ``"dpa"`` or ``"none"``.
    max_buffer:
        Largest buffer length of the sweep.  Defaults to the median
        ground-truth anomaly length (a common choice in the VUS literature).
    n_buffers:
        Number of buffer lengths, linearly spaced in ``[0, max_buffer]``.
    n_thresholds:
        Number of grid thresholds tracing each curve.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ValueError("scores and labels must be 1-D and of equal length")
    if mode not in ("pa", "dpa", "none"):
        raise ValueError(f"mode must be 'pa', 'dpa' or 'none', got {mode!r}")

    segments = label_segments(labels)
    if max_buffer is None:
        if segments:
            max_buffer = int(np.median([s.length for s in segments]))
        else:
            max_buffer = 0
    buffers = sorted({int(b) for b in np.linspace(0, max_buffer, n_buffers)})
    thresholds = np.linspace(0.0, 1.0, n_thresholds)

    roc_aucs, pr_aucs = [], []
    for buffer_length in buffers:
        soft = soft_labels(labels, buffer_length)
        roc_auc, pr_auc = _curve_areas(scores, labels, soft, mode, thresholds)
        roc_aucs.append(roc_auc)
        pr_aucs.append(pr_auc)

    return VusResult(
        vus_roc=float(np.mean(roc_aucs)),
        vus_pr=float(np.mean(pr_aucs)),
        buffer_lengths=tuple(buffers),
        roc_aucs=tuple(roc_aucs),
        pr_aucs=tuple(pr_aucs),
    )
