"""Ground-truth helpers: contiguous anomaly segments of a label vector."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Segment:
    """One ground-truth anomaly event: half-open point span ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"invalid segment [{self.start}, {self.stop})")

    @property
    def length(self) -> int:
        return self.stop - self.start

    def contains(self, t: int) -> bool:
        return self.start <= t < self.stop

    def overlaps(self, start: int, stop: int) -> bool:
        """Whether this segment intersects the half-open span [start, stop)."""
        return self.start < stop and start < self.stop


def label_segments(labels: np.ndarray) -> list[Segment]:
    """Decompose a 0/1 label vector into its maximal runs of 1s."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D vector")
    binary = (labels != 0).astype(np.int8)
    if binary.size == 0:
        return []
    diff = np.diff(binary, prepend=0, append=0)
    starts = np.flatnonzero(diff == 1)
    stops = np.flatnonzero(diff == -1)
    return [Segment(int(a), int(b)) for a, b in zip(starts, stops)]


def segments_to_labels(segments: list[Segment], length: int) -> np.ndarray:
    """Inverse of :func:`label_segments`."""
    labels = np.zeros(length, dtype=np.int8)
    for segment in segments:
        if segment.stop > length:
            raise ValueError(f"segment {segment} exceeds length {length}")
        labels[segment.start : segment.stop] = 1
    return labels


def first_detection(segment: Segment, predictions: np.ndarray) -> int | None:
    """Index of the first predicted point inside ``segment`` (None if missed)."""
    window = np.asarray(predictions[segment.start : segment.stop])
    hits = np.flatnonzero(window != 0)
    if hits.size == 0:
        return None
    return segment.start + int(hits[0])
