"""Abnormal-sensor evaluation (paper Section VI-C, ``F1_sensor``).

The paper merges all abnormal sensors a method reports during one
ground-truth anomaly period and scores that set against the anomaly's
labelled sensors with an F1.  We report the macro average over anomalies
(each anomaly weighted equally) and expose the per-anomaly values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .confusion import set_confusion


@dataclass(frozen=True)
class SensorEvent:
    """Ground truth of one anomaly: its point span and affected sensors."""

    start: int
    stop: int
    sensors: frozenset[int]

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"invalid event span [{self.start}, {self.stop})")
        if not self.sensors:
            raise ValueError("a sensor event must name at least one sensor")


@dataclass(frozen=True)
class SensorScore:
    """F1 over sensor sets, macro-averaged across anomaly events."""

    f1: float
    per_event: tuple[float, ...]
    n_events: int


def f1_sensor(
    predicted_events: Sequence[tuple[int, int, frozenset[int]]],
    ground_truth: Sequence[SensorEvent],
    n_sensors: int,
) -> SensorScore:
    """Score predicted abnormal sensors against labelled sensor sets.

    Parameters
    ----------
    predicted_events:
        ``(start, stop, sensors)`` triples as produced by a detector (for
        CAD: each :class:`~repro.core.Anomaly`).  All predictions whose span
        overlaps a ground-truth event are merged into that event's predicted
        sensor set, following the paper's "merge all detected abnormal
        sensors into one ground truth period" rule.
    ground_truth:
        The labelled events.
    n_sensors:
        Total sensor count (for the confusion universe).
    """
    if not ground_truth:
        raise ValueError("ground truth must contain at least one event")
    per_event = []
    for event in ground_truth:
        merged: set[int] = set()
        for start, stop, sensors in predicted_events:
            if start < event.stop and event.start < stop:
                merged |= set(sensors)
        per_event.append(set_confusion(merged, event.sensors, n_sensors).f1)
    values = tuple(per_event)
    return SensorScore(
        f1=sum(values) / len(values),
        per_event=values,
        n_events=len(values),
    )
