"""Threshold grid search for score-based detectors.

The paper's protocol (Section VI-A): anomaly scores are normalised to
[0, 1] and the abnormal threshold is grid-searched from 0 to 1 with step
0.001, keeping the threshold that maximises the (PA- or DPA-adjusted) F1.

The search is fully vectorised.  Observe that after adjustment the confusion
counts at threshold ``t`` only depend on order statistics:

* **FP(t)** — points outside any ground-truth segment with score >= t;
* **PA:** a segment contributes its full length iff its *maximum* score
  >= t, so pooling ``max(segment)`` repeated ``len(segment)`` times gives
  TP(t) as a count of pooled values >= t;
* **DPA:** within a segment, the adjusted true positives at threshold ``t``
  are the points from the first index whose score >= t onward, i.e. the
  number of *prefix maxima* >= t — so pooling each segment's running prefix
  maximum gives TP(t) the same way.

Counting "values >= t" for a whole threshold grid is one ``searchsorted``
per pooled array, making the grid search O(T log T) overall.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .segments import label_segments


@dataclass(frozen=True)
class ThresholdSearchResult:
    """Best threshold and the metric curves over the grid."""

    best_threshold: float
    best_f1: float
    thresholds: np.ndarray
    f1: np.ndarray
    precision: np.ndarray
    recall: np.ndarray

    @property
    def best_index(self) -> int:
        return int(np.argmax(self.f1))


def _pooled_positives(scores: np.ndarray, labels: np.ndarray, mode: str) -> np.ndarray:
    """Pool per-segment statistics whose '>= t' count equals adjusted TP(t)."""
    pooled = []
    for segment in label_segments(labels):
        inside = scores[segment.start : segment.stop]
        if mode == "pa":
            pooled.append(np.full(inside.size, inside.max()))
        elif mode == "dpa":
            pooled.append(np.maximum.accumulate(inside))
        else:  # none
            pooled.append(inside)
    if not pooled:
        return np.empty(0)
    return np.concatenate(pooled)


def _count_at_least(sorted_values: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """For each threshold, how many sorted values are >= it."""
    return sorted_values.size - np.searchsorted(sorted_values, thresholds, side="left")


def threshold_curves(
    scores: np.ndarray,
    labels: np.ndarray,
    mode: str = "pa",
    step: float = 0.001,
) -> ThresholdSearchResult:
    """Adjusted precision/recall/F1 over a regular threshold grid.

    Parameters
    ----------
    scores:
        Per-point anomaly scores, expected in [0, 1] (the caller normalises).
    labels:
        0/1 ground truth.
    mode:
        Adjustment applied before computing F1: ``"pa"``, ``"dpa"`` or
        ``"none"``.
    step:
        Grid spacing; the paper uses 0.001.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ValueError("scores and labels must be 1-D and of equal length")
    if mode not in ("pa", "dpa", "none"):
        raise ValueError(f"mode must be 'pa', 'dpa' or 'none', got {mode!r}")
    if not 0 < step <= 1:
        raise ValueError(f"step must be in (0, 1], got {step}")

    thresholds = np.arange(0.0, 1.0 + step / 2, step)
    positive_mask = labels != 0
    n_positive = int(positive_mask.sum())

    outside = np.sort(scores[~positive_mask])
    pooled = np.sort(_pooled_positives(scores, labels, mode))

    fp = _count_at_least(outside, thresholds).astype(np.float64)
    tp = _count_at_least(pooled, thresholds).astype(np.float64)
    fn = n_positive - tp

    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(tp + fp > 0, tp / (tp + fp), 0.0)
        recall = np.where(tp + fn > 0, tp / (tp + fn), 0.0)
        f1 = np.where(
            precision + recall > 0,
            2 * precision * recall / (precision + recall),
            0.0,
        )

    best = int(np.argmax(f1))
    return ThresholdSearchResult(
        best_threshold=float(thresholds[best]),
        best_f1=float(f1[best]),
        thresholds=thresholds,
        f1=f1,
        precision=precision,
        recall=recall,
    )


def best_f1(
    scores: np.ndarray, labels: np.ndarray, mode: str = "pa", step: float = 0.001
) -> float:
    """The grid-searched adjusted F1 (the number the paper's tables report)."""
    return threshold_curves(scores, labels, mode=mode, step=step).best_f1


def best_predictions(
    scores: np.ndarray, labels: np.ndarray, mode: str = "pa", step: float = 0.001
) -> np.ndarray:
    """Binary predictions at the F1-optimal threshold (unadjusted)."""
    result = threshold_curves(scores, labels, mode=mode, step=step)
    return (np.asarray(scores) >= result.best_threshold).astype(np.int8)
