"""Delay-aware Evaluation (DaE) and companion metrics.

Implements the paper's Section V plus the Section VI protocol: PA and DPA
adjustment, grid-searched F1, the relative Ahead/Miss measures, VUS-ROC and
VUS-PR, sensor-level F1, and average ranking.
"""

from .confusion import Confusion, confusion, f1_score, set_confusion
from .point_adjust import (
    adjust_predictions,
    adjusted_confusion,
    detection_delays,
    f1_dpa,
    f1_pa,
    segment_recall,
)
from .range_metrics import RangeScore, range_f1, range_precision_recall
from .ranking import average_rank, rank_scores
from .relative import AheadMiss, ahead_miss, outperform_fractions
from .segments import Segment, first_detection, label_segments, segments_to_labels
from .sensors import SensorEvent, SensorScore, f1_sensor
from .thresholding import (
    ThresholdSearchResult,
    best_f1,
    best_predictions,
    threshold_curves,
)
from .vus import VusResult, soft_labels, vus

__all__ = [
    "Confusion",
    "confusion",
    "f1_score",
    "set_confusion",
    "adjust_predictions",
    "adjusted_confusion",
    "f1_pa",
    "f1_dpa",
    "detection_delays",
    "segment_recall",
    "Segment",
    "label_segments",
    "segments_to_labels",
    "first_detection",
    "AheadMiss",
    "ahead_miss",
    "outperform_fractions",
    "SensorEvent",
    "SensorScore",
    "f1_sensor",
    "ThresholdSearchResult",
    "threshold_curves",
    "best_f1",
    "best_predictions",
    "VusResult",
    "vus",
    "soft_labels",
    "rank_scores",
    "RangeScore",
    "range_precision_recall",
    "range_f1",
    "average_rank",
]
