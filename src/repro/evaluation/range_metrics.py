"""Range-based precision and recall (Tatbul et al., NeurIPS 2018).

A complement to PA/DPA: instead of adjusting points, it scores predicted
*ranges* against ground-truth *ranges* with three ingredients per range —
existence (was it found at all), overlap size, and an optional positional
bias.  We implement the standard flat-bias variant:

* ``recall_T(R)``  = alpha * existence(R) + (1 - alpha) * overlap(R)
* ``precision_T(P)`` = overlap fraction of the predicted range P
* totals are averaged over ranges.

``alpha`` trades existence reward against overlap reward (0.0 = pure
overlap, 1.0 = pure detection count).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .segments import Segment, label_segments


@dataclass(frozen=True)
class RangeScore:
    """Range-based precision/recall/F1 of a binary prediction."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _overlap_fraction(segment: Segment, others: list[Segment]) -> float:
    """Fraction of ``segment`` covered by the union of ``others``."""
    covered = 0
    for other in others:
        lo = max(segment.start, other.start)
        hi = min(segment.stop, other.stop)
        if hi > lo:
            covered += hi - lo
    return covered / segment.length


def range_precision_recall(
    predictions: np.ndarray, labels: np.ndarray, alpha: float = 0.5
) -> RangeScore:
    """Range-based precision and recall of a 0/1 prediction vector.

    Parameters
    ----------
    predictions, labels:
        Binary vectors of equal length.
    alpha:
        Existence-reward weight in the recall term (0 <= alpha <= 1).
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape or predictions.ndim != 1:
        raise ValueError("predictions and labels must be 1-D and of equal length")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")

    real = label_segments(labels)
    predicted = label_segments(predictions)

    if not real:
        recall = 0.0
    else:
        per_real = []
        for segment in real:
            overlap = _overlap_fraction(segment, predicted)
            existence = 1.0 if overlap > 0 else 0.0
            per_real.append(alpha * existence + (1 - alpha) * overlap)
        recall = float(np.mean(per_real))

    if not predicted:
        precision = 0.0
    else:
        precision = float(
            np.mean([_overlap_fraction(segment, real) for segment in predicted])
        )

    return RangeScore(precision=precision, recall=recall)


def range_f1(predictions: np.ndarray, labels: np.ndarray, alpha: float = 0.5) -> float:
    """Convenience wrapper returning the range-based F1."""
    return range_precision_recall(predictions, labels, alpha).f1
