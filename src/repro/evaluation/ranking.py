"""Average-rank aggregation across datasets (Table III's "Rank" column)."""

from __future__ import annotations

import numpy as np

from ..core.numeric import float_eq


def rank_scores(scores: dict[str, float], higher_is_better: bool = True) -> dict[str, float]:
    """Competition ranks (1 = best) with ties sharing the average rank."""
    if not scores:
        raise ValueError("need at least one score to rank")
    names = list(scores)
    values = np.array([scores[name] for name in names], dtype=np.float64)
    order = -values if higher_is_better else values

    ranks = np.empty(len(names), dtype=np.float64)
    sorted_idx = np.argsort(order, kind="stable")
    position = 0
    while position < len(names):
        tie_end = position
        # Tolerance tie detection: scores an ulp apart (fast vs reference
        # engine, summation order) must share a rank, not flip it (R2).
        while tie_end + 1 < len(names) and float_eq(
            order[sorted_idx[tie_end + 1]], order[sorted_idx[position]]
        ):
            tie_end += 1
        average = (position + tie_end) / 2 + 1
        for j in range(position, tie_end + 1):
            ranks[sorted_idx[j]] = average
        position = tie_end + 1
    return dict(zip(names, ranks.tolist()))


def average_rank(
    per_metric_scores: list[dict[str, float]], higher_is_better: bool = True
) -> dict[str, float]:
    """Average each method's rank over several metric/dataset columns.

    ``per_metric_scores`` is one ``{method: score}`` dict per column; all
    columns must cover the same methods.  This is how Table III's final
    "Rank" aggregates F1_PA and F1_DPA over the four datasets.
    """
    if not per_metric_scores:
        raise ValueError("need at least one column of scores")
    methods = set(per_metric_scores[0])
    for column in per_metric_scores[1:]:
        if set(column) != methods:
            raise ValueError("all columns must score the same methods")
    # sorted(): pin the result's key order — iterating the set here made the
    # returned dict's order vary run to run (R1).
    totals = {method: 0.0 for method in sorted(methods)}
    for column in per_metric_scores:
        for method, rank in rank_scores(column, higher_is_better).items():
            totals[method] += rank
    return {method: total / len(per_metric_scores) for method, total in totals.items()}
