"""Point-level confusion counts and precision / recall / F1."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Confusion:
    """True/false positive/negative counts of a binary prediction."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.fn + self.tn
        return (self.tp + self.tn) / total if total else 0.0


def confusion(predictions: np.ndarray, labels: np.ndarray) -> Confusion:
    """Confusion counts of 0/1 ``predictions`` against 0/1 ``labels``."""
    predictions = np.asarray(predictions) != 0
    labels = np.asarray(labels) != 0
    if predictions.shape != labels.shape or predictions.ndim != 1:
        raise ValueError("predictions and labels must be 1-D and of equal length")
    tp = int(np.sum(predictions & labels))
    fp = int(np.sum(predictions & ~labels))
    fn = int(np.sum(~predictions & labels))
    tn = int(np.sum(~predictions & ~labels))
    return Confusion(tp=tp, fp=fp, fn=fn, tn=tn)


def f1_score(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Plain point-wise F1 (no adjustment)."""
    return confusion(predictions, labels).f1


def set_confusion(predicted: frozenset[int] | set[int], actual: frozenset[int] | set[int],
                  universe_size: int) -> Confusion:
    """Confusion counts over a finite index set (used for sensor-level F1)."""
    predicted = set(predicted)
    actual = set(actual)
    tp = len(predicted & actual)
    fp = len(predicted - actual)
    fn = len(actual - predicted)
    tn = universe_size - tp - fp - fn
    if tn < 0:
        raise ValueError("universe_size smaller than the union of the sets")
    return Confusion(tp=tp, fp=fp, fn=fn, tn=tn)
