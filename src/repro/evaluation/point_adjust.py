"""Point Adjustment (PA) and Delay-Point Adjustment (DPA).

PA (paper Section V): once any point of a ground-truth anomaly is predicted,
*every* point of that anomaly counts as detected.  DPA, the paper's stricter
delay-aware variant, only adjusts the false negatives *after* the first true
positive — points of the anomaly before the first detection stay missed, so
late detections are penalised.  For every prediction, ``F1_DPA <= F1_PA``.
"""

from __future__ import annotations

import numpy as np

from .confusion import Confusion, confusion
from .segments import Segment, first_detection, label_segments


def adjust_predictions(
    predictions: np.ndarray, labels: np.ndarray, mode: str = "pa"
) -> np.ndarray:
    """Return the adjusted copy of ``predictions`` under PA or DPA.

    Parameters
    ----------
    predictions, labels:
        0/1 vectors of equal length.
    mode:
        ``"pa"`` adjusts whole detected segments; ``"dpa"`` adjusts only from
        the first true positive of each segment onward; ``"none"`` returns an
        unadjusted copy (convenience for uniform call sites).
    """
    if mode not in ("pa", "dpa", "none"):
        raise ValueError(f"mode must be 'pa', 'dpa' or 'none', got {mode!r}")
    predictions = (np.asarray(predictions) != 0).astype(np.int8)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have equal length")
    if mode == "none":
        return predictions

    adjusted = predictions.copy()
    for segment in label_segments(labels):
        first = first_detection(segment, predictions)
        if first is None:
            continue
        start = segment.start if mode == "pa" else first
        adjusted[start : segment.stop] = 1
    return adjusted


def adjusted_confusion(
    predictions: np.ndarray, labels: np.ndarray, mode: str = "pa"
) -> Confusion:
    """Confusion counts after PA/DPA adjustment."""
    return confusion(adjust_predictions(predictions, labels, mode), labels)


def f1_pa(predictions: np.ndarray, labels: np.ndarray) -> float:
    """F1 after Point Adjustment."""
    return adjusted_confusion(predictions, labels, "pa").f1


def f1_dpa(predictions: np.ndarray, labels: np.ndarray) -> float:
    """F1 after Delay-Point Adjustment."""
    return adjusted_confusion(predictions, labels, "dpa").f1


def detection_delays(
    predictions: np.ndarray, labels: np.ndarray
) -> list[int | None]:
    """Per ground-truth anomaly: points between onset and first detection.

    ``None`` marks a missed anomaly; 0 means detected at its very first
    point.  This is the quantity DPA penalises and the case study (paper
    Fig. 7) reports.
    """
    predictions = np.asarray(predictions)
    delays: list[int | None] = []
    for segment in label_segments(np.asarray(labels)):
        first = first_detection(segment, predictions)
        delays.append(None if first is None else first - segment.start)
    return delays


def segment_recall(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of ground-truth anomalies with at least one detected point."""
    segments = label_segments(np.asarray(labels))
    if not segments:
        return 0.0
    detected = sum(
        1 for s in segments if first_detection(s, np.asarray(predictions)) is not None
    )
    return detected / len(segments)
