"""The relative part of the Delay-aware Evaluation scheme: Ahead and Miss.

Paper Section V.  Given binary predictions of two methods M1 and M2 over the
same ground truth with ``I`` anomalies:

* ``I_d``      — anomalies M1 detects (at least one predicted point inside);
* ``I_ahead``  — anomalies M1 detects *ahead of* M2 (strictly earlier first
  true positive; detecting an anomaly M2 misses entirely also counts);
* ``I_miss``   — anomalies M1 misses but M2 detects;
* ``Ahead = I_ahead / I_d`` (0 when M1 detects nothing);
* ``Miss  = I_miss / (I - I_d)``, defined as 0 when M1 detects everything.

The ideal outcome for M1 is ``Ahead = 1`` and ``Miss = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .segments import first_detection, label_segments


@dataclass(frozen=True)
class AheadMiss:
    """Ahead/Miss of method M1 relative to M2, plus the raw counts."""

    ahead: float
    miss: float
    n_anomalies: int
    n_detected: int
    n_ahead: int
    n_missed_but_covered: int


def ahead_miss(
    predictions_m1: np.ndarray,
    predictions_m2: np.ndarray,
    labels: np.ndarray,
) -> AheadMiss:
    """Compute Ahead and Miss of M1 against M2 (paper Section V)."""
    predictions_m1 = np.asarray(predictions_m1)
    predictions_m2 = np.asarray(predictions_m2)
    labels = np.asarray(labels)
    if not predictions_m1.shape == predictions_m2.shape == labels.shape:
        raise ValueError("both predictions and labels must have equal length")

    segments = label_segments(labels)
    total = len(segments)
    detected = 0
    n_ahead = 0
    n_miss = 0
    for segment in segments:
        first_1 = first_detection(segment, predictions_m1)
        first_2 = first_detection(segment, predictions_m2)
        if first_1 is not None:
            detected += 1
            if first_2 is None or first_1 < first_2:
                n_ahead += 1
        elif first_2 is not None:
            n_miss += 1

    ahead = n_ahead / detected if detected else 0.0
    remaining = total - detected
    miss = n_miss / remaining if remaining else 0.0
    return AheadMiss(
        ahead=ahead,
        miss=miss,
        n_anomalies=total,
        n_detected=detected,
        n_ahead=n_ahead,
        n_missed_but_covered=n_miss,
    )


def outperform_fractions(
    pairs: list[AheadMiss], ratios: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Counts backing the paper's Figure 4.

    For each ratio ``q`` in ``ratios``, count how many comparisons in
    ``pairs`` achieve ``Ahead > q`` and how many achieve ``Miss < q``.
    Returns ``(ahead_counts, miss_counts)`` arrays aligned with ``ratios``.
    """
    ratios = np.asarray(ratios, dtype=np.float64)
    aheads = np.array([p.ahead for p in pairs])
    misses = np.array([p.miss for p in pairs])
    ahead_counts = np.array([(aheads > q).sum() for q in ratios])
    miss_counts = np.array([(misses < q).sum() for q in ratios])
    return ahead_counts, miss_counts
