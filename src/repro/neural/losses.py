"""Losses for the numpy neural substrate."""

from __future__ import annotations

import numpy as np


def mse(prediction: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient with respect to ``prediction``.

    The mean runs over every element of the batch, so the gradient is
    ``2 (prediction - target) / size``.
    """
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: prediction {prediction.shape} vs target {target.shape}"
        )
    diff = prediction - target
    loss = float(np.mean(diff * diff))
    grad = 2.0 * diff / diff.size
    return loss, grad


def per_row_squared_error(prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Mean squared error per batch row (anomaly score per sample)."""
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: prediction {prediction.shape} vs target {target.shape}"
        )
    diff = prediction - target
    return np.mean(diff * diff, axis=1)
