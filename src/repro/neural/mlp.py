"""Multi-layer perceptron built from the layer substrate."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .layers import Dense, Layer, make_activation


class MLP(Layer):
    """Sequential dense network.

    Parameters
    ----------
    sizes:
        Layer widths including input and output, e.g. ``[64, 32, 8]``.
    rng:
        Generator used to initialise every layer (reproducibility).
    activation:
        Hidden activation name; applied between all consecutive dense
        layers.
    output_activation:
        Optional activation after the last dense layer (e.g. ``"sigmoid"``
        for decoders reconstructing min-max-scaled inputs).
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        activation: str = "relu",
        output_activation: str | None = None,
    ):
        sizes = list(sizes)
        if len(sizes) < 2:
            raise ValueError("an MLP needs at least input and output sizes")
        self.layers: list[Layer] = []
        for i in range(len(sizes) - 1):
            self.layers.append(Dense(sizes[i], sizes[i + 1], rng))
            if i < len(sizes) - 2:
                self.layers.append(make_activation(activation))
        if output_activation is not None:
            self.layers.append(make_activation(output_activation))
        self.sizes = sizes

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients()]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
