"""Optimisers for the numpy neural substrate."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Updates parameters in place from their accumulated gradients."""

    def __init__(self, parameters: list[np.ndarray], gradients: list[np.ndarray]):
        if len(parameters) != len(gradients):
            raise ValueError("parameters and gradients must pair up")
        for p, g in zip(parameters, gradients):
            if p.shape != g.shape:
                raise ValueError(f"shape mismatch {p.shape} vs {g.shape}")
        self._parameters = parameters
        self._gradients = gradients

    def zero_grad(self) -> None:
        for grad in self._gradients:
            grad[...] = 0.0

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        gradients: list[np.ndarray],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ):
        super().__init__(parameters, gradients)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in parameters]

    def step(self) -> None:
        for p, g, v in zip(self._parameters, self._gradients, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        gradients: list[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(parameters, gradients)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self._parameters, self._gradients, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            p -= self.lr * (m / correction1) / (np.sqrt(v / correction2) + self.eps)
