"""Mini-batch iteration and a generic reconstruction trainer."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from .losses import mse
from .mlp import MLP
from .optim import Adam


def iterate_minibatches(
    data: np.ndarray, batch_size: int, rng: np.random.Generator, shuffle: bool = True
) -> Iterator[np.ndarray]:
    """Yield row batches of ``data`` (last batch may be smaller)."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    indices = np.arange(data.shape[0])
    if shuffle:
        rng.shuffle(indices)
    for start in range(0, indices.size, batch_size):
        yield data[indices[start : start + batch_size]]


def train_reconstruction(
    model: MLP,
    data: np.ndarray,
    rng: np.random.Generator,
    epochs: int = 30,
    batch_size: int = 64,
    lr: float = 1e-3,
    callback: Callable[[int, float], None] | None = None,
) -> list[float]:
    """Train ``model`` to reconstruct its input with MSE + Adam.

    Returns the per-epoch average losses.  ``callback(epoch, loss)`` can be
    used for progress reporting or early stopping by raising StopIteration.
    """
    if data.ndim != 2:
        raise ValueError(f"data must be (samples, features), got {data.shape}")
    optimizer = Adam(model.parameters(), model.gradients(), lr=lr)
    history = []
    for epoch in range(epochs):
        losses = []
        for batch in iterate_minibatches(data, batch_size, rng):
            optimizer.zero_grad()
            output = model.forward(batch)
            loss, grad = mse(output, batch)
            model.backward(grad)
            optimizer.step()
            losses.append(loss)
        epoch_loss = float(np.mean(losses))
        history.append(epoch_loss)
        if callback is not None:
            try:
                callback(epoch, epoch_loss)
            except StopIteration:
                break
    return history
