"""Dense layers and activations with manual backpropagation.

The offline environment has no deep-learning framework, so the USAD and
RCoders baselines run on this small numpy substrate.  Layers cache their
forward inputs and expose ``backward`` returning the gradient with respect
to the input while accumulating parameter gradients.
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Interface: forward/backward plus (possibly empty) parameter lists."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[np.ndarray]:
        return []

    def gradients(self) -> list[np.ndarray]:
        return []


class Dense(Layer):
    """Fully connected layer ``y = x W + b`` on row-major batches.

    Weights use Glorot-uniform initialisation from the provided RNG so runs
    are reproducible.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        if in_features < 1 or out_features < 1:
            raise ValueError("layer dimensions must be >= 1")
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = rng.uniform(-limit, limit, (in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight += self._input.T @ grad
        self.grad_bias += grad.sum(axis=0)
        return grad @ self.weight.T

    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad * self._mask


class Tanh(Layer):
    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad * (1.0 - self._output * self._output)


class Sigmoid(Layer):
    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad * self._output * (1.0 - self._output)


_ACTIVATIONS = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid}


def make_activation(name: str) -> Layer:
    """Instantiate an activation by name ('relu', 'tanh', 'sigmoid')."""
    try:
        return _ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; known: {sorted(_ACTIVATIONS)}"
        ) from None
