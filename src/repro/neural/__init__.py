"""Minimal numpy neural substrate (dense nets, Adam) for the deep baselines."""

from .layers import Dense, Layer, ReLU, Sigmoid, Tanh, make_activation
from .losses import mse, per_row_squared_error
from .mlp import MLP
from .optim import Adam, Optimizer, SGD
from .training import iterate_minibatches, train_reconstruction

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "make_activation",
    "MLP",
    "mse",
    "per_row_squared_error",
    "Adam",
    "SGD",
    "Optimizer",
    "iterate_minibatches",
    "train_reconstruction",
]
