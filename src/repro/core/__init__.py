"""CAD core: TSGs, co-appearance mining, variation analysis, the detector."""

from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from .config import CADConfig
from .coappearance import CoAppearanceTracker, coappearance_counts
from .detector import CAD, assemble_anomalies, detect_anomalies
from .parallel import resolve_jobs
from .pipeline import CommunityPipeline, RoundCommunity
from .postprocess import consolidate, drop_short, merge_nearby
from .result import Anomaly, DataQuality, DetectionResult, RoundRecord
from .rootcause import SensorCause, propagation_order, rank_root_causes
from .streaming import InvalidSampleError, PushError, StreamingCAD
from .tsg import build_tsg, tsg_sequence
from .variation import RunningMoments, outlier_set, outlier_variations

__all__ = [
    "CADConfig",
    "CAD",
    "StreamingCAD",
    "detect_anomalies",
    "assemble_anomalies",
    "Anomaly",
    "DataQuality",
    "DetectionResult",
    "RoundRecord",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointError",
    "PushError",
    "InvalidSampleError",
    "CHECKPOINT_VERSION",
    "build_tsg",
    "tsg_sequence",
    "CommunityPipeline",
    "RoundCommunity",
    "resolve_jobs",
    "coappearance_counts",
    "CoAppearanceTracker",
    "outlier_set",
    "outlier_variations",
    "RunningMoments",
    "rank_root_causes",
    "propagation_order",
    "SensorCause",
    "merge_nearby",
    "drop_short",
    "consolidate",
]
