"""The CAD detector (paper Algorithms 1 and 2).

:class:`CAD` is stateful: a warm-up pass over historical data populates the
``n_r`` statistics (and the co-appearance history), then :meth:`detect`
processes the live series round by round, flagging a round abnormal when
``|n_r - mu| >= eta * sigma`` (eta = 3 by default).  Consecutive abnormal
rounds are merged into anomalies whose sensor set is the union of the
rounds' outlier sets.

The same per-round machinery is exposed as :meth:`process_window` for
streaming use (Section IV-F): hand it each new window as it materialises and
read the returned :class:`RoundRecord`.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Iterable, Iterator

import numpy as np

from ..timeseries.mts import MultivariateTimeSeries
from ..timeseries.windows import WindowSpec, iter_windows
from .config import CADConfig
from .coappearance import CoAppearanceTracker
from .parallel import iter_round_communities
from .pipeline import CommunityPipeline, RoundCommunity, degrade_window
from .result import Anomaly, DataQuality, DetectionResult, RoundRecord
from .variation import RunningMoments, outlier_set, transition_set


class CAD:
    """Correlation-analysis-based anomaly detector.

    Parameters
    ----------
    config:
        Hyper-parameters; see :class:`CADConfig`.
    n_sensors:
        Number of sensors the detector will observe.  Fixed up front because
        TSGs share one vertex set across rounds.
    """

    def __init__(self, config: CADConfig, n_sensors: int) -> None:
        if n_sensors < 2:
            raise ValueError("CAD needs at least 2 sensors")
        self.config = config
        self.n_sensors = n_sensors
        self._pipeline = CommunityPipeline(config, n_sensors)
        self._tracker = CoAppearanceTracker(
            n_sensors,
            mode=config.rc_mode,
            decay=config.rc_decay,
            window=config.rc_window,
        )
        self._moments = RunningMoments()
        self._previous_outliers: frozenset[int] = frozenset()
        self._rounds_processed = 0

    @property
    def spec(self) -> WindowSpec:
        """The (window, step) pair used to partition series."""
        return WindowSpec(self.config.window, self.config.step)

    @property
    def rounds_processed(self) -> int:
        """Total rounds seen so far (warm-up plus detection)."""
        return self._rounds_processed

    @property
    def moments(self) -> tuple[float, float]:
        """Current ``(mu, sigma)`` of the ``n_r`` history."""
        return self._moments.snapshot()

    @property
    def last_rc(self) -> np.ndarray | None:
        """RC vector of the most recent round (for theta calibration)."""
        return self._tracker.last_rc

    # ----------------------------------------------------------------- #
    # Algorithm 1: per-round outlier detection
    # ----------------------------------------------------------------- #

    def _outlier_detection(
        self, window_values: np.ndarray
    ) -> tuple[frozenset[int], frozenset[int], int, DataQuality | None]:
        """One round of Algorithm 1.

        Returns ``(O_r, transitions, c_r, quality)``: the outlier set, the
        vertices entering/leaving it (whose count is ``n_r``), the number of
        communities found, and the data-quality report (None on the
        clean-feed path).
        """
        return self._apply_stage(self._pipeline.process(window_values))

    def _apply_stage(
        self, stage: RoundCommunity
    ) -> tuple[frozenset[int], frozenset[int], int, DataQuality | None]:
        """Stage B of a round: tracker update, outlier set, transitions.

        Consumes the community structure produced by stage A (either
        in-process via :meth:`CommunityPipeline.process` or shipped back
        from a parallel worker) and advances the sequential state.
        """
        quality = stage.quality
        update = self._tracker.update(np.array(stage.labels), stage.valid_array())

        if update is None:
            outliers: frozenset[int] = frozenset()
        else:
            _, rc = update
            outliers = outlier_set(rc, self.config.theta)
        if quality is not None and quality.masked_sensors:
            # A masked sensor's outlier status is frozen at its last observed
            # state: absence of data is not evidence of a transition.
            masked = quality.masked_sensors
            outliers = (outliers - masked) | (self._previous_outliers & masked)

        if self.config.variation_sides == "both":
            transitions = transition_set(self._previous_outliers, outliers)
        else:  # "enter": only vertices newly becoming outliers
            transitions = frozenset(outliers - self._previous_outliers)
        self._previous_outliers = outliers
        self._rounds_processed += 1
        return outliers, transitions, stage.n_communities, quality

    def _degrade_window(
        self, window_values: np.ndarray
    ) -> tuple[np.ndarray, DataQuality, np.ndarray | None]:
        """Mask sensors whose window is too incomplete (degraded-data mode).

        Delegates to :func:`repro.core.pipeline.degrade_window`, which is
        where stage A (including parallel workers) applies the same rule.
        """
        return degrade_window(window_values, self.config)

    # ----------------------------------------------------------------- #
    # Warm-up (Algorithm 2, WarmUp)
    # ----------------------------------------------------------------- #

    def warm_up(
        self, history: MultivariateTimeSeries, n_jobs: int | None = None
    ) -> list[int]:
        """Process historical data to seed ``mu`` and ``sigma``.

        Returns the ``n_r`` series observed during warm-up (diagnostics).
        The co-appearance tracker, outlier state and moments all carry over
        into detection, exactly as in Algorithm 2.  ``n_jobs`` overrides
        ``config.n_jobs`` for this call; any job count yields bit-identical
        state.
        """
        self._check_sensors(history)
        variations = []
        for stage in self._stage_results(history, n_jobs):
            _, transitions, _, _ = self._apply_stage(stage)
            self._moments.push(len(transitions))
            variations.append(len(transitions))
        return variations

    # ----------------------------------------------------------------- #
    # Detection (Algorithm 2, main loop)
    # ----------------------------------------------------------------- #

    def detect(
        self, series: MultivariateTimeSeries, n_jobs: int | None = None
    ) -> DetectionResult:
        """Run anomaly detection over ``series`` and return the result.

        ``n_jobs`` overrides ``config.n_jobs`` for this call: 1 processes
        rounds in-process, more fans stage A (correlation -> TSG ->
        communities) over worker processes with bit-identical output (see
        :mod:`repro.core.parallel`).
        """
        self._check_sensors(series)
        spec = self.spec
        records = [
            self._record_from_stage(stage)
            for stage in self._stage_results(series, n_jobs)
        ]
        # Re-index records relative to this detection segment.
        base = records[0].index if records else 0
        rebased = [
            RoundRecord(
                index=record.index - base,
                start=spec.round_span(record.index - base)[0],
                stop=spec.round_span(record.index - base)[1],
                n_variations=record.n_variations,
                mean=record.mean,
                std=record.std,
                deviation=record.deviation,
                abnormal=record.abnormal,
                outliers=record.outliers,
                variations=record.variations,
                n_communities=record.n_communities,
                quality=record.quality,
            )
            for record in records
        ]
        anomalies = assemble_anomalies(
            rebased, spec, attribution=self.config.sensor_attribution
        )
        return DetectionResult(
            anomalies, rebased, spec, series.length, self.n_sensors
        )

    def process_window(self, window_values: np.ndarray) -> RoundRecord:
        """Streaming entry point: score one newly materialised window.

        Repeats lines 6–13 of Algorithm 2 for a single round and returns its
        :class:`RoundRecord`.  Round indices continue across calls (and
        across the warm-up), so the record's ``start``/``stop`` describe the
        position in the full stream seen so far.
        """
        return self._record_from_stage(self._pipeline.process(window_values))

    def process_staged(self, stage: RoundCommunity) -> RoundRecord:
        """Score one round from a precomputed stage-A result.

        ``stage`` must be the :class:`RoundCommunity` of exactly the window
        :meth:`process_window` would have seen next — stage A is a pure
        function of the window, so computing it elsewhere (a pool worker in
        the fleet scheduler) and applying it here is bit-identical to the
        in-process path.  Note the local stage-A pipeline is *not* advanced
        by this call; the caller owns keeping it in sync (see
        :attr:`pipeline` and ``CommunityPipeline.restore_state``).
        """
        return self._record_from_stage(stage)

    @property
    def pipeline(self) -> CommunityPipeline:
        """The stage-A pipeline (window → correlation → TSG → Louvain).

        Exposed so round schedulers can ship its picklable state to pool
        workers (``to_state``/``restore_state``) around :meth:`process_staged`.
        """
        return self._pipeline

    def _stage_results(
        self, series: MultivariateTimeSeries, n_jobs: int | None
    ) -> Iterator[RoundCommunity]:
        """Stage-A results for every window of ``series``, in round order."""
        if n_jobs is None:
            n_jobs = self.config.n_jobs
        return iter_round_communities(
            self._pipeline, iter_windows(series, self.spec), n_jobs
        )

    def _record_from_stage(self, stage: RoundCommunity) -> RoundRecord:
        """Stage B plus scoring: turn a stage-A result into a RoundRecord."""
        index = self._rounds_processed  # global round index before this call
        outliers, transitions, n_communities, quality = self._apply_stage(stage)
        n_r = len(transitions)
        mean, std = self._moments.snapshot()
        sigma = max(std, self.config.min_sigma)
        deviation = abs(n_r - mean) / (self.config.eta * sigma)
        # A round can only be judged once some history exists (paper line 7:
        # r > 1; with a warm-up the moments already carry history).
        judgeable = self._moments.count >= 2
        abnormal = judgeable and deviation >= 1.0
        self._moments.push(n_r)

        start, stop = self.spec.round_span(index)
        return RoundRecord(
            index=index,
            start=start,
            stop=stop,
            n_variations=n_r,
            mean=mean,
            std=std,
            deviation=deviation if judgeable else 0.0,
            abnormal=abnormal,
            outliers=outliers,
            variations=transitions,
            n_communities=n_communities,
            quality=quality,
        )

    def reset(self) -> None:
        """Forget all accumulated state (tracker, outliers, moments, kernel)."""
        self._pipeline.reset()
        self._tracker.reset()
        self._moments = RunningMoments()
        self._previous_outliers = frozenset()
        self._rounds_processed = 0

    # ----------------------------------------------------------------- #
    # Checkpoint / restore
    # ----------------------------------------------------------------- #

    def to_state(self) -> dict[str, Any]:
        """Full detector state as plain scalars/arrays.

        Everything Algorithm 2 accumulates — the ``n_r`` moments, the
        co-appearance history, the previous outlier set and the round
        counter, plus the fast engine's rolling-correlation kernel — so
        :meth:`from_state` resumes detection bit-identically.
        Serialized to disk by :mod:`repro.core.checkpoint`.
        """
        return {
            "config": asdict(self.config),
            "n_sensors": self.n_sensors,
            "rounds_processed": self._rounds_processed,
            "previous_outliers": sorted(self._previous_outliers),
            "moments": self._moments.to_state(),
            "tracker": self._tracker.to_state(),
            "pipeline": self._pipeline.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "CAD":
        """Rebuild a detector from :meth:`to_state` output."""
        config = CADConfig(**state["config"])
        detector = cls(config, int(state["n_sensors"]))
        detector._rounds_processed = int(state["rounds_processed"])
        detector._previous_outliers = frozenset(
            int(v) for v in state["previous_outliers"]
        )
        detector._moments = RunningMoments.from_state(state["moments"])
        detector._tracker = CoAppearanceTracker.from_state(state["tracker"])
        # States written before the fast engine existed carry no pipeline
        # entry; the kernel then simply refreshes exactly on its next round.
        detector._pipeline.restore_state(state.get("pipeline"))
        if detector._tracker.n_sensors != detector.n_sensors:
            raise ValueError("checkpoint tracker width does not match n_sensors")
        return detector

    def _check_sensors(self, series: MultivariateTimeSeries) -> None:
        if series.n_sensors != self.n_sensors:
            raise ValueError(
                f"detector configured for {self.n_sensors} sensors, "
                f"series has {series.n_sensors}"
            )


def assemble_anomalies(
    records: Iterable[RoundRecord],
    spec: WindowSpec,
    attribution: str = "transitions",
) -> list[Anomaly]:
    """Merge consecutive abnormal rounds into anomalies (Algorithm 2, lines 7-11).

    ``attribution`` selects the sensors each abnormal round contributes:
    its transition vertices (``"transitions"``, Definitions 2-3) or its full
    outlier set (``"outliers"``, the literal Algorithm 2 rule).  An
    anomaly's point span runs from the first fresh point of its first round
    to the end of its last round's window.
    """
    if attribution not in ("transitions", "outliers"):
        raise ValueError(
            f"attribution must be 'transitions' or 'outliers', got {attribution!r}"
        )
    anomalies: list[Anomaly] = []
    current_rounds: list[int] = []
    current_sensors: set[int] = set()

    def flush() -> None:
        if not current_rounds:
            return
        start = spec.fresh_span(current_rounds[0])[0]
        stop = spec.round_span(current_rounds[-1])[1]
        anomalies.append(
            Anomaly(
                sensors=frozenset(current_sensors),
                rounds=tuple(current_rounds),
                start=start,
                stop=stop,
            )
        )
        current_rounds.clear()
        current_sensors.clear()

    for record in records:
        if record.abnormal:
            current_rounds.append(record.index)
            if attribution == "transitions":
                current_sensors |= record.variations
            else:
                current_sensors |= record.outliers
        else:
            flush()
    flush()
    return anomalies


def detect_anomalies(
    series: MultivariateTimeSeries,
    history: MultivariateTimeSeries | None = None,
    config: CADConfig | None = None,
) -> DetectionResult:
    """One-call convenience wrapper around :class:`CAD`.

    Builds a detector (with :meth:`CADConfig.suggest` defaults when no
    config is given), warms it up on ``history`` if provided, and detects
    over ``series``.  A series built with ``allow_missing=True`` switches
    the suggested config into degraded-data mode automatically.
    """
    if config is None:
        allow = series.allow_missing or (history is not None and history.allow_missing)
        config = CADConfig.suggest(series.length, series.n_sensors, allow_missing=allow)
    detector = CAD(config, series.n_sensors)
    if history is not None:
        detector.warm_up(history)
    return detector.detect(series)
