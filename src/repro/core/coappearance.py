"""Co-appearance mining across consecutive rounds (paper Section IV-C).

Two vertices *co-appear* in round ``r`` when they share a community in both
round ``r-1`` and round ``r`` (Definition 4).  The per-vertex co-appearance
number ``S_r(v)`` counts co-appearing partners (Definition 5), and the ratio
of co-appearance number ``RC_{v,r}`` averages ``S_i(v)`` over all rounds so
far, normalised by ``n - 1`` (Definition 6).

:class:`CoAppearanceTracker` is the stateful incarnation used by the
detector: feed it one community labelling per round and it returns
``(S_r, RC_r)`` vectors.  Besides the paper's running average it supports an
exponentially decayed and a sliding-window RC (ablation hooks; DESIGN.md §5).
"""

from __future__ import annotations

from collections import deque
from typing import Any

import numpy as np


def coappearance_counts(previous_labels: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Vector of ``S_r(v)``: partners sharing v's community in both rounds.

    A pair (v, u) co-appears iff ``previous_labels[v] == previous_labels[u]``
    and ``labels[v] == labels[u]``.  Equivalently, group vertices by the
    *pair* (previous community, current community); every vertex co-appears
    with the other members of its pair-group.  That grouping makes the whole
    computation O(n) instead of O(n^2).
    """
    previous_labels = np.asarray(previous_labels)
    labels = np.asarray(labels)
    if previous_labels.shape != labels.shape or labels.ndim != 1:
        raise ValueError("label vectors must be 1-D and of equal length")

    # Encode the (previous, current) pair as a single key.
    n_current = int(labels.max()) + 1 if labels.size else 0
    keys = previous_labels.astype(np.int64) * max(n_current, 1) + labels.astype(np.int64)
    _, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
    return counts[inverse] - 1  # exclude the vertex itself


class CoAppearanceTracker:
    """Accumulates co-appearance statistics round by round.

    Parameters
    ----------
    n_sensors:
        Number of vertices n; RC is normalised by ``n - 1``.
    mode:
        ``"running"`` (paper, Definition 6), ``"decay"`` or ``"window"``.
    decay:
        Decay factor for ``mode="decay"``; each past round's contribution is
        multiplied by ``decay`` per elapsed round.
    window:
        History length for ``mode="window"``.
    """

    def __init__(
        self,
        n_sensors: int,
        mode: str = "running",
        decay: float = 0.95,
        window: int = 50,
    ) -> None:
        if n_sensors < 2:
            raise ValueError("co-appearance needs at least 2 sensors")
        if mode not in ("running", "decay", "window"):
            raise ValueError(f"unknown RC mode: {mode!r}")
        self._n = n_sensors
        self._mode = mode
        self._decay = decay
        self._window = window
        self._previous_labels: np.ndarray | None = None
        self._rounds = 0  # number of S_i vectors accumulated
        self._sum = np.zeros(n_sensors)
        self._decay_weight = 0.0
        self._history: deque[np.ndarray] = deque(maxlen=window)
        self._last_rc: np.ndarray | None = None

    @property
    def n_sensors(self) -> int:
        """Number of vertices the tracker was built for."""
        return self._n

    @property
    def rounds_seen(self) -> int:
        """Number of rounds for which ``S_r`` was computable (>= 1 prior)."""
        return self._rounds

    @property
    def last_rc(self) -> np.ndarray | None:
        """RC vector of the most recent round (None before round 2).

        Useful for calibrating ``theta``: the normal RC level scales with
        the typical community size over ``n - 1``.
        """
        return None if self._last_rc is None else self._last_rc.copy()

    def update(
        self, labels: np.ndarray, valid: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Feed one round's community labels.

        Returns ``(S_r, RC_r)`` for this round, or ``None`` for the very
        first round (no previous communities to compare against).

        ``valid`` (optional boolean mask over sensors) marks sensors whose
        community assignment is trustworthy this round.  An invalid sensor —
        masked out for missing data — is treated as having moved *with* its
        previous community: its label is rewritten to the current label most
        of its valid previous-round community mates adopted (Louvain label
        ids are round-local, so holding the raw old id would silently stop
        it co-appearing with anyone).  Its own ``S_r`` is imputed at its
        current history mean, leaving its RC unchanged: a data gap must not
        fake an outlier transition — neither for the gapped sensor nor for
        its community mates.
        """
        labels = np.asarray(labels)
        if labels.shape != (self._n,):
            raise ValueError(
                f"expected {self._n} community labels, got shape {labels.shape}"
            )
        if valid is not None:
            valid = np.asarray(valid, dtype=bool)
            if valid.shape != (self._n,):
                raise ValueError(
                    f"expected {self._n} validity flags, got shape {valid.shape}"
                )
            if valid.all():
                valid = None
        if self._previous_labels is None:
            self._previous_labels = labels.copy()
            return None

        if valid is not None:
            invalid = ~valid
            # Ghost each invalid sensor along with its previous community:
            # give it the current label the majority of its valid previous
            # community mates ended up with.  A masked sensor is an isolated
            # TSG vertex, so its own Louvain label is a fresh singleton that
            # would never match its mates'.
            labels = labels.copy()
            for vertex in np.flatnonzero(invalid):
                mates = valid & (self._previous_labels == self._previous_labels[vertex])
                if mates.any():
                    mate_labels, counts = np.unique(labels[mates], return_counts=True)
                    labels[vertex] = mate_labels[np.argmax(counts)]
        s_r = coappearance_counts(self._previous_labels, labels).astype(np.float64)
        if valid is not None:
            # RC = history-mean(S) / (n - 1) in every mode, so imputing S_r
            # at the current mean pins the invalid sensors' RC in place.
            if self._last_rc is not None:
                s_r[invalid] = self._last_rc[invalid] * (self._n - 1)
            else:
                s_r[invalid] = 0.0
        self._previous_labels = labels.copy()
        self._rounds += 1

        if self._mode == "running":
            self._sum += s_r
            rc = self._sum / (self._rounds * (self._n - 1))
        elif self._mode == "decay":
            self._sum = self._decay * self._sum + s_r
            self._decay_weight = self._decay * self._decay_weight + 1.0
            rc = self._sum / (self._decay_weight * (self._n - 1))
        else:  # window
            self._history.append(s_r)
            # History rows are NaN-free by construction: masked sensors' S_r
            # is imputed above, never stored as NaN.
            rc = np.mean(self._history, axis=0) / (self._n - 1)  # repro: noqa[R8] imputed, NaN-free history
        self._last_rc = rc
        return s_r, rc

    def reset(self) -> None:
        """Forget all state (labels, sums, history)."""
        self._previous_labels = None
        self._rounds = 0
        self._sum = np.zeros(self._n)
        self._decay_weight = 0.0
        self._history.clear()
        self._last_rc = None

    def to_state(self) -> dict[str, Any]:
        """Exact internal state, for checkpointing."""
        return {
            "n_sensors": self._n,
            "mode": self._mode,
            "decay": self._decay,
            "window": self._window,
            "previous_labels": (
                None if self._previous_labels is None else self._previous_labels.copy()
            ),
            "rounds": self._rounds,
            "sum": self._sum.copy(),
            "decay_weight": self._decay_weight,
            "history": [s.copy() for s in self._history],
            "last_rc": None if self._last_rc is None else self._last_rc.copy(),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "CoAppearanceTracker":
        """Rebuild from :meth:`to_state` output, bit-identically."""
        tracker = cls(
            int(state["n_sensors"]),
            mode=str(state["mode"]),
            decay=float(state["decay"]),
            window=int(state["window"]),
        )
        if state["previous_labels"] is not None:
            tracker._previous_labels = np.asarray(state["previous_labels"]).copy()
        tracker._rounds = int(state["rounds"])
        tracker._sum = np.asarray(state["sum"], dtype=np.float64).copy()
        if tracker._sum.shape != (tracker._n,):
            raise ValueError("invalid CoAppearanceTracker state: bad sum shape")
        tracker._decay_weight = float(state["decay_weight"])
        for s_r in state["history"]:
            tracker._history.append(np.asarray(s_r, dtype=np.float64).copy())
        if state["last_rc"] is not None:
            tracker._last_rc = np.asarray(state["last_rc"], dtype=np.float64).copy()
        return tracker
