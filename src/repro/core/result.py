"""Result types produced by the CAD detector.

An :class:`Anomaly` is the paper's ``Z = (V_Z, R_Z)`` — the affected sensors
and the consecutive abnormal rounds (Definition 1).  A
:class:`DetectionResult` additionally keeps the per-round diagnostics
(:class:`RoundRecord`) and knows how to project round-level decisions back to
point-level labels and scores, which is what the evaluation protocol
(threshold grid search, PA/DPA, VUS) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..timeseries.windows import WindowSpec


@dataclass(frozen=True)
class Anomaly:
    """One detected anomaly ``Z = (V_Z, R_Z)``.

    Attributes
    ----------
    sensors:
        Indices of the affected sensors (union of the outlier sets of the
        abnormal rounds).
    rounds:
        The consecutive abnormal round indices, 0-based within the detection
        segment.
    start, stop:
        Half-open point span ``[start, stop)`` the anomaly covers in the
        detection series: from the first fresh point of the first abnormal
        round to the end of the last abnormal round's window.
    """

    sensors: frozenset[int]
    rounds: tuple[int, ...]
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not self.rounds:
            raise ValueError("an anomaly must cover at least one round")
        if list(self.rounds) != list(range(self.rounds[0], self.rounds[-1] + 1)):
            raise ValueError(f"anomaly rounds must be consecutive, got {self.rounds}")
        if not self.start < self.stop:
            raise ValueError(f"invalid span [{self.start}, {self.stop})")

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)


@dataclass(frozen=True)
class DataQuality:
    """Data-quality report of one round (degraded-data mode only).

    Attributes
    ----------
    missing_fraction:
        Fraction of the round's window readings that were missing (NaN).
    masked_sensors:
        Sensors excluded from this round because more than
        ``max_missing_fraction`` of their window was missing; they gained no
        TSG edges and their RC was carried forward unchanged.
    degraded:
        True when the round saw any missing reading or masked sensor — i.e.
        its decision was made on incomplete evidence.
    """

    missing_fraction: float
    masked_sensors: frozenset[int]
    degraded: bool

    def __post_init__(self) -> None:
        if not 0.0 <= self.missing_fraction <= 1.0:
            raise ValueError(
                f"missing_fraction must be in [0, 1], got {self.missing_fraction}"
            )


@dataclass(frozen=True)
class RoundRecord:
    """Diagnostics of one detection round.

    ``mean``/``std`` are the moments of the ``n_r`` history *before* this
    round's value was appended — exactly what Algorithm 2 compares against.
    ``deviation`` is ``|n_r - mean| / (eta * max(std, min_sigma))`` so that
    ``deviation >= 1`` is the paper's abnormality rule.  ``quality`` is the
    round's :class:`DataQuality` report in degraded-data mode, None on the
    clean-feed path.
    """

    index: int
    start: int
    stop: int
    n_variations: int
    mean: float
    std: float
    deviation: float
    abnormal: bool
    outliers: frozenset[int]
    variations: frozenset[int]
    n_communities: int
    quality: DataQuality | None = None


class DetectionResult:
    """Anomalies plus per-round diagnostics for one detection run."""

    def __init__(
        self,
        anomalies: Sequence[Anomaly],
        rounds: Sequence[RoundRecord],
        spec: WindowSpec,
        length: int,
        n_sensors: int,
    ) -> None:
        self.anomalies = list(anomalies)
        self.rounds = list(rounds)
        self.spec = spec
        self.length = length
        self.n_sensors = n_sensors

    @property
    def n_anomalies(self) -> int:
        return len(self.anomalies)

    def abnormal_sensors(self) -> frozenset[int]:
        """Union of the affected sensors over all detected anomalies."""
        sensors: set[int] = set()
        for anomaly in self.anomalies:
            sensors |= anomaly.sensors
        return frozenset(sensors)

    def point_labels(self, mark: str = "fresh") -> np.ndarray:
        """Binary per-point prediction from the 3-sigma round decisions.

        Parameters
        ----------
        mark:
            ``"fresh"`` (default) marks only the points each abnormal round
            newly introduced (its trailing ``step`` slice; the whole window
            for round 0).  The correlation change that triggers an alarm is
            driven by the points entering the window, so this avoids
            predicting time points *before* the data that caused the alarm.
            ``"window"`` marks the full window span of each abnormal round
            (ablation).
        """
        if mark not in ("fresh", "window"):
            raise ValueError(f"mark must be 'fresh' or 'window', got {mark!r}")
        labels = np.zeros(self.length, dtype=np.int8)
        for record in self.rounds:
            if not record.abnormal:
                continue
            if mark == "fresh":
                start, stop = self.spec.fresh_span(record.index)
            else:
                start, stop = record.start, record.stop
            labels[start : min(stop, self.length)] = 1
        return labels

    def point_scores(self, mark: str = "fresh") -> np.ndarray:
        """Per-point anomaly score in [0, 1).

        Each round's deviation ``d`` is squashed with ``d / (1 + d)`` — a
        monotone map, so rank-based metrics (ROC/PR, threshold sweeps) are
        unaffected — and every point takes the maximum over the rounds that
        marked it.  A score of 0.5 corresponds exactly to the paper's
        ``|n_r - mu| = 3 sigma`` boundary.
        """
        if mark not in ("fresh", "window"):
            raise ValueError(f"mark must be 'fresh' or 'window', got {mark!r}")
        scores = np.zeros(self.length, dtype=np.float64)
        for record in self.rounds:
            squashed = record.deviation / (1.0 + record.deviation)
            if mark == "fresh":
                start, stop = self.spec.fresh_span(record.index)
            else:
                start, stop = record.start, record.stop
            stop = min(stop, self.length)
            np.maximum(scores[start:stop], squashed, out=scores[start:stop])
        return scores

    def sensor_indicator(self) -> np.ndarray:
        """0/1 vector over sensors: 1 if the sensor is in any anomaly."""
        indicator = np.zeros(self.n_sensors, dtype=np.int8)
        for sensor in self.abnormal_sensors():
            indicator[sensor] = 1
        return indicator

    def variation_series(self) -> np.ndarray:
        """The ``n_r`` series over detection rounds (diagnostics/plots)."""
        return np.array([record.n_variations for record in self.rounds])

    def degraded_rounds(self) -> list[RoundRecord]:
        """Rounds whose decision was made on incomplete data."""
        return [
            record
            for record in self.rounds
            if record.quality is not None and record.quality.degraded
        ]

    def __repr__(self) -> str:
        return (
            f"DetectionResult(n_anomalies={self.n_anomalies}, "
            f"n_rounds={len(self.rounds)}, length={self.length})"
        )
