"""Streaming front-end for CAD (paper Section IV-F, Generalization).

:class:`StreamingCAD` buffers incoming samples (columns of the MTS) and runs
one CAD round every time a full new window materialises — i.e. after the
first ``window`` samples and then after every further ``step`` samples.
Because CAD's statistics (``mu``, ``sigma``, co-appearance history) are
maintained incrementally, the stream can run forever: each round costs
O(n log n) regardless of how much history has gone by.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..timeseries.mts import MultivariateTimeSeries
from .config import CADConfig
from .detector import CAD
from .result import RoundRecord


class StreamingCAD:
    """Push-based CAD: feed samples, receive round records.

    Parameters
    ----------
    config:
        CAD hyper-parameters.
    n_sensors:
        Width of each incoming sample.
    """

    def __init__(self, config: CADConfig, n_sensors: int):
        self._detector = CAD(config, n_sensors)
        self._config = config
        self._n_sensors = n_sensors
        self._buffer = np.empty((n_sensors, 0))
        self._samples_seen = 0
        self._next_round_end = config.window

    @property
    def detector(self) -> CAD:
        """The underlying stateful detector (e.g. for ``moments``)."""
        return self._detector

    @property
    def samples_seen(self) -> int:
        return self._samples_seen

    def warm_up(self, history: MultivariateTimeSeries) -> None:
        """Seed statistics from a historical segment before streaming."""
        self._detector.warm_up(history)

    def push(self, sample: np.ndarray) -> RoundRecord | None:
        """Feed one sample (readings of all sensors at one time point).

        Returns the round's :class:`RoundRecord` when this sample completes
        a window, else ``None``.
        """
        sample = np.asarray(sample, dtype=np.float64).reshape(-1)
        if sample.shape != (self._n_sensors,):
            raise ValueError(
                f"expected sample of {self._n_sensors} readings, got {sample.shape}"
            )
        self._buffer = np.hstack([self._buffer, sample[:, None]])
        self._samples_seen += 1
        if self._samples_seen < self._next_round_end:
            return None

        window = self._buffer[:, -self._config.window :]
        record = self._detector.process_window(window)
        self._next_round_end += self._config.step
        # Keep only what future windows can still need.
        keep = self._config.window - self._config.step
        if self._buffer.shape[1] > keep:
            self._buffer = self._buffer[:, -keep:]
        return record

    def push_many(self, samples: np.ndarray) -> list[RoundRecord]:
        """Feed an ``(n_sensors, t)`` block of samples; return all records."""
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 2 or samples.shape[0] != self._n_sensors:
            raise ValueError(
                f"expected ({self._n_sensors}, t) block, got shape {samples.shape}"
            )
        records = []
        for column in samples.T:
            record = self.push(column)
            if record is not None:
                records.append(record)
        return records

    def alarms(self, samples: Iterable[np.ndarray]) -> Iterable[RoundRecord]:
        """Generator over abnormal rounds only, for alerting pipelines."""
        for sample in samples:
            record = self.push(np.asarray(sample))
            if record is not None and record.abnormal:
                yield record
