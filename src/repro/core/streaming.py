"""Streaming front-end for CAD (paper Section IV-F, Generalization).

:class:`StreamingCAD` buffers incoming samples (columns of the MTS) and runs
one CAD round every time a full new window materialises — i.e. after the
first ``window`` samples and then after every further ``step`` samples.
Because CAD's statistics (``mu``, ``sigma``, co-appearance history) are
maintained incrementally, the stream can run forever: each round costs
O(n log n) regardless of how much history has gone by.

Samples are kept in a preallocated sliding buffer of ``2 * window`` columns:
each push writes one column, and when the buffer fills, the still-needed
tail (the last ``window - 1`` columns) is copied back to the front — O(n)
amortised per push, versus the O(n * t) reallocation a naive ``hstack``
would pay.

For long-running deployments the full stream state (detector statistics and
the sample buffer) round-trips through :meth:`StreamingCAD.save` /
:meth:`StreamingCAD.load` — see :mod:`repro.core.checkpoint` — so a
restarted process resumes mid-stream without warm-up replay.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

import numpy as np

from ..timeseries.mts import MultivariateTimeSeries
from .config import CADConfig
from .detector import CAD
from .pipeline import RoundCommunity
from .result import RoundRecord


class InvalidSampleError(ValueError):
    """A pushed sample carried non-finite readings the mode cannot accept.

    Infinity is rejected in *every* mode: NaN is the one sanctioned missing
    marker (degraded-data semantics, PR 1), while ±inf silently poisons the
    correlation kernel — one inf reading turns a window's mean, std and
    every Pearson coefficient touching the sensor into inf/NaN garbage
    without raising.  NaN itself is only rejected outside
    ``allow_missing`` mode.

    ``index`` is the offending sensor's position in the sample (the first
    one, when several are bad).  Subclasses :class:`ValueError` so callers
    catching the pre-existing validation errors keep working.
    """

    def __init__(self, index: int, reason: str) -> None:
        super().__init__(f"sensor {index}: {reason}")
        self.index = index
        self.reason = reason


class PushError(ValueError):
    """A :meth:`StreamingCAD.push_many` batch failed part-way through.

    ``index`` is the 0-based column of the batch whose push raised, and
    ``records`` holds the round records the earlier columns already
    produced — together they let a supervisor retry from the exact sample
    offset instead of replaying (or worse, double-feeding) the whole batch.
    The original exception rides on ``__cause__``.

    Subclasses :class:`ValueError` so callers catching the pre-existing
    validation errors keep working.
    """

    def __init__(self, index: int, records: list[RoundRecord], cause: BaseException) -> None:
        super().__init__(f"push_many failed at batch column {index}: {cause}")
        self.index = index
        self.records = records


class StreamingCAD:
    """Push-based CAD: feed samples, receive round records.

    Parameters
    ----------
    config:
        CAD hyper-parameters.  With ``config.allow_missing`` set, pushed
        samples may contain NaN readings (a wholly missed timestamp is an
        all-NaN sample); the detector masks sensors whose windows get too
        incomplete instead of crashing.
    n_sensors:
        Width of each incoming sample.
    """

    def __init__(self, config: CADConfig, n_sensors: int) -> None:
        self._detector = CAD(config, n_sensors)
        self._config = config
        self._n_sensors = n_sensors
        self._capacity = 2 * config.window
        self._buffer = np.empty((n_sensors, self._capacity))
        self._end = 0  # columns [0:_end) hold the most recent samples
        self._samples_seen = 0
        self._next_round_end = config.window
        # Round-assembly buffers: each completed round hands the detector a
        # stable copy of its window.  Two buffers alternate instead of one
        # allocation per round because the fast/delta kernel keeps the
        # *previous* round's window by reference for its overlap check —
        # round r+1 must not overwrite the array round r handed over.
        self._round_buffers = (
            np.empty((n_sensors, config.window)),
            np.empty((n_sensors, config.window)),
        )
        self._round_flip = 0

    @property
    def detector(self) -> CAD:
        """The underlying stateful detector (e.g. for ``moments``)."""
        return self._detector

    @property
    def samples_seen(self) -> int:
        return self._samples_seen

    @property
    def next_round_end(self) -> int:
        """Sample count at which the next round will complete.

        The push bringing ``samples_seen`` up to this value returns a
        :class:`RoundRecord`; supervisors use it to know, *before* pushing,
        whether a sample closes a round (deadline accounting, chaos hooks).
        """
        return self._next_round_end

    def warm_up(self, history: MultivariateTimeSeries) -> None:
        """Seed statistics from a historical segment before streaming."""
        self._detector.warm_up(history)

    def push(self, sample: np.ndarray) -> RoundRecord | None:
        """Feed one sample (readings of all sensors at one time point).

        Returns the round's :class:`RoundRecord` when this sample completes
        a window, else ``None``.
        """
        sample = np.asarray(sample, dtype=np.float64).reshape(-1)
        if sample.shape != (self._n_sensors,):
            raise ValueError(
                f"expected sample of {self._n_sensors} readings, got {sample.shape}"
            )
        self._validate_sample(sample)
        return self._ingest(sample)

    def peek_window(self, sample: np.ndarray) -> np.ndarray:
        """The window the *next* push would score, without ingesting.

        Only legal at a round boundary (``sample`` would complete a
        window); raises :class:`ValueError` otherwise.  Returns a fresh
        ``(n_sensors, window)`` array — the last ``window - 1`` buffered
        columns plus ``sample`` — safe to hand to another process.  This
        is how the fleet scheduler extracts stage-A work (window →
        correlation → TSG → Louvain) for pool offload while the stream
        itself stays untouched until the result is applied via
        :meth:`push_staged`.
        """
        sample = np.asarray(sample, dtype=np.float64).reshape(-1)
        if sample.shape != (self._n_sensors,):
            raise ValueError(
                f"expected sample of {self._n_sensors} readings, got {sample.shape}"
            )
        self._validate_sample(sample)
        if self._samples_seen + 1 != self._next_round_end:
            raise ValueError(
                f"peek_window is only legal at a round boundary; next sample is "
                f"{self._samples_seen + 1}, round closes at {self._next_round_end}"
            )
        window = self._config.window
        out = np.empty((self._n_sensors, window), dtype=np.float64)
        keep = window - 1
        if keep:
            out[:, :keep] = self._buffer[:, self._end - keep : self._end]
        out[:, keep] = sample
        return out

    def push_staged(
        self,
        sample: np.ndarray,
        stage: RoundCommunity,
        pipeline_state: dict[str, Any] | None = None,
    ) -> RoundRecord:
        """Complete a round from a precomputed stage-A result.

        ``stage`` must be the :class:`~repro.core.pipeline.RoundCommunity`
        of exactly the window :meth:`peek_window` returned for ``sample``
        (typically computed in a pool worker).  The sample is ingested into
        the ring buffer, the detector's sequential stage B runs in-process,
        and the round's record is returned — bit-identical to
        :meth:`push`, because stage A is a pure function of the window.

        When ``pipeline_state`` is given it is restored into the local
        stage-A pipeline first (state returned by the worker alongside the
        stage); when omitted the local pipeline is left untouched and goes
        *stale* — the caller owns re-syncing it before any in-process
        round or checkpoint (see ``StreamSupervisor.pipeline_stale``).
        """
        sample = np.asarray(sample, dtype=np.float64).reshape(-1)
        if sample.shape != (self._n_sensors,):
            raise ValueError(
                f"expected sample of {self._n_sensors} readings, got {sample.shape}"
            )
        self._validate_sample(sample)
        if self._samples_seen + 1 != self._next_round_end:
            raise ValueError(
                f"push_staged is only legal at a round boundary; next sample is "
                f"{self._samples_seen + 1}, round closes at {self._next_round_end}"
            )
        if self._end == self._capacity:
            keep = self._config.window - 1
            self._buffer[:, :keep] = self._buffer[:, self._end - keep : self._end]
            self._end = keep
        self._buffer[:, self._end] = sample
        self._end += 1
        self._samples_seen += 1
        if pipeline_state is not None:
            self._detector.pipeline.restore_state(pipeline_state)
        record = self._detector.process_staged(stage)
        self._next_round_end += self._config.step
        return record

    def _validate_sample(self, sample: np.ndarray) -> None:
        infinite = np.isinf(sample)
        if infinite.any():
            raise InvalidSampleError(
                int(np.argmax(infinite)),
                "reading is infinite; inf is never a valid measurement "
                "(NaN marks a missing reading)",
            )
        if not self._config.allow_missing and np.isnan(sample).any():
            raise InvalidSampleError(
                int(np.argmax(np.isnan(sample))),
                "reading is NaN; set CADConfig(allow_missing=True) to "
                "stream degraded data",
            )

    def _ingest(self, sample: np.ndarray) -> RoundRecord | None:
        if self._end == self._capacity:
            # Slide: only the last window - 1 columns can still be part of a
            # future window once this sample lands.
            keep = self._config.window - 1
            self._buffer[:, :keep] = self._buffer[:, self._end - keep : self._end]
            self._end = keep
        self._buffer[:, self._end] = sample
        self._end += 1
        self._samples_seen += 1
        if self._samples_seen < self._next_round_end:
            return None

        # Copied, not a view: the buffer compacts in place when it fills,
        # and the fast engine's kernel keeps the previous round's window by
        # reference for its overlap check.  The copy lands in one of two
        # preallocated buffers (alternating because of that held reference)
        # instead of a fresh allocation per round.
        window = self._round_buffers[self._round_flip]
        self._round_flip ^= 1
        np.copyto(window, self._buffer[:, self._end - self._config.window : self._end])
        record = self._detector.process_window(window)
        self._next_round_end += self._config.step
        return record

    def push_many(self, samples: np.ndarray) -> list[RoundRecord]:
        """Feed an ``(n_sensors, t)`` block of samples; return all records.

        A mid-batch failure raises :class:`PushError` carrying the failing
        column index and the records produced so far, so the caller can
        resume from the exact offset after fixing or retrying the sample.
        """
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 2 or samples.shape[0] != self._n_sensors:
            raise ValueError(
                f"expected ({self._n_sensors}, t) block, got shape {samples.shape}"
            )
        # One vectorised sweep over the whole block replaces a per-column
        # isinf/isnan pass; columns the sweep clears skip validation
        # entirely, and a flagged column goes back through the scalar
        # validator so it raises the exact per-sensor InvalidSampleError
        # (inf checked before NaN) the one-at-a-time path would.
        suspect = np.isinf(samples).any(axis=0)
        if not self._config.allow_missing:
            suspect |= np.isnan(samples).any(axis=0)
        records: list[RoundRecord] = []
        for index, column in enumerate(samples.T):
            try:
                if suspect[index]:
                    self._validate_sample(column)
                record = self._ingest(column)
            except Exception as exc:
                raise PushError(index, records, exc) from exc
            if record is not None:
                records.append(record)
        return records

    def alarms(self, samples: Iterable[np.ndarray]) -> Iterable[RoundRecord]:
        """Generator over abnormal rounds only, for alerting pipelines."""
        for sample in samples:
            record = self.push(np.asarray(sample))
            if record is not None and record.abnormal:
                yield record

    # ----------------------------------------------------------------- #
    # Checkpoint / restore
    # ----------------------------------------------------------------- #

    def to_state(self) -> dict[str, Any]:
        """Full stream state as plain arrays/scalars (see ``checkpoint``)."""
        return {
            "detector": self._detector.to_state(),
            "samples_seen": self._samples_seen,
            "next_round_end": self._next_round_end,
            "buffer": self._buffer[:, : self._end].copy(),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "StreamingCAD":
        """Rebuild a stream from :meth:`to_state` output, bit-identically."""
        detector = CAD.from_state(state["detector"])
        stream = cls(detector.config, detector.n_sensors)
        stream._detector = detector
        stream._samples_seen = int(state["samples_seen"])
        stream._next_round_end = int(state["next_round_end"])
        buffer = np.asarray(state["buffer"], dtype=np.float64)
        if buffer.ndim != 2 or buffer.shape[0] != detector.n_sensors:
            raise ValueError(f"invalid checkpoint buffer shape {buffer.shape}")
        if buffer.shape[1] > stream._capacity:
            buffer = buffer[:, -stream._capacity :]
        stream._buffer[:, : buffer.shape[1]] = buffer
        stream._end = buffer.shape[1]
        return stream

    def save(self, path: str | Path) -> None:
        """Checkpoint the stream to ``path`` (an ``.npz`` file)."""
        from .checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @classmethod
    def load(cls, path: str | Path) -> "StreamingCAD":
        """Restore a stream checkpointed with :meth:`save`."""
        from .checkpoint import load_checkpoint

        return load_checkpoint(path)
