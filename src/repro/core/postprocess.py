"""Post-processing of detected anomalies for operator-facing output.

CAD's raw output can contain several short bursts around one physical fault
(onset spike, propagation spikes, recovery spike).  Operators usually want
one ticket per fault, so this module offers:

* :func:`merge_nearby` — fuse anomalies whose gap is at most ``max_gap``
  rounds (their sensor sets union);
* :func:`drop_short` — discard anomalies shorter than ``min_rounds`` rounds
  (single-round blips are often noise).

Both return new anomaly lists; the :class:`DetectionResult` is not mutated,
so evaluation on the raw output stays possible.
"""

from __future__ import annotations

from typing import Sequence

from ..timeseries.windows import WindowSpec
from .result import Anomaly


def merge_nearby(
    anomalies: Sequence[Anomaly], spec: WindowSpec, max_gap: int = 2
) -> list[Anomaly]:
    """Fuse anomalies separated by at most ``max_gap`` normal rounds."""
    if max_gap < 0:
        raise ValueError(f"max_gap must be >= 0, got {max_gap}")
    ordered = sorted(anomalies, key=lambda a: a.rounds[0])
    merged: list[Anomaly] = []
    for anomaly in ordered:
        if merged and anomaly.rounds[0] - merged[-1].rounds[-1] - 1 <= max_gap:
            previous = merged.pop()
            rounds = tuple(range(previous.rounds[0], anomaly.rounds[-1] + 1))
            merged.append(
                Anomaly(
                    sensors=previous.sensors | anomaly.sensors,
                    rounds=rounds,
                    start=spec.fresh_span(rounds[0])[0],
                    stop=spec.round_span(rounds[-1])[1],
                )
            )
        else:
            merged.append(anomaly)
    return merged


def drop_short(anomalies: Sequence[Anomaly], min_rounds: int = 2) -> list[Anomaly]:
    """Discard anomalies spanning fewer than ``min_rounds`` rounds."""
    if min_rounds < 1:
        raise ValueError(f"min_rounds must be >= 1, got {min_rounds}")
    return [anomaly for anomaly in anomalies if anomaly.n_rounds >= min_rounds]


def consolidate(
    anomalies: Sequence[Anomaly],
    spec: WindowSpec,
    max_gap: int = 2,
    min_rounds: int = 2,
) -> list[Anomaly]:
    """merge_nearby then drop_short — the usual operator pipeline."""
    return drop_short(merge_nearby(anomalies, spec, max_gap), min_rounds)
