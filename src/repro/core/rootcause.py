"""Root-cause ranking of the sensors implicated in an anomaly.

The paper motivates abnormal-sensor output as the hook for root-cause
analysis (Section I): the sensors affected *earliest* and *most strongly*
are the likely origin of a propagating fault.  This module turns a
:class:`~repro.core.DetectionResult` into a ranked list per anomaly:

* a sensor's **evidence** accumulates the deviation of every abnormal round
  in which it was in transition;
* its **onset** is the first such round — earlier onsets rank higher on
  ties (the propagation ordering).
"""

from __future__ import annotations

from dataclasses import dataclass

from .result import Anomaly, DetectionResult


@dataclass(frozen=True)
class SensorCause:
    """One sensor's evidence within an anomaly."""

    sensor: int
    evidence: float
    onset_round: int

    def __post_init__(self) -> None:
        if self.evidence < 0:
            raise ValueError(f"evidence must be >= 0, got {self.evidence}")


def rank_root_causes(result: DetectionResult, anomaly: Anomaly) -> list[SensorCause]:
    """Rank ``anomaly``'s sensors by evidence (desc), then onset (asc).

    ``anomaly`` must come from ``result`` (its rounds are looked up there).
    """
    rounds_by_index = {record.index: record for record in result.rounds}
    evidence: dict[int, float] = {}
    onset: dict[int, int] = {}
    for round_index in anomaly.rounds:
        record = rounds_by_index.get(round_index)
        if record is None:
            raise ValueError(
                f"anomaly round {round_index} not present in the detection result"
            )
        for sensor in record.variations:
            evidence[sensor] = evidence.get(sensor, 0.0) + record.deviation
            onset.setdefault(sensor, round_index)

    # Sensors attributed to the anomaly but never in transition during its
    # rounds (possible under attribution="outliers") get zero evidence.
    for sensor in anomaly.sensors:
        evidence.setdefault(sensor, 0.0)
        onset.setdefault(sensor, anomaly.rounds[-1])

    causes = [
        SensorCause(sensor=s, evidence=evidence[s], onset_round=onset[s])
        for s in evidence
    ]
    causes.sort(key=lambda c: (-c.evidence, c.onset_round, c.sensor))
    return causes


def propagation_order(result: DetectionResult, anomaly: Anomaly) -> list[int]:
    """Sensors of ``anomaly`` ordered by when they first transitioned.

    Approximates the fault's spread path — the first entries are the
    candidates for the physical origin.
    """
    causes = rank_root_causes(result, anomaly)
    causes.sort(key=lambda c: (c.onset_round, -c.evidence, c.sensor))
    return [cause.sensor for cause in causes]
