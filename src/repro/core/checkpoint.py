"""Checkpoint / restore for long-running streams.

A checkpoint freezes everything a :class:`~repro.core.streaming.StreamingCAD`
has accumulated — the detector's ``n_r`` moments, co-appearance history,
previous outlier set and round counter, plus the sample buffer and stream
counters — into a single ``.npz`` file.  Restoring rebuilds the stream
*bit-identically*: the resumed process emits the exact same
:class:`~repro.core.result.RoundRecord` sequence an uninterrupted run would
have (the determinism the paper's Table VIII rests on), with no warm-up
replay.

Format: one ``.npz`` archive.  Float state (moments, co-appearance sums,
RC vectors, the sample buffer) is stored as float64 arrays so nothing is
rounded through text; structural metadata (config, counters, the outlier
set) rides in one JSON string.  ``allow_pickle`` is never used, so a
checkpoint is safe to load from untrusted storage.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from .streaming import StreamingCAD


class CheckpointError(ValueError):
    """A checkpoint file could not be read back as a valid stream state.

    Raised by :func:`load_checkpoint` for *every* failure mode — a missing
    or unreadable file, a truncated/corrupt ``.npz`` archive, a foreign
    file, an unsupported version, or an archive missing required entries —
    so callers (notably the runtime supervisor's recovery scan, which falls
    back past corrupt generations) can catch one narrow type instead of
    ``zipfile``/``KeyError``/``OSError`` leakage.  ``path`` names the
    offending file.

    Subclasses :class:`ValueError` so pre-existing callers that caught the
    old untyped errors keep working.
    """

    def __init__(self, path: str | Path, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = Path(path)
        self.reason = reason

#: Bump when the checkpoint layout changes; loaders reject unknown versions.
#: Version 2 added the fast engine's rolling-correlation kernel state;
#: version 3 added the delta engine's TSG candidate cache and warm-start
#: Louvain bookkeeping.
CHECKPOINT_VERSION = 3

#: Versions :func:`load_checkpoint` can read.  Version-1 files (written
#: before the fast engine existed) migrate on load: they carry no kernel
#: state and no ``engine``/``corr_refresh``/``n_jobs`` config keys, and are
#: pinned to ``engine="reference"`` — the only engine that existed when they
#: were written — so a resumed stream replays the exact pipeline that
#: produced the checkpoint.  Version-2 files predate the delta engine; they
#: carry no delta state, which is legal (the builder re-ranks from scratch
#: on its first resumed round — exact, just not a resumed cache).
SUPPORTED_VERSIONS = (1, 2, CHECKPOINT_VERSION)

_FORMAT = "repro-streaming-cad"

#: Checkpoint v4 is the *fleet manifest*: a layer above the per-stream
#: ``.npz`` archives (which stay at :data:`CHECKPOINT_VERSION`).  One
#: atomic JSON document records the tenant set, each tenant's shard and
#: checkpoint-generation directory, and the scheduler cursor, so a fleet
#: resume restores every tenant from its own rotation to its exact round.
FLEET_MANIFEST_VERSION = 4

_MANIFEST_FORMAT = "repro-fleet-manifest"


def save_checkpoint(stream: StreamingCAD, path: str | Path) -> None:
    """Write ``stream``'s full state to ``path`` as an ``.npz`` archive.

    The write is *atomic*: the archive is staged to a ``<path>.tmp`` sibling,
    flushed and fsynced, then moved into place with :func:`os.replace`.  A
    crash mid-write can therefore never leave a truncated archive at
    ``path`` — the worst case is a stale ``.tmp`` file next to the intact
    previous checkpoint.
    """
    state = stream.to_state()
    detector = state["detector"]
    tracker = detector["tracker"]
    moments = detector["moments"]
    pipeline = detector.get("pipeline") or {}
    kernel = pipeline.get("kernel")
    delta = pipeline.get("delta")

    meta = {
        "format": _FORMAT,
        "version": CHECKPOINT_VERSION,
        "config": detector["config"],
        "n_sensors": detector["n_sensors"],
        "rounds_processed": detector["rounds_processed"],
        "previous_outliers": detector["previous_outliers"],
        "moments_count": moments["count"],
        "tracker_mode": tracker["mode"],
        "tracker_decay": tracker["decay"],
        "tracker_window": tracker["window"],
        "tracker_rounds": tracker["rounds"],
        "tracker_history_len": len(tracker["history"]),
        "has_previous_labels": tracker["previous_labels"] is not None,
        "has_last_rc": tracker["last_rc"] is not None,
        "samples_seen": state["samples_seen"],
        "next_round_end": state["next_round_end"],
        "has_kernel": kernel is not None,
        "has_delta": delta is not None,
    }
    if delta is not None:
        builder = delta["builder"]
        meta["delta"] = {
            "k": builder["k"],
            "tau": builder["tau"],
            "has_members": builder["members"] is not None,
            "has_warm_labels": delta["warm_labels"] is not None,
            "warm_trusted": bool(delta["warm_trusted"]),
            "verify_counter": int(delta["verify_counter"]),
        }
    if kernel is not None:
        # Scalars ride in JSON; the float arrays go into the npz below so
        # the kernel resumes bit-identically (incremental sums included).
        meta["kernel"] = {
            "n_sensors": kernel["n_sensors"],
            "window": kernel["window"],
            "step": kernel["step"],
            "refresh_every": kernel["refresh_every"],
            "min_overlap": kernel["min_overlap"],
            "round": kernel["round"],
            "dirty": kernel["dirty"],
            "arrays": [
                name
                for name in ("baseline", "sums", "cross", "prev")
                if kernel[name] is not None
            ],
        }

    arrays: dict[str, np.ndarray] = {
        "meta": np.array(json.dumps(meta)),
        # mean/m2/decay_weight are float64 — keep them out of JSON so the
        # round-trip is bit-exact by construction, not by repr formatting.
        "moment_values": np.array([moments["mean"], moments["m2"]], dtype=np.float64),
        "tracker_sum": np.asarray(tracker["sum"], dtype=np.float64),
        "tracker_decay_weight": np.array([tracker["decay_weight"]], dtype=np.float64),
        "buffer": np.asarray(state["buffer"], dtype=np.float64),
    }
    if tracker["previous_labels"] is not None:
        arrays["tracker_previous_labels"] = np.asarray(
            tracker["previous_labels"], dtype=np.int64
        )
    if tracker["history"]:
        arrays["tracker_history"] = np.stack(
            [np.asarray(s, dtype=np.float64) for s in tracker["history"]]
        )
    if tracker["last_rc"] is not None:
        arrays["tracker_last_rc"] = np.asarray(tracker["last_rc"], dtype=np.float64)
    if kernel is not None:
        for name in meta["kernel"]["arrays"]:
            arrays[f"kernel_{name}"] = np.asarray(kernel[name], dtype=np.float64)
    if delta is not None:
        if delta["builder"]["members"] is not None:
            arrays["delta_members"] = np.asarray(
                delta["builder"]["members"], dtype=bool
            )
        if delta["warm_labels"] is not None:
            arrays["delta_warm_labels"] = np.asarray(
                delta["warm_labels"], dtype=np.int64
            )

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        # Never leave the staging file behind on a failed write; the
        # exception itself still propagates (R7: no swallowed state errors).
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss.

    Best-effort: some filesystems (and non-POSIX platforms) refuse to open
    directories; the data fsync above already ran, so failure here only
    weakens crash durability of the *rename*, not file integrity.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        return
    finally:
        os.close(fd)


def load_checkpoint(path: str | Path) -> StreamingCAD:
    """Rebuild a :class:`StreamingCAD` from a :func:`save_checkpoint` file.

    Every failure mode — unreadable file, truncated or corrupt archive,
    missing entries, malformed metadata, unsupported version — surfaces as
    one typed :class:`CheckpointError` naming the offending path, so
    recovery code can scan checkpoint generations without special-casing
    ``zipfile``/``KeyError``/``OSError`` internals.
    """
    try:
        return _read_checkpoint(path)
    except CheckpointError:
        raise
    except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        # np.load raises BadZipFile/OSError/EOFError on truncation, KeyError
        # on missing archive members, ValueError/JSONDecodeError on mangled
        # metadata; from_state raises ValueError on shape mismatches.
        raise CheckpointError(path, f"corrupt or invalid checkpoint ({exc})") from exc


def _read_checkpoint(path: str | Path) -> StreamingCAD:
    with np.load(path, allow_pickle=False) as archive:
        if "meta" not in archive:
            raise CheckpointError(path, "not a StreamingCAD checkpoint (no meta entry)")
        meta = json.loads(str(archive["meta"]))
        if meta.get("format") != _FORMAT:
            raise CheckpointError(
                path,
                f"not a StreamingCAD checkpoint (format {meta.get('format')!r})",
            )
        version = meta.get("version")
        if version not in SUPPORTED_VERSIONS:
            raise CheckpointError(
                path,
                f"unsupported checkpoint version {version!r} "
                f"(this build reads versions {SUPPORTED_VERSIONS})",
            )
        config = dict(meta["config"])
        if version == 1:
            # v1 -> v2 migration: the reference engine was the only engine,
            # and the newer config knobs did not exist yet.
            config.setdefault("engine", "reference")
            config.setdefault("corr_refresh", 1)
            config.setdefault("n_jobs", 1)
        if version < 3:
            # v3 added the delta engine's verification knob.
            config.setdefault("louvain_verify", 0)

        mean, m2 = (float(v) for v in archive["moment_values"])
        history_len = int(meta["tracker_history_len"])
        if history_len:
            history = [row.copy() for row in archive["tracker_history"]]
            if len(history) != history_len:
                raise CheckpointError(path, "truncated tracker history")
        else:
            history = []
        kernel_state = None
        if meta.get("has_kernel"):
            kernel_meta = meta["kernel"]
            kernel_state = {
                "n_sensors": kernel_meta["n_sensors"],
                "window": kernel_meta["window"],
                "step": kernel_meta["step"],
                "refresh_every": kernel_meta["refresh_every"],
                "min_overlap": kernel_meta["min_overlap"],
                "round": kernel_meta["round"],
                "dirty": kernel_meta["dirty"],
            }
            for name in ("baseline", "sums", "cross", "prev"):
                kernel_state[name] = (
                    archive[f"kernel_{name}"]
                    if name in kernel_meta["arrays"]
                    else None
                )
        delta_state = None
        if meta.get("has_delta"):
            delta_meta = meta["delta"]
            delta_state = {
                "builder": {
                    "n_sensors": meta["n_sensors"],
                    "k": delta_meta["k"],
                    "tau": delta_meta["tau"],
                    "members": (
                        archive["delta_members"]
                        if delta_meta["has_members"]
                        else None
                    ),
                },
                "warm_labels": (
                    archive["delta_warm_labels"]
                    if delta_meta["has_warm_labels"]
                    else None
                ),
                "warm_trusted": delta_meta["warm_trusted"],
                "verify_counter": delta_meta["verify_counter"],
            }
        state = {
            "detector": {
                "config": config,
                "n_sensors": meta["n_sensors"],
                "rounds_processed": meta["rounds_processed"],
                "previous_outliers": meta["previous_outliers"],
                "moments": {"count": meta["moments_count"], "mean": mean, "m2": m2},
                "tracker": {
                    "n_sensors": meta["n_sensors"],
                    "mode": meta["tracker_mode"],
                    "decay": meta["tracker_decay"],
                    "window": meta["tracker_window"],
                    "rounds": meta["tracker_rounds"],
                    "sum": archive["tracker_sum"],
                    "decay_weight": float(archive["tracker_decay_weight"][0]),
                    "history": history,
                    "previous_labels": (
                        archive["tracker_previous_labels"]
                        if meta["has_previous_labels"]
                        else None
                    ),
                    "last_rc": (
                        archive["tracker_last_rc"] if meta["has_last_rc"] else None
                    ),
                },
                "pipeline": {"kernel": kernel_state, "delta": delta_state},
            },
            "samples_seen": meta["samples_seen"],
            "next_round_end": meta["next_round_end"],
            "buffer": archive["buffer"],
        }
    return StreamingCAD.from_state(state)


def save_fleet_manifest(
    path: str | Path,
    *,
    shards: int,
    seed: int,
    cycle: int,
    tenants: Mapping[str, Mapping[str, Any]],
) -> None:
    """Atomically write a checkpoint-v4 fleet manifest to ``path``.

    ``tenants`` maps tenant id to a JSON-safe description (at minimum the
    tenant's ``shard`` and checkpoint ``directory``, relative to the
    manifest's parent).  Same durability contract as
    :func:`save_checkpoint`: staged to a ``.tmp`` sibling, fsynced, moved
    into place with :func:`os.replace`, directory entry flushed — a crash
    mid-write leaves the previous manifest intact.
    """
    payload = {
        "format": _MANIFEST_FORMAT,
        "version": FLEET_MANIFEST_VERSION,
        "shards": int(shards),
        "seed": int(seed),
        "cycle": int(cycle),
        "tenants": {
            tenant: dict(description) for tenant, description in tenants.items()
        },
    }
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)


def load_fleet_manifest(path: str | Path) -> dict[str, Any]:
    """Read back a :func:`save_fleet_manifest` document.

    Returns the manifest payload (``shards``, ``seed``, ``cycle``,
    ``tenants``).  Every failure mode — missing/unreadable file, mangled
    JSON, a foreign format, an unsupported version, missing keys — raises
    :class:`CheckpointError` naming the path, mirroring
    :func:`load_checkpoint` so fleet recovery scans stay single-except.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointError(path, f"corrupt or unreadable fleet manifest ({exc})") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(path, "not a fleet manifest (not a JSON object)")
    if payload.get("format") != _MANIFEST_FORMAT:
        raise CheckpointError(
            path, f"not a fleet manifest (format {payload.get('format')!r})"
        )
    version = payload.get("version")
    if version != FLEET_MANIFEST_VERSION:
        raise CheckpointError(
            path,
            f"unsupported fleet manifest version {version!r} "
            f"(this build reads version {FLEET_MANIFEST_VERSION})",
        )
    tenants = payload.get("tenants")
    if not isinstance(tenants, dict):
        raise CheckpointError(path, "fleet manifest has no tenants table")
    for key in ("shards", "seed", "cycle"):
        if not isinstance(payload.get(key), int):
            raise CheckpointError(path, f"fleet manifest missing integer {key!r}")
    return {
        "shards": payload["shards"],
        "seed": payload["seed"],
        "cycle": payload["cycle"],
        "tenants": tenants,
    }
