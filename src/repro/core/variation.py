"""Outlier sets and outlier-variation counting (paper Definitions 7 and 8).

A vertex whose ratio of co-appearance number drops below the outlier
threshold ``theta`` joins the round's outlier set ``O_r``.  The *number of
outlier variations* ``n_r`` counts vertices in a transition state — normal in
one of two consecutive rounds and an outlier in the other — i.e. the size of
the symmetric difference of ``O_{r-1}`` and ``O_r``.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def outlier_set(rc: np.ndarray, theta: float) -> frozenset[int]:
    """Vertices with ``RC_{v,r} < theta`` (Definition 7)."""
    rc = np.asarray(rc, dtype=np.float64)
    if rc.ndim != 1:
        raise ValueError("rc must be a 1-D vector")
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    return frozenset(int(v) for v in np.flatnonzero(rc < theta))


def transition_set(previous: frozenset[int], current: frozenset[int]) -> frozenset[int]:
    """Vertices entering or leaving the outlier set between two rounds."""
    return previous.symmetric_difference(current)


def outlier_variations(previous: frozenset[int], current: frozenset[int]) -> int:
    """``n_r``: vertices entering or leaving the outlier set (Definition 8)."""
    return len(transition_set(previous, current))


class RunningMoments:
    """Streaming mean / standard deviation of the ``n_r`` series.

    Algorithm 2 maintains ``mu`` and ``sigma`` over all observed ``n_r``
    (warm-up plus detection) and updates them after each round.  Welford's
    update keeps it O(1) per round and numerically stable.
    """

    __slots__ = ("_count", "_mean", "_m2")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        """Population standard deviation (0.0 with fewer than 2 samples)."""
        if self._count < 2:
            return 0.0
        return (self._m2 / self._count) ** 0.5

    def push(self, value: float) -> None:
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def snapshot(self) -> tuple[float, float]:
        """Current ``(mean, std)`` pair."""
        return self.mean, self.std

    def to_state(self) -> dict[str, Any]:
        """Exact internal state, for checkpointing."""
        return {"count": self._count, "mean": self._mean, "m2": self._m2}

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "RunningMoments":
        """Rebuild from :meth:`to_state` output, bit-identically."""
        moments = cls()
        moments._count = int(state["count"])
        moments._mean = float(state["mean"])
        moments._m2 = float(state["m2"])
        if moments._count < 0 or moments._m2 < 0.0:
            raise ValueError("invalid RunningMoments state")
        return moments
