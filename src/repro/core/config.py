"""Configuration for the CAD detector.

Collects every knob from the paper in one validated place:

* ``window`` (w) and ``step`` (s) — MTS partitioning (Section III-B);
  the paper suggests ``w in [0.01|T|, 0.03|T]`` and ``s in [0.01w, 0.02w]``.
* ``k`` — neighbours per vertex in the TSG (Table II per dataset).
* ``tau`` — correlation threshold pruning weak TSG edges; 0.4–0.6 suggested.
* ``theta`` — outlier threshold on the ratio of co-appearance number
  (Definition 7); around 0.3 suggested.
* ``eta`` — the Chebyshev multiplier; the paper fixes eta = 3, giving the
  abnormal-time rule ``|n_r - mu| >= 3 sigma`` (Section IV-E).
* ``min_sigma`` — lower bound on sigma so a perfectly quiet warm-up
  (sigma = 0) cannot make every subsequent wobble abnormal.
* ``rc_mode`` — how the ratio of co-appearance number aggregates history:
  the paper's running average over all rounds (``"running"``), an
  exponentially decayed average (``"decay"``), or a sliding window
  (``"window"``).  The alternatives are ablation hooks (DESIGN.md §5).
* ``sensor_attribution`` — which vertices an abnormal round contributes to
  the anomaly's sensor set ``V_Z``: the vertices *in transition* between
  outlier states (``"transitions"``, default — this matches the paper's
  Definitions 2–3, where affected vertices are the ones that moved), or the
  full outlier set ``O_r`` (``"outliers"``, the literal Algorithm 2 rule,
  which also sweeps in chronically low-RC vertices such as members of small
  communities).
* ``variation_sides`` — which outlier transitions count towards ``n_r``:
  ``"both"`` (paper Definition 8: vertices entering or leaving the outlier
  set) or ``"enter"`` (ablation: entering vertices only, which suppresses
  the recovery spike at an anomaly's end).
* ``community_method`` — Phase-1 community detector: ``"louvain"`` (paper,
  reference [11]) or ``"label_propagation"`` (ablation: how sensitive is
  CAD to the community detector?).
* ``allow_missing`` — degraded-data mode: accept NaN readings, correlate
  over pairwise-complete observations and mask sensors whose window is too
  incomplete instead of crashing (the paper assumes a clean feed).
* ``max_missing_fraction`` — a sensor whose window is missing more than
  this fraction of its readings is masked out of the round: it gains no TSG
  edges and its RC is carried forward unchanged, so data gaps do not fake
  outlier variations.
* ``min_overlap_fraction`` — floor on the pairwise-complete overlap (as a
  fraction of ``window``) below which a sensor pair's correlation is
  treated as unknown (edge weight 0).
* ``engine`` — per-round implementation: ``"fast"`` (default; incremental
  rolling correlation plus array-backed TSG/Louvain, see DESIGN.md),
  ``"delta"`` (everything in ``"fast"`` plus round-over-round TSG
  maintenance with cached top-k candidate sets and optional warm-started
  Louvain, see DESIGN.md §10), or ``"reference"`` (the readable dict-based
  path, bit-identical to the original pipeline).
* ``corr_refresh`` — fast/delta engines: recompute the correlation matrix
  exactly every this many rounds to bound floating-point drift of the
  incremental updates.  Also the anchor cadence for the delta engine's
  full TSG re-ranks and the chunk alignment unit for parallel offline
  detection.  1 disables the incremental path.
* ``louvain_verify`` — delta engine only.  0 (default) runs Louvain cold
  every round — output is bitwise the fast engine's.  V >= 1 warm-starts
  Louvain from the previous round's labels and *verifies* against a cold
  run every V rounds (and at every anchor): on any mismatch the cold
  result is emitted and warm starts are distrusted until the next anchor.
  Between verifications warm output is emitted unverified, so V >= 1
  trades the label-identity guarantee for speed — measured on the bench
  streams, unverified warm labels diverge from cold on roughly half the
  rounds, which is why verification is mandatory and 0 is the default.
* ``n_jobs`` — worker processes for *offline* ``warm_up``/``detect`` calls
  (the streaming path is always single-threaded).  1 runs in-process, -1
  uses every CPU.  Results are bit-identical for any job count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

_RC_MODES = ("running", "decay", "window")


@dataclass(frozen=True)
class CADConfig:
    """Validated CAD hyper-parameters; see module docstring for semantics."""

    window: int
    step: int
    k: int = 10
    tau: float = 0.5
    theta: float = 0.3
    eta: float = 3.0
    min_sigma: float = 0.5
    rc_mode: str = "running"
    rc_decay: float = 0.95
    rc_window: int = 50
    sensor_attribution: str = "transitions"
    variation_sides: str = "both"
    community_method: str = "louvain"
    allow_missing: bool = False
    max_missing_fraction: float = 0.5
    min_overlap_fraction: float = 0.25
    engine: str = "fast"
    corr_refresh: int = 64
    louvain_verify: int = 0
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if not 1 <= self.step < self.window:
            raise ValueError(
                f"step must satisfy 1 <= s < w, got s={self.step} w={self.window}"
            )
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not 0.0 <= self.tau <= 1.0:
            raise ValueError(f"tau must be in [0, 1], got {self.tau}")
        if not 0.0 <= self.theta <= 1.0:
            raise ValueError(f"theta must be in [0, 1], got {self.theta}")
        if self.eta <= 0:
            raise ValueError(f"eta must be > 0, got {self.eta}")
        if self.min_sigma <= 0:
            raise ValueError(f"min_sigma must be > 0, got {self.min_sigma}")
        if self.rc_mode not in _RC_MODES:
            raise ValueError(f"rc_mode must be one of {_RC_MODES}, got {self.rc_mode!r}")
        if not 0.0 < self.rc_decay <= 1.0:
            raise ValueError(f"rc_decay must be in (0, 1], got {self.rc_decay}")
        if self.rc_window < 1:
            raise ValueError(f"rc_window must be >= 1, got {self.rc_window}")
        if self.sensor_attribution not in ("transitions", "outliers"):
            raise ValueError(
                "sensor_attribution must be 'transitions' or 'outliers', "
                f"got {self.sensor_attribution!r}"
            )
        if self.variation_sides not in ("both", "enter"):
            raise ValueError(
                f"variation_sides must be 'both' or 'enter', got {self.variation_sides!r}"
            )
        if self.community_method not in ("louvain", "label_propagation"):
            raise ValueError(
                "community_method must be 'louvain' or 'label_propagation', "
                f"got {self.community_method!r}"
            )
        if not 0.0 <= self.max_missing_fraction < 1.0:
            raise ValueError(
                f"max_missing_fraction must be in [0, 1), got {self.max_missing_fraction}"
            )
        if not 0.0 < self.min_overlap_fraction <= 1.0:
            raise ValueError(
                f"min_overlap_fraction must be in (0, 1], got {self.min_overlap_fraction}"
            )
        if self.engine not in ("fast", "delta", "reference"):
            raise ValueError(
                f"engine must be 'fast', 'delta' or 'reference', got {self.engine!r}"
            )
        if self.corr_refresh < 1:
            raise ValueError(f"corr_refresh must be >= 1, got {self.corr_refresh}")
        if self.louvain_verify < 0:
            raise ValueError(
                f"louvain_verify must be >= 0, got {self.louvain_verify}"
            )
        if self.n_jobs != -1 and self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1 or -1 (all CPUs), got {self.n_jobs}")

    def min_overlap(self) -> int:
        """Pairwise-overlap floor in time points (at least 2)."""
        return max(2, int(round(self.min_overlap_fraction * self.window)))

    def effective_k(self, n_sensors: int) -> int:
        """``k`` capped at ``n_sensors - 1`` so tiny systems stay valid."""
        if n_sensors < 2:
            raise ValueError("CAD needs at least 2 sensors")
        return min(self.k, n_sensors - 1)

    @classmethod
    def suggest(cls, length: int, n_sensors: int, **overrides: Any) -> "CADConfig":
        """Paper-recommended defaults for a series of the given shape.

        Sets ``w = 0.02 |T|`` and ``s = 0.02 w`` (midpoints of the suggested
        ranges), ``k`` scaled with the sensor count roughly as in Table II,
        and tau/theta at the paper's sweet spots.  Any field can be
        overridden by keyword.
        """
        window = max(10, int(round(0.015 * length)))
        window = min(window, max(2, length // 2))
        # Small steps give fine round granularity and early alarms (the
        # paper suggests s in [0.01w, 0.02w]); but each round costs one
        # Louvain pass, so cap the total round count, and coarsen further
        # for very wide sensor networks where Louvain dominates.
        step = max(2, window // 20)
        step = max(step, -(-(length - window) // 1400))
        if n_sensors >= 500:
            step = max(step, window // 8)
        step = min(step, window - 1)
        if n_sensors <= 40:
            k = 10
        elif n_sensors <= 300:
            k = 20
        elif n_sensors <= 500:
            k = 30
        else:
            k = 50
        k = min(k, n_sensors - 1)
        params = {
            "window": window,
            "step": step,
            "k": k,
            "tau": 0.5,
            "theta": 0.2,
            # The windowed RC responds to correlation breaks within a few
            # rounds regardless of how long the detector has been running;
            # the paper's running average dilutes with service life
            # (DESIGN.md §5).
            "rc_mode": "window",
            "rc_window": 8,
        }
        params.update(overrides)
        return cls(**params)
