"""Parallel offline execution of stage A (window -> communities).

``CAD.warm_up`` and ``CAD.detect`` see all their windows up front, so the
expensive stage-A work can fan out over worker processes while stage B (the
sequential tracker/moments replay) stays in the main process.  The output
is **bit-identical** to a sequential run for any job count:

* The reference engine has no cross-round state at all — every chunk split
  is trivially safe.
* The fast and delta engines' cross-round state (the rolling-correlation
  kernel, the delta builder's candidate sets, the warm-start bookkeeping)
  re-anchors itself whenever ``absolute_round % corr_refresh == 0``: the
  kernel refreshes exactly, the delta builder re-ranks every row from
  scratch, and warm-started Louvain falls back to a cold run.  At an
  anchor the post-round state is a function of the current window and the
  round counter alone, so a worker that starts a *fresh* pipeline at an
  anchor round reproduces the sequential pipeline's state exactly.  Chunks
  are therefore cut only at anchor rounds; the first (possibly unaligned)
  chunk ships the live pipeline state instead.

The main pipeline adopts the last chunk's final state afterwards, so a
subsequent streaming ``process_window`` continues exactly where a
sequential run would have.

Worker-pool design (DESIGN.md §10).  A naive ``ProcessPoolExecutor`` per
call pays process spawn plus a pickled copy of every window each time, which
swamps the parallel win for small sensor counts.  This module instead keeps
one persistent :class:`WorkerPool` per process:

* Workers are long-lived and survive across ``warm_up``/``detect`` calls
  (and across :class:`~repro.runtime.supervisor.StreamSupervisor` watchdog
  retries — recovery restores detector state, not the pool).
* Windows travel through ``multiprocessing.shared_memory`` ring slots —
  two per worker, sized on demand — so a chunk submission is one bulk
  ``memcpy`` into the slot plus a tiny task message; workers build numpy
  views directly over the slot (zero copy on the read side).  A slot is
  never rewritten until the result of the task that last used it has been
  collected, and slot names are never reused, so reader and writer can
  never overlap.
* A worker that dies mid-task is respawned on the same queues (the pool's
  ``generation`` counter increments) and its outstanding tasks are
  resubmitted; duplicate results are deduplicated by task id, which is
  safe because stage-A tasks are pure functions of their inputs.

Fleet extension (DESIGN.md §12).  The multi-tenant scheduler offloads
*single rounds* instead of refresh-aligned chunks: a task tagged with a
``tenant`` key advances a worker-side cached :class:`CommunityPipeline`
for that tenant (shipped once via ``pipeline_state``, then advanced
in-place round after round), so steady-state traffic ships one masked
window per round and no kernel state.  A worker that does not hold the
named cache entry — fresh spawn after a crash, pool recreation —
answers with :class:`StaleWorkerCacheError` and the scheduler re-ships
state; the cached state is a pure function of the window sequence, so
offloaded rounds stay bit-identical to in-process ones.
"""

from __future__ import annotations

import atexit
import itertools
import math
import os
import queue
import multiprocessing as mp
from multiprocessing import shared_memory
from typing import Any, Iterable, Iterator

import numpy as np

from .config import CADConfig
from .pipeline import CommunityPipeline, RoundCommunity

#: Chunks per worker the scheduler aims for — enough slack to balance load
#: without drowning in task-dispatch overhead.
_CHUNKS_PER_JOB = 4

#: Shared-memory ring slots per worker.  Two lets the parent stage chunk
#: ``i + jobs`` while the worker still computes chunk ``i``.
_SLOTS_PER_WORKER = 2

#: How long a result wait blocks before checking workers for liveness.
_POLL_SECONDS = 0.1

#: Process-wide counters feeding shared-memory slot names.  Two pools (or
#: one pool recreated across a fleet restart) must never mint the same
#: segment name: a stale attachment in a long-lived worker would silently
#: alias a fresh slot's buffer.  ``_POOL_SERIAL`` distinguishes pool
#: instances, ``_SLOT_NAME_COUNTER`` is monotonic across every pool in the
#: process, and the pool generation rides in the name for debuggability.
_POOL_SERIAL = itertools.count()
_SLOT_NAME_COUNTER = itertools.count()


class StaleWorkerCacheError(RuntimeError):
    """A tenant-tagged task found no cached pipeline in the worker.

    Answered (never raised parent-side unless collected) by a worker that
    was asked to advance a tenant pipeline it does not hold — a fresh
    respawn after a crash, a recreated pool, or a brand-new tenant.  The
    fleet scheduler reacts by re-shipping the tenant's pipeline state with
    the retried task; correctness is unaffected because the cache is pure
    derived state.
    """

    def __init__(self, tenant: str) -> None:
        super().__init__(
            f"worker holds no cached stage-A pipeline for tenant task "
            f"{tenant!r}; resubmit with pipeline_state"
        )
        self.tenant = tenant

    def __reduce__(self) -> tuple[Any, tuple[str]]:
        return (StaleWorkerCacheError, (self.tenant,))


def resolve_jobs(n_jobs: int | None) -> int:
    """Normalise a job count: None -> 1, -1 -> all CPUs, else validated."""
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1 (all CPUs), got {n_jobs}")
    return n_jobs


def _stage_chunk(
    config: CADConfig,
    n_sensors: int,
    pipeline_state: dict[str, Any] | None,
    start_round: int,
    windows: list[np.ndarray],
    return_state: bool,
) -> tuple[list[RoundCommunity], dict[str, Any] | None]:
    """Worker entry point: run stage A over one chunk of windows.

    ``pipeline_state`` seeds the first (unaligned) chunk; every other chunk
    starts a fresh pipeline positioned at its anchor ``start_round`` — the
    anchor's unconditional refresh/re-rank makes the fresh state exact.
    Only the final chunk serialises its state back (``return_state``) —
    that state includes a full window, which is not worth shipping per
    chunk.
    """
    pipeline = CommunityPipeline(config, n_sensors)
    if pipeline.kernel is not None:
        if pipeline_state is not None:
            pipeline.restore_state(pipeline_state)
        else:
            pipeline.kernel.seek(start_round)
    stages = [pipeline.process(window) for window in windows]
    state_after = None
    if return_state and pipeline.kernel is not None:
        state_after = pipeline.to_state()
    return stages, state_after


def _chunk_bounds(
    start_round: int, n_rounds: int, refresh: int | None, jobs: int
) -> list[tuple[int, int]]:
    """Half-open local chunk bounds; every cut after the first sits on an
    anchor round when ``refresh`` is given (fast/delta engines)."""
    target = max(1, math.ceil(n_rounds / (jobs * _CHUNKS_PER_JOB)))
    if refresh is None:
        stride = target
        first_cut = min(stride, n_rounds)
    else:
        stride = max(refresh, math.ceil(target / refresh) * refresh)
        # First anchor strictly inside the segment; everything before it
        # must stay with the live kernel state.
        offset = (-start_round) % refresh
        first_cut = offset if offset > 0 else min(stride, n_rounds)
        if first_cut >= n_rounds:
            return [(0, n_rounds)]
    bounds = [(0, first_cut)]
    lo = first_cut
    while lo < n_rounds:
        hi = min(lo + stride, n_rounds)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


def _stage_tenant_rounds(
    cache: dict[str, CommunityPipeline],
    tenant: str,
    config: CADConfig,
    n_sensors: int,
    pipeline_state: dict[str, Any] | None,
    windows: list[np.ndarray],
    return_state: bool,
) -> tuple[list[RoundCommunity], dict[str, Any] | None]:
    """Worker entry point for tenant-tagged round tasks.

    Advances the worker's cached pipeline for ``tenant`` — seeded from
    ``pipeline_state`` when shipped, answered with
    :class:`StaleWorkerCacheError` when neither a cache entry nor state
    exists (stateless reference-engine pipelines are simply rebuilt).
    Windows are *copied* out of the shared slot: unlike chunk tasks, the
    cached pipeline outlives this task and the fast/delta kernels keep the
    previous window by reference, which must not alias a slot the parent
    will rewrite.
    """
    pipeline = cache.get(tenant)
    if pipeline_state is not None or pipeline is None:
        pipeline = CommunityPipeline(config, n_sensors)
        if pipeline.kernel is not None:
            if pipeline_state is None:
                raise StaleWorkerCacheError(tenant)
            pipeline.restore_state(pipeline_state)
        cache[tenant] = pipeline
    stages = [pipeline.process(np.array(window)) for window in windows]
    state_after = None
    if return_state and pipeline.kernel is not None:
        state_after = pipeline.to_state()
    return stages, state_after


def _pool_worker(tasks: Any, results: Any) -> None:
    """Long-lived worker loop: attach slots by name, stage chunks, reply.

    Attachments are cached across tasks (reattaching is a syscall per
    task otherwise) and closed when the parent retires a slot name or the
    loop exits.  NumPy views over a slot's buffer are dropped before any
    close — an outstanding view would make ``close`` raise
    ``BufferError``.
    """
    attachments: dict[str, shared_memory.SharedMemory] = {}
    tenant_pipelines: dict[str, CommunityPipeline] = {}
    try:
        while True:
            task = tasks.get()
            if task is None:
                return
            (
                task_id,
                slot_name,
                shape,
                config,
                n_sensors,
                pipeline_state,
                start_round,
                return_state,
                tenant,
                retired,
            ) = task
            for name in retired:
                old = attachments.pop(name, None)
                if old is not None:
                    old.close()
            block = None
            windows: list[np.ndarray] | None = None
            try:
                try:
                    shm = attachments.get(slot_name)
                    if shm is None:
                        shm = shared_memory.SharedMemory(name=slot_name)
                        # Attaching registers with this process's resource
                        # tracker (CPython registers unconditionally on
                        # POSIX); unregister so only the creating parent
                        # unlinks — a second unlink at interpreter exit
                        # would race the parent's and spew warnings.
                        try:
                            from multiprocessing import resource_tracker

                            resource_tracker.unregister(
                                shm._name, "shared_memory"  # noqa: SLF001
                            )
                        except Exception:  # pragma: no cover - best effort
                            pass
                        attachments[slot_name] = shm
                    block = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
                    windows = [block[i] for i in range(shape[0])]
                    if tenant is not None:
                        out = _stage_tenant_rounds(
                            tenant_pipelines,
                            tenant,
                            config,
                            n_sensors,
                            pipeline_state,
                            windows,
                            return_state,
                        )
                    else:
                        out = _stage_chunk(
                            config,
                            n_sensors,
                            pipeline_state,
                            start_round,
                            windows,
                            return_state,
                        )
                    payload = (task_id, out, None)
                except BaseException as exc:
                    payload = (task_id, None, exc)
            finally:
                # Views into the slot buffer must die before the buffer
                # can ever be closed; the pipeline that borrowed them was
                # local to _stage_chunk and is already gone.
                del block, windows
            results.put(payload)
            payload = None
    finally:
        for shm in attachments.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - views are dropped above
                pass


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


class _Slot:
    """One shared-memory staging slot owned by the parent."""

    __slots__ = ("shm", "name", "capacity", "busy")

    def __init__(self, shm: shared_memory.SharedMemory, name: str) -> None:
        self.shm = shm
        self.name = name
        self.capacity = shm.size
        #: task id currently reading this slot, or None when free.
        self.busy: int | None = None


class _WorkerHandle:
    """A worker process plus its private task queue and staging slots."""

    __slots__ = ("process", "tasks", "slots", "retired")

    def __init__(self, process: Any, tasks: Any) -> None:
        self.process = process
        self.tasks = tasks
        self.slots: list[_Slot | None] = [None] * _SLOTS_PER_WORKER
        #: slot names replaced since the last task message — shipped with
        #: the next message so the worker drops its stale attachments.
        self.retired: list[str] = []


class _Pending:
    __slots__ = ("worker", "ring", "message")

    def __init__(self, worker: int, ring: int, message: tuple) -> None:
        self.worker = worker
        self.ring = ring
        self.message = message


class WorkerPool:
    """Persistent process pool with shared-memory window transport.

    One pool serves a whole process (see :func:`get_worker_pool`); it is
    cheap to keep alive — idle workers block on their task queue — and
    expensive to recreate, which is exactly why per-call pools lost money
    at small sensor counts.
    """

    def __init__(self, jobs: int, generation: int = 0) -> None:
        self.jobs = max(1, int(jobs))
        #: Incremented every time a dead worker is respawned; checkpointed
        #: by the supervisor so post-restore health reports keep counting.
        self.generation = int(generation)
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._results: Any = self._ctx.Queue()
        self._workers: list[_WorkerHandle] = []
        self._pending: dict[int, _Pending] = {}
        self._completed: dict[int, tuple[Any, BaseException | None]] = {}
        self._task_serial = 0
        self._pool_serial = next(_POOL_SERIAL)
        self._closed = False
        for _ in range(self.jobs):
            self._workers.append(self._spawn_worker())

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # lifecycle

    def _spawn_worker(self, tasks: Any | None = None) -> _WorkerHandle:
        if tasks is None:
            tasks = self._ctx.Queue()
        process = self._ctx.Process(
            target=_pool_worker, args=(tasks, self._results), daemon=True
        )
        process.start()
        return _WorkerHandle(process, tasks)

    def _revive_dead_workers(self) -> None:
        for index, worker in enumerate(self._workers):
            if worker.process.is_alive():
                continue
            # Respawn on a *fresh* task queue: a worker killed mid-
            # ``Queue.get`` dies holding the queue's reader lock, and a
            # replacement on the same queue would block on it forever.
            # Every pending task for this worker is resubmitted below, so
            # tasks stranded in the abandoned queue are covered; a task
            # the dead worker already answered runs twice, which is
            # harmless (stage-A tasks are pure, slots are read-only to
            # workers) — the duplicate result is dropped by task id.
            self.generation += 1
            old_tasks = worker.tasks
            worker.tasks = self._ctx.Queue()
            worker.process = self._ctx.Process(
                target=_pool_worker,
                args=(worker.tasks, self._results),
                daemon=True,
            )
            worker.process.start()
            old_tasks.close()
            old_tasks.cancel_join_thread()
            for entry in self._pending.values():
                if entry.worker == index:
                    worker.tasks.put(entry.message)

    def shutdown(self) -> None:
        """Stop workers and release every shared-memory slot."""
        if self._closed:
            return
        self._closed = True
        try:
            for worker in self._workers:
                try:
                    worker.tasks.put_nowait(None)
                except Exception:  # pragma: no cover - queue already broken
                    pass
            for worker in self._workers:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():  # pragma: no cover - hung worker
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
        finally:
            try:
                for worker in self._workers:
                    for slot in worker.slots:
                        if slot is None:
                            continue
                        # Per-slot isolation: a close() that raises (e.g.
                        # BufferError from a still-exported buffer view)
                        # must not skip the unlink of *this* slot or the
                        # cleanup of the remaining ones — an unlinked
                        # segment is reclaimed by the OS either way, a
                        # skipped unlink leaks /dev/shm past process exit.
                        try:
                            slot.shm.close()
                        except Exception:  # pragma: no cover - see above
                            pass
                        finally:
                            try:
                                slot.shm.unlink()
                            except Exception:  # pragma: no cover
                                pass
                    worker.slots = [None] * _SLOTS_PER_WORKER
            finally:
                for worker in self._workers:
                    worker.tasks.close()
                    worker.tasks.cancel_join_thread()
                self._results.close()
                self._results.cancel_join_thread()
                self._pending.clear()
                self._completed.clear()

    # ------------------------------------------------------------------
    # submission / collection

    def _ensure_slot(self, worker: _WorkerHandle, ring: int, nbytes: int) -> _Slot:
        slot = worker.slots[ring]
        if slot is not None and slot.capacity >= nbytes:
            return slot
        if slot is not None:
            # Grow by replacement under a fresh name (resizing a mapped
            # segment in place is not portable).  The old name is shipped
            # to the worker with the next task so it drops its attachment;
            # unlinking now is safe — attached readers keep the segment
            # alive until they close it.
            worker.retired.append(slot.name)
            try:
                slot.shm.close()
            except Exception:  # pragma: no cover - exported view still live
                pass
            finally:
                try:
                    slot.shm.unlink()
                except Exception:  # pragma: no cover
                    pass
        # Process-wide unique name: pid + pool serial + pool generation +
        # a monotonic counter shared by every pool in the process.  A
        # per-pool counter alone can collide when two pools coexist (or a
        # fleet restart recreates the pool) and a long-lived worker still
        # holds an attachment under the stale name.
        name = (
            f"repro-{os.getpid()}-p{self._pool_serial}"
            f"g{self.generation}-{next(_SLOT_NAME_COUNTER)}"
        )
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(nbytes, 8))
        fresh = _Slot(shm, name)
        worker.slots[ring] = fresh
        return fresh

    def _submit(
        self,
        worker_index: int,
        ring: int,
        config: CADConfig,
        n_sensors: int,
        chunk: tuple[dict[str, Any] | None, int, list[np.ndarray], bool],
        tenant: str | None = None,
    ) -> int:
        pipeline_state, start_round, windows, return_state = chunk
        worker = self._workers[worker_index]
        window_len = int(windows[0].shape[1]) if windows else int(config.window)
        shape = (len(windows), n_sensors, window_len)
        nbytes = shape[0] * shape[1] * shape[2] * 8
        slot = self._ensure_slot(worker, ring, nbytes)
        if windows:
            block = np.ndarray(shape, dtype=np.float64, buffer=slot.shm.buf)
            for i, window in enumerate(windows):
                block[i] = window
            del block  # view must not outlive the slot (close would raise)
        task_id = self._task_serial
        self._task_serial += 1
        message = (
            task_id,
            slot.name,
            shape,
            config,
            n_sensors,
            pipeline_state,
            start_round,
            return_state,
            tenant,
            tuple(worker.retired),
        )
        worker.retired.clear()
        slot.busy = task_id
        self._pending[task_id] = _Pending(worker_index, ring, message)
        worker.tasks.put(message)
        return task_id

    def _collect_any(self) -> None:
        """Block until one pending result lands in ``_completed``.

        Duplicate results (from respawn resubmission) are dropped; a
        timeout triggers a liveness sweep so a crashed worker cannot hang
        the collection loop.
        """
        while True:
            try:
                task_id, out, exc = self._results.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                self._revive_dead_workers()
                continue
            entry = self._pending.pop(task_id, None)
            if entry is None:
                continue  # duplicate of an already-collected task
            slot = self._workers[entry.worker].slots[entry.ring]
            if slot is not None and slot.busy == task_id:
                slot.busy = None
            self._completed[task_id] = (out, exc)
            return

    def submit_tenant_round(
        self,
        worker_index: int,
        config: CADConfig,
        n_sensors: int,
        *,
        tenant: str,
        windows: list[np.ndarray],
        pipeline_state: dict[str, Any] | None = None,
        return_state: bool = False,
    ) -> int:
        """Submit one tenant's stage-A round(s) to a specific worker.

        ``tenant`` keys the worker-side pipeline cache (shard affinity: the
        fleet always routes a tenant to the same worker, so its cache entry
        lives exactly where its rounds land).  ``windows`` is usually one
        masked window; an *empty* list is a state-sync probe — no rounds
        run, but ``return_state=True`` ships the cached pipeline state back
        (used before checkpoints while the parent copy is stale).  Blocks
        until the worker has a free ring slot; returns the task id for
        :meth:`collect`.
        """
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        worker_index = worker_index % self.jobs
        while True:
            worker = self._workers[worker_index]
            for ring in range(_SLOTS_PER_WORKER):
                slot = worker.slots[ring]
                if slot is None or slot.busy is None:
                    return self._submit(
                        worker_index,
                        ring,
                        config,
                        n_sensors,
                        (pipeline_state, 0, windows, return_state),
                        tenant=tenant,
                    )
            self._collect_any()  # both rings feeding earlier tasks

    def collect(
        self, task_id: int
    ) -> tuple[list[RoundCommunity], dict[str, Any] | None]:
        """Block until ``task_id`` completes; return (stages, state_after).

        Raises whatever the worker raised — notably
        :class:`StaleWorkerCacheError`, which the fleet scheduler turns
        into a state re-ship rather than a failure.
        """
        while task_id not in self._completed:
            self._collect_any()
        out, exc = self._completed.pop(task_id)
        if exc is not None:
            raise exc
        stages, state_after = out
        return stages, state_after

    def run_chunks(
        self,
        config: CADConfig,
        n_sensors: int,
        chunks: list[tuple[dict[str, Any] | None, int, list[np.ndarray], bool]],
    ) -> Iterator[tuple[list[RoundCommunity], dict[str, Any] | None]]:
        """Run ``chunks`` on the pool; yield results in submission order.

        Chunk ``i`` maps to worker ``i % jobs``, ring slot
        ``(i // jobs) % 2`` — deterministic, so a chunk's slot is only
        ever contended by the chunk ``2 * jobs`` positions earlier, whose
        result has long been collected by the time it matters.
        """
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        total = len(chunks)
        ids: list[int | None] = [None] * total
        submitted = 0

        def submit_ready() -> None:
            nonlocal submitted
            while submitted < total:
                worker_index = submitted % self.jobs
                ring = (submitted // self.jobs) % _SLOTS_PER_WORKER
                slot = self._workers[worker_index].slots[ring]
                if slot is not None and slot.busy is not None:
                    return  # slot still feeding an earlier task
                ids[submitted] = self._submit(
                    worker_index, ring, config, n_sensors, chunks[submitted]
                )
                submitted += 1

        for position in range(total):
            while True:
                submit_ready()
                task_id = ids[position]
                if task_id is not None and task_id in self._completed:
                    break
                self._collect_any()
            out, exc = self._completed.pop(task_id)
            if exc is not None:
                raise exc
            yield out


# --------------------------------------------------------------------- #
# Module-level pool (one per process)
# --------------------------------------------------------------------- #

_POOL: WorkerPool | None = None
#: Floor applied to any pool's generation counter — survives pool
#: recreation so checkpoint-restored generations keep counting upward.
_GENERATION_FLOOR = 0


def get_worker_pool(jobs: int) -> WorkerPool:
    """The process-wide pool, created (or grown) on demand.

    A pool with at least ``jobs`` workers is reused as-is; a smaller one
    is replaced.  Results are bit-identical either way — worker count only
    affects scheduling, never chunking.
    """
    global _POOL
    jobs = resolve_jobs(jobs)
    if _POOL is not None and not _POOL.closed and _POOL.jobs >= jobs:
        return _POOL
    if _POOL is not None:
        _POOL.shutdown()
    _POOL = WorkerPool(jobs, generation=_GENERATION_FLOOR)
    return _POOL


def shutdown_worker_pool() -> None:
    """Tear down the process-wide pool (idempotent; used by atexit/tests)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


def pool_generation() -> int:
    """Current worker-pool generation (respawns survived), for health."""
    if _POOL is not None and not _POOL.closed:
        return _POOL.generation
    return _GENERATION_FLOOR


def restore_pool_generation(generation: int) -> None:
    """Adopt a checkpointed generation counter (monotonic, never rewinds)."""
    global _GENERATION_FLOOR
    _GENERATION_FLOOR = max(_GENERATION_FLOOR, int(generation))
    if _POOL is not None and not _POOL.closed:
        _POOL.generation = max(_POOL.generation, _GENERATION_FLOOR)


atexit.register(shutdown_worker_pool)


def iter_round_communities(
    pipeline: CommunityPipeline,
    windows: Iterable[np.ndarray],
    n_jobs: int | None = 1,
) -> Iterator[RoundCommunity]:
    """Yield stage-A results for ``windows`` in round order.

    With ``n_jobs == 1`` — or when the segment is too short to split at an
    anchor — this streams through the caller's pipeline in-process (a pool
    round-trip for a single chunk is pure overhead, which is what made the
    old per-call pool *slower* than sequential at small ``n``).  Otherwise
    it fans refresh-aligned chunks over the persistent worker pool, yields
    the (identical) results in order, and leaves the pipeline in the same
    state a sequential run would have.
    """
    jobs = resolve_jobs(n_jobs)
    if jobs == 1:
        for window in windows:
            yield pipeline.process(window)
        return

    window_list = [np.ascontiguousarray(w, dtype=np.float64) for w in windows]
    n_rounds = len(window_list)
    if n_rounds == 0:
        return

    kernel = pipeline.kernel
    start_round = 0 if kernel is None else kernel.rounds_seen
    refresh = None if kernel is None else kernel.refresh_every
    bounds = _chunk_bounds(start_round, n_rounds, refresh, jobs)
    if len(bounds) == 1:
        for window in window_list:
            yield pipeline.process(window)
        return

    first_state = None if kernel is None else pipeline.to_state()
    chunks = [
        (
            first_state if index == 0 else None,
            start_round + lo,
            window_list[lo:hi],
            index == len(bounds) - 1,
        )
        for index, (lo, hi) in enumerate(bounds)
    ]
    pool = get_worker_pool(jobs)
    last_state: dict[str, Any] | None = None
    for stages, state_after in pool.run_chunks(
        pipeline.config, pipeline.n_sensors, chunks
    ):
        if state_after is not None:
            last_state = state_after
        yield from stages
    if kernel is not None and last_state is not None:
        pipeline.restore_state(last_state)
