"""Parallel offline execution of stage A (window -> communities).

``CAD.warm_up`` and ``CAD.detect`` see all their windows up front, so the
expensive stage-A work can fan out over a process pool while stage B (the
sequential tracker/moments replay) stays in the main process.  The output
is **bit-identical** to a sequential run for any job count:

* The reference engine has no cross-round state at all — every chunk split
  is trivially safe.
* The fast engine's only cross-round state is the rolling-correlation
  kernel, and that kernel re-anchors itself with an unconditional exact
  refresh whenever ``absolute_round % corr_refresh == 0``.  At an anchor
  the post-refresh state is a function of the current window and the round
  counter alone, so a worker that starts a *fresh* kernel at an anchor
  round reproduces the sequential kernel's float state exactly.  Chunks
  are therefore cut only at anchor rounds; the first (possibly unaligned)
  chunk ships the live kernel state instead.

The main pipeline adopts the last chunk's final kernel state afterwards,
so a subsequent streaming ``process_window`` continues exactly where a
sequential run would have.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterable, Iterator

import numpy as np

from .config import CADConfig
from .pipeline import CommunityPipeline, RoundCommunity

#: Chunks per worker the scheduler aims for — enough slack to balance load
#: without drowning in inter-process pickling overhead.
_CHUNKS_PER_JOB = 4


def resolve_jobs(n_jobs: int | None) -> int:
    """Normalise a job count: None -> 1, -1 -> all CPUs, else validated."""
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1 (all CPUs), got {n_jobs}")
    return n_jobs


def _stage_chunk(
    config: CADConfig,
    n_sensors: int,
    kernel_state: dict[str, Any] | None,
    start_round: int,
    windows: list[np.ndarray],
    return_kernel: bool,
) -> tuple[list[RoundCommunity], dict | None]:
    """Worker entry point: run stage A over one chunk of windows.

    ``kernel_state`` seeds the first (unaligned) chunk; every other chunk
    starts a fresh kernel positioned at its anchor ``start_round``.  Only
    the final chunk serialises its kernel back (``return_kernel``) — that
    state includes a full window, which is not worth shipping per chunk.
    """
    pipeline = CommunityPipeline(config, n_sensors)
    if pipeline.kernel is not None:
        if kernel_state is not None:
            pipeline.restore_state({"kernel": kernel_state})
        else:
            pipeline.kernel.seek(start_round)
    stages = [pipeline.process(window) for window in windows]
    kernel_after = None
    if return_kernel and pipeline.kernel is not None:
        kernel_after = pipeline.kernel.to_state()
    return stages, kernel_after


def _chunk_bounds(
    start_round: int, n_rounds: int, refresh: int | None, jobs: int
) -> list[tuple[int, int]]:
    """Half-open local chunk bounds; every cut after the first sits on an
    anchor round when ``refresh`` is given (fast engine)."""
    target = max(1, math.ceil(n_rounds / (jobs * _CHUNKS_PER_JOB)))
    if refresh is None:
        stride = target
        first_cut = min(stride, n_rounds)
    else:
        stride = max(refresh, math.ceil(target / refresh) * refresh)
        # First anchor strictly inside the segment; everything before it
        # must stay with the live kernel state.
        offset = (-start_round) % refresh
        first_cut = offset if offset > 0 else min(stride, n_rounds)
        if first_cut >= n_rounds:
            return [(0, n_rounds)]
    bounds = [(0, first_cut)]
    lo = first_cut
    while lo < n_rounds:
        hi = min(lo + stride, n_rounds)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def iter_round_communities(
    pipeline: CommunityPipeline,
    windows: Iterable[np.ndarray],
    n_jobs: int | None = 1,
) -> Iterator[RoundCommunity]:
    """Yield stage-A results for ``windows`` in round order.

    With ``n_jobs == 1`` this streams through the caller's pipeline
    in-process.  With more jobs it fans refresh-aligned chunks over a
    process pool, yields the (identical) results in order, and leaves the
    pipeline's kernel in the same state a sequential run would have.
    """
    jobs = resolve_jobs(n_jobs)
    if jobs == 1:
        for window in windows:
            yield pipeline.process(window)
        return

    window_list = [np.ascontiguousarray(w, dtype=np.float64) for w in windows]
    n_rounds = len(window_list)
    if n_rounds == 0:
        return

    kernel = pipeline.kernel
    start_round = 0 if kernel is None else kernel.rounds_seen
    refresh = None if kernel is None else kernel.refresh_every
    bounds = _chunk_bounds(start_round, n_rounds, refresh, jobs)
    first_kernel_state = None if kernel is None else kernel.to_state()

    last_kernel_state: dict[str, Any] | None = None
    with ProcessPoolExecutor(max_workers=min(jobs, len(bounds))) as pool:
        futures = [
            pool.submit(
                _stage_chunk,
                pipeline.config,
                pipeline.n_sensors,
                first_kernel_state if index == 0 else None,
                start_round + lo,
                window_list[lo:hi],
                index == len(bounds) - 1,
            )
            for index, (lo, hi) in enumerate(bounds)
        ]
        for future in futures:
            stages, kernel_after = future.result()
            if kernel_after is not None:
                last_kernel_state = kernel_after
            yield from stages
    if kernel is not None and last_kernel_state is not None:
        pipeline.restore_state({"kernel": last_kernel_state})
