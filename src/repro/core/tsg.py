"""Time-Series Graph construction (paper Section III-B).

A TSG for a window ``T_r`` is the k-NN graph over sensors built from pairwise
Pearson correlations, with edges weaker than ``tau`` (in absolute value)
pruned away.  The signed correlation is kept as the edge weight.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, knn_graph, prune_weak_edges
from ..timeseries.correlation import pearson_matrix


def build_tsg(window_values: np.ndarray, k: int, tau: float) -> Graph:
    """Build the TSG of one ``(n, w)`` window.

    Parameters
    ----------
    window_values:
        The raw sensor readings of the window (rows = sensors).
    k:
        Neighbours per vertex before pruning; must be < n.
    tau:
        Correlation threshold; edges with ``|corr| < tau`` are dropped.
    """
    corr = pearson_matrix(window_values)
    return prune_weak_edges(knn_graph(corr, k), tau)


def tsg_sequence(windows, k: int, tau: float):
    """Yield the TSG of each window in an iterable of ``(n, w)`` matrices."""
    for window_values in windows:
        yield build_tsg(window_values, k, tau)
