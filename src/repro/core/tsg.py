"""Time-Series Graph construction (paper Section III-B).

A TSG for a window ``T_r`` is the k-NN graph over sensors built from pairwise
Pearson correlations, with edges weaker than ``tau`` (in absolute value)
pruned away.  The signed correlation is kept as the edge weight.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..graph import Graph
from ..graph.csr import tsg_edge_arrays
from ..timeseries.correlation import pearson_matrix, pearson_matrix_masked


def build_tsg(
    window_values: np.ndarray,
    k: int,
    tau: float,
    allow_missing: bool = False,
    min_overlap: int = 2,
) -> Graph:
    """Build the TSG of one ``(n, w)`` window.

    Parameters
    ----------
    window_values:
        The raw sensor readings of the window (rows = sensors).
    k:
        Neighbours per vertex before pruning; must be < n.
    tau:
        Correlation threshold; edges with ``|corr| < tau`` are dropped.
    allow_missing:
        Use the NaN-aware pairwise Pearson so windows with missing readings
        still produce a graph; sensors without usable data become isolated
        vertices.  A clean window yields the exact same TSG either way.
    min_overlap:
        Minimum pairwise-common readings for an edge to carry weight
        (degraded mode only).
    """
    if allow_missing:
        corr = pearson_matrix_masked(window_values, min_overlap)
    else:
        corr = pearson_matrix(window_values)
    # Vectorised edge selection (identical edges to the per-edge
    # knn_graph + prune_weak_edges loops, without the dict churn); the
    # result stays a dict Graph because this is the inspectable API.
    rows, cols, weights = tsg_edge_arrays(corr, k, tau)
    graph = Graph(corr.shape[0])
    for u, v, w in zip(rows, cols, weights):
        graph.add_edge(int(u), int(v), float(w))
    return graph


def tsg_sequence(
    windows: Iterable[np.ndarray], k: int, tau: float
) -> Iterator[Graph]:
    """Yield the TSG of each window in an iterable of ``(n, w)`` matrices."""
    for window_values in windows:
        yield build_tsg(window_values, k, tau)
