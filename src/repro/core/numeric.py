"""Tolerance-based float comparison helpers (lint rule R2's fix-path).

Exact ``==`` on floats is how two mathematically identical computations —
the fast engine's incremental sums and the reference engine's direct ones,
or the same reduction under a different chunking — drift apart by an ulp
and silently disagree.  Production code compares through these helpers
instead; the default tolerances are tight enough to treat genuine value
differences as different (CAD's scores live well above 1e-9 apart) while
absorbing summation-order noise.

Tests are exempt from R2 on purpose: asserting *bit-identical* output with
``==`` is exactly how the parallel/resume/CSR guarantees are verified.
"""

from __future__ import annotations

import math

import numpy as np

#: Relative tolerance: ~1e7 ulps at double precision, far below any
#: meaningful score difference in this codebase.
DEFAULT_REL_TOL = 1e-9

#: Absolute floor for comparisons around zero (centered scores, residuals).
DEFAULT_ABS_TOL = 1e-12


def float_eq(
    a: float,
    b: float,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """Tolerance equality for two scalars; NaN equals nothing (like ``==``)."""
    return math.isclose(float(a), float(b), rel_tol=rel_tol, abs_tol=abs_tol)


def float_ne(
    a: float,
    b: float,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """Tolerance inequality: True when the values are meaningfully apart."""
    return not float_eq(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def is_zero(value: float, abs_tol: float = DEFAULT_ABS_TOL) -> bool:
    """True when ``value`` is zero up to the absolute tolerance."""
    return abs(float(value)) <= abs_tol


def arrays_close(
    a: np.ndarray,
    b: np.ndarray,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
    equal_nan: bool = False,
) -> bool:
    """Elementwise tolerance equality of two arrays (shape-strict).

    ``equal_nan=True`` treats NaN as equal to NaN — the right semantics when
    comparing degraded-mode windows where NaN *is* the data.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    return bool(np.allclose(a, b, rtol=rel_tol, atol=abs_tol, equal_nan=equal_nan))
