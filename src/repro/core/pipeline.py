"""Stage A of a CAD round: window -> correlation -> TSG -> communities.

The per-round work of Algorithm 1 splits cleanly in two:

* **Stage A** (this module): everything from the raw window to the
  community labels.  Its only cross-round state is the rolling-correlation
  kernel, which the fast engine re-anchors with an exact refresh on a fixed
  round schedule — so an offline run can be chopped into refresh-aligned
  chunks and fanned over worker processes (:mod:`repro.core.parallel`)
  without changing a single bit of output.
* **Stage B** (kept inside :class:`~repro.core.detector.CAD`): the
  co-appearance tracker, outlier sets, variation counts and running
  moments.  It is inherently sequential (each round's RC depends on every
  prior round) but cheap, so it replays in round order in the main process.

:class:`CommunityPipeline` implements stage A for both engines:

``fast``
    :class:`~repro.timeseries.RollingCorrelation` incremental correlation,
    vectorised TSG edge selection and array-backed Louvain / label
    propagation (:mod:`repro.graph.csr`).
``reference``
    The original readable path — exact Pearson matrix, dict
    :class:`~repro.graph.Graph`, dict Louvain — bit-identical to the seed
    pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..graph import (
    absolute_weight_graph,
    knn_graph,
    label_propagation,
    louvain,
    prune_weak_edges,
)
from ..graph.csr import label_propagation_labels_csr, louvain_labels_csr, tsg_csr
from ..timeseries.correlation import pearson_matrix, pearson_matrix_masked
from ..timeseries.rolling import RollingCorrelation
from .config import CADConfig
from .result import DataQuality


@dataclass(frozen=True)
class RoundCommunity:
    """Stage-A output of one round: the community structure of the TSG.

    Picklable and engine-agnostic, so parallel workers can ship it back to
    the main process where stage B consumes it.
    """

    labels: tuple[int, ...]
    n_communities: int
    quality: DataQuality | None
    valid: tuple[bool, ...] | None

    def valid_array(self) -> np.ndarray | None:
        """The validity mask as the bool array the tracker expects."""
        if self.valid is None:
            return None
        return np.asarray(self.valid, dtype=bool)


def degrade_window(
    window_values: np.ndarray, config: CADConfig
) -> tuple[np.ndarray, DataQuality, np.ndarray | None]:
    """Mask sensors whose window is too incomplete (degraded-data mode).

    Returns the (possibly copied) window with masked sensors' rows fully
    NaN — so they become isolated TSG vertices — plus the round's
    :class:`DataQuality` report and the validity mask for the co-appearance
    tracker (None when every sensor is valid).
    """
    observed = np.isfinite(window_values)
    missing_fraction = 1.0 - float(observed.mean())
    sensor_missing = 1.0 - observed.mean(axis=1)
    masked = sensor_missing > config.max_missing_fraction
    valid: np.ndarray | None = None
    if masked.any():
        window_values = window_values.copy()
        window_values[masked, :] = np.nan
        valid = ~masked
    quality = DataQuality(
        missing_fraction=missing_fraction,
        masked_sensors=frozenset(int(s) for s in np.flatnonzero(masked)),
        degraded=bool(masked.any() or missing_fraction > 0.0),
    )
    return window_values, quality, valid


class CommunityPipeline:
    """Stage-A executor for one detector: validates, degrades, correlates,
    builds the TSG and detects communities, per the configured engine.

    Instances are picklable (config + plain numpy kernel state), which is
    what lets :mod:`repro.core.parallel` run them in worker processes.
    """

    def __init__(self, config: CADConfig, n_sensors: int) -> None:
        if n_sensors < 2:
            raise ValueError("CAD needs at least 2 sensors")
        self.config = config
        self.n_sensors = n_sensors
        self._k = config.effective_k(n_sensors)
        self._kernel: RollingCorrelation | None = None
        if config.engine == "fast":
            self._kernel = RollingCorrelation(
                n_sensors,
                config.window,
                config.step,
                refresh_every=config.corr_refresh,
                min_overlap=config.min_overlap(),
            )

    @property
    def kernel(self) -> RollingCorrelation | None:
        """The rolling-correlation kernel (None for the reference engine)."""
        return self._kernel

    def process(self, window_values: np.ndarray) -> RoundCommunity:
        """Run stage A on one ``(n_sensors, window)`` window."""
        window_values = np.asarray(window_values, dtype=np.float64)
        if window_values.shape != (self.n_sensors, self.config.window):
            raise ValueError(
                f"expected window of shape ({self.n_sensors}, {self.config.window}), "
                f"got {window_values.shape}"
            )
        quality: DataQuality | None = None
        valid: np.ndarray | None = None
        if self.config.allow_missing:
            window_values, quality, valid = degrade_window(window_values, self.config)
        elif not np.isfinite(window_values).all():
            raise ValueError(
                "window contains non-finite readings; "
                "set CADConfig(allow_missing=True) to run on degraded data"
            )

        if self._kernel is not None:
            # Finiteness is already settled here (strict mode raised above;
            # degraded mode reported it in quality), so the kernel can skip
            # its own O(n*w) sweep.
            finite = quality is None or not quality.degraded
            labels, n_communities = self._fast_stage(window_values, finite)
        else:
            labels, n_communities = self._reference_stage(window_values)
        return RoundCommunity(
            labels=labels,
            n_communities=n_communities,
            quality=quality,
            valid=None if valid is None else tuple(bool(v) for v in valid),
        )

    def _fast_stage(
        self, window_values: np.ndarray, finite: bool
    ) -> tuple[tuple[int, ...], int]:
        assert self._kernel is not None
        corr = self._kernel.update(window_values, assume_finite=finite)
        tsg = tsg_csr(corr, self._k, self.config.tau).absolute()
        if self.config.community_method == "louvain":
            labels = louvain_labels_csr(tsg)
        else:
            labels = label_propagation_labels_csr(tsg)
        return tuple(int(label) for label in labels), int(labels.max()) + 1

    def _reference_stage(self, window_values: np.ndarray) -> tuple[tuple[int, ...], int]:
        # The seed pipeline verbatim: full Pearson matrix, per-edge dict
        # graph construction, dict community detection.  build_tsg itself
        # now routes through the vectorised edge selection, so the seed
        # loops are inlined here to keep this engine a faithful baseline.
        if self.config.allow_missing:
            corr = pearson_matrix_masked(window_values, self.config.min_overlap())
        else:
            corr = pearson_matrix(window_values)
        tsg = prune_weak_edges(knn_graph(corr, self._k), self.config.tau)
        detect_communities = (
            louvain
            if self.config.community_method == "louvain"
            else label_propagation
        )
        partition = detect_communities(absolute_weight_graph(tsg))
        return partition.labels, partition.n_communities

    def reset(self) -> None:
        """Forget the kernel state; the next round behaves like round 0."""
        if self._kernel is not None:
            self._kernel.reset()

    # ------------------------------------------------------------------
    # checkpoint support

    def to_state(self) -> dict[str, Any]:
        """Kernel state (or None) — config/n_sensors ride with the detector."""
        return {
            "kernel": None if self._kernel is None else self._kernel.to_state(),
        }

    def restore_state(self, state: dict[str, Any] | None) -> None:
        """Adopt a :meth:`to_state` snapshot (None leaves a fresh pipeline).

        A missing/None kernel entry on a fast-engine pipeline is legal —
        the kernel simply refreshes exactly on its next round — but it
        breaks the bit-identical-resume promise, so checkpoints always
        carry the kernel when the fast engine is active.
        """
        if not state:
            return
        kernel_state = state.get("kernel")
        if kernel_state is not None and self._kernel is not None:
            self._kernel = RollingCorrelation.from_state(kernel_state)
