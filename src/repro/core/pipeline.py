"""Stage A of a CAD round: window -> correlation -> TSG -> communities.

The per-round work of Algorithm 1 splits cleanly in two:

* **Stage A** (this module): everything from the raw window to the
  community labels.  Its only cross-round state is the rolling-correlation
  kernel, which the fast engine re-anchors with an exact refresh on a fixed
  round schedule — so an offline run can be chopped into refresh-aligned
  chunks and fanned over worker processes (:mod:`repro.core.parallel`)
  without changing a single bit of output.
* **Stage B** (kept inside :class:`~repro.core.detector.CAD`): the
  co-appearance tracker, outlier sets, variation counts and running
  moments.  It is inherently sequential (each round's RC depends on every
  prior round) but cheap, so it replays in round order in the main process.

:class:`CommunityPipeline` implements stage A for both engines:

``fast``
    :class:`~repro.timeseries.RollingCorrelation` incremental correlation,
    vectorised TSG edge selection and array-backed Louvain / label
    propagation (:mod:`repro.graph.csr`).
``delta``
    Everything in ``fast``, plus round-over-round TSG maintenance
    (:class:`~repro.graph.DeltaTSGBuilder` keeps the previous round's
    top-k candidate sets and re-ranks only rows the new correlation matrix
    invalidates, bitwise-identical to the full build) and optional
    warm-started Louvain behind ``CADConfig.louvain_verify`` (DESIGN.md
    §10).  With ``louvain_verify=0`` (default) output is bitwise the fast
    engine's.
``reference``
    The original readable path — exact Pearson matrix, dict
    :class:`~repro.graph.Graph`, dict Louvain — bit-identical to the seed
    pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..graph import (
    DeltaTSGBuilder,
    absolute_weight_graph,
    knn_graph,
    label_propagation,
    louvain,
    prune_weak_edges,
)
from ..graph.csr import (
    CSRGraph,
    label_propagation_labels_csr,
    louvain_labels_csr,
    tsg_csr,
)
from ..timeseries.correlation import pearson_matrix, pearson_matrix_masked
from ..timeseries.rolling import RollingCorrelation
from .config import CADConfig
from .result import DataQuality


@dataclass(frozen=True)
class RoundCommunity:
    """Stage-A output of one round: the community structure of the TSG.

    Picklable and engine-agnostic, so parallel workers can ship it back to
    the main process where stage B consumes it.
    """

    labels: tuple[int, ...]
    n_communities: int
    quality: DataQuality | None
    valid: tuple[bool, ...] | None

    def valid_array(self) -> np.ndarray | None:
        """The validity mask as the bool array the tracker expects."""
        if self.valid is None:
            return None
        return np.asarray(self.valid, dtype=bool)


def degrade_window(
    window_values: np.ndarray, config: CADConfig
) -> tuple[np.ndarray, DataQuality, np.ndarray | None]:
    """Mask sensors whose window is too incomplete (degraded-data mode).

    Returns the (possibly copied) window with masked sensors' rows fully
    NaN — so they become isolated TSG vertices — plus the round's
    :class:`DataQuality` report and the validity mask for the co-appearance
    tracker (None when every sensor is valid).
    """
    observed = np.isfinite(window_values)
    missing_fraction = 1.0 - float(observed.mean())
    sensor_missing = 1.0 - observed.mean(axis=1)
    masked = sensor_missing > config.max_missing_fraction
    valid: np.ndarray | None = None
    if masked.any():
        window_values = window_values.copy()
        window_values[masked, :] = np.nan
        valid = ~masked
    quality = DataQuality(
        missing_fraction=missing_fraction,
        masked_sensors=frozenset(int(s) for s in np.flatnonzero(masked)),
        degraded=bool(masked.any() or missing_fraction > 0.0),
    )
    return window_values, quality, valid


class CommunityPipeline:
    """Stage-A executor for one detector: validates, degrades, correlates,
    builds the TSG and detects communities, per the configured engine.

    Instances are picklable (config + plain numpy kernel state), which is
    what lets :mod:`repro.core.parallel` run them in worker processes.
    """

    def __init__(self, config: CADConfig, n_sensors: int) -> None:
        if n_sensors < 2:
            raise ValueError("CAD needs at least 2 sensors")
        self.config = config
        self.n_sensors = n_sensors
        self._k = config.effective_k(n_sensors)
        self._kernel: RollingCorrelation | None = None
        self._builder: DeltaTSGBuilder | None = None
        # Warm-start verification state (delta engine, louvain_verify >= 1):
        # the previous round's labels, whether warm results are currently
        # trusted, and rounds since the last cold verification.
        self._warm_labels: np.ndarray | None = None
        self._warm_trusted = False
        self._verify_counter = 0
        if config.engine in ("fast", "delta"):
            self._kernel = RollingCorrelation(
                n_sensors,
                config.window,
                config.step,
                refresh_every=config.corr_refresh,
                min_overlap=config.min_overlap(),
            )
        if config.engine == "delta":
            self._builder = DeltaTSGBuilder(n_sensors, self._k, config.tau)

    @property
    def kernel(self) -> RollingCorrelation | None:
        """The rolling-correlation kernel (None for the reference engine)."""
        return self._kernel

    def process(self, window_values: np.ndarray) -> RoundCommunity:
        """Run stage A on one ``(n_sensors, window)`` window."""
        window_values = np.asarray(window_values, dtype=np.float64)
        if window_values.shape != (self.n_sensors, self.config.window):
            raise ValueError(
                f"expected window of shape ({self.n_sensors}, {self.config.window}), "
                f"got {window_values.shape}"
            )
        quality: DataQuality | None = None
        valid: np.ndarray | None = None
        if self.config.allow_missing:
            window_values, quality, valid = degrade_window(window_values, self.config)
        elif not np.isfinite(window_values).all():
            raise ValueError(
                "window contains non-finite readings; "
                "set CADConfig(allow_missing=True) to run on degraded data"
            )

        if self._builder is not None:
            # Finiteness is already settled here (strict mode raised above;
            # degraded mode reported it in quality), so the kernel can skip
            # its own O(n*w) sweep.
            finite = quality is None or not quality.degraded
            labels, n_communities = self._delta_stage(window_values, finite)
        elif self._kernel is not None:
            finite = quality is None or not quality.degraded
            labels, n_communities = self._fast_stage(window_values, finite)
        else:
            labels, n_communities = self._reference_stage(window_values)
        return RoundCommunity(
            labels=labels,
            n_communities=n_communities,
            quality=quality,
            valid=None if valid is None else tuple(bool(v) for v in valid),
        )

    def _fast_stage(
        self, window_values: np.ndarray, finite: bool
    ) -> tuple[tuple[int, ...], int]:
        assert self._kernel is not None
        corr = self._kernel.update(window_values, assume_finite=finite)
        tsg = tsg_csr(corr, self._k, self.config.tau).absolute()
        if self.config.community_method == "louvain":
            labels = louvain_labels_csr(tsg)
        else:
            labels = label_propagation_labels_csr(tsg)
        return tuple(labels.tolist()), int(labels.max()) + 1

    def _delta_stage(
        self, window_values: np.ndarray, finite: bool
    ) -> tuple[tuple[int, ...], int]:
        assert self._kernel is not None and self._builder is not None
        # Anchor status must be read before update() advances the counter.
        anchor = self._kernel.next_update_is_anchor
        corr = self._kernel.update(window_values, assume_finite=finite)
        # Anchors re-rank every row (bounds cache age, keeps chunk starts
        # state-free); degraded rounds skip the certificate pass outright —
        # NaN rows would fail it row by row anyway.
        tsg = self._builder.build(corr, full=anchor or not finite)
        if self.config.community_method != "louvain":
            labels = label_propagation_labels_csr(tsg)
            return tuple(labels.tolist()), int(labels.max()) + 1
        labels = self._delta_louvain(tsg, anchor)
        return tuple(labels.tolist()), int(labels.max()) + 1

    def _delta_louvain(self, tsg: CSRGraph, anchor: bool) -> np.ndarray:
        """Louvain with the delta engine's warm-start verification protocol.

        ``louvain_verify == 0``: cold every round — bitwise the fast path.
        ``V >= 1``: warm-start from the previous round's labels; every V
        rounds (and at every anchor) run the cold path too and emit *its*
        result, distrusting warm starts until the next anchor whenever the
        two differ.  Anchors fully reset the verification state, so a
        parallel chunk starting at an anchor reproduces the sequential
        stream bit for bit at any V.
        """
        verify = self.config.louvain_verify
        if verify == 0:
            return louvain_labels_csr(tsg)
        if anchor or self._warm_labels is None:
            labels = louvain_labels_csr(tsg)
            self._warm_labels = labels
            self._warm_trusted = True
            self._verify_counter = 0
            return labels
        if not self._warm_trusted:
            # Distrusted until the next anchor: cold runs, no warm seeding.
            return louvain_labels_csr(tsg)
        self._verify_counter += 1
        if self._verify_counter >= verify:
            # Verification round: the cold result is what gets emitted, so
            # a divergent warm start can never leak into the output.
            cold = louvain_labels_csr(tsg)
            warm = louvain_labels_csr(tsg, init_labels=self._warm_labels)
            self._warm_trusted = bool(np.array_equal(cold, warm))
            self._warm_labels = cold
            self._verify_counter = 0
            return cold
        labels = louvain_labels_csr(tsg, init_labels=self._warm_labels)
        self._warm_labels = labels
        return labels

    def _reference_stage(self, window_values: np.ndarray) -> tuple[tuple[int, ...], int]:
        # The seed pipeline verbatim: full Pearson matrix, per-edge dict
        # graph construction, dict community detection.  build_tsg itself
        # now routes through the vectorised edge selection, so the seed
        # loops are inlined here to keep this engine a faithful baseline.
        if self.config.allow_missing:
            corr = pearson_matrix_masked(window_values, self.config.min_overlap())
        else:
            corr = pearson_matrix(window_values)
        tsg = prune_weak_edges(knn_graph(corr, self._k), self.config.tau)
        detect_communities = (
            louvain
            if self.config.community_method == "louvain"
            else label_propagation
        )
        partition = detect_communities(absolute_weight_graph(tsg))
        return partition.labels, partition.n_communities

    def reset(self) -> None:
        """Forget kernel/delta state; the next round behaves like round 0."""
        if self._kernel is not None:
            self._kernel.reset()
        if self._builder is not None:
            self._builder.reset()
        self._warm_labels = None
        self._warm_trusted = False
        self._verify_counter = 0

    # ------------------------------------------------------------------
    # checkpoint support

    def to_state(self) -> dict[str, Any]:
        """Kernel + delta state — config/n_sensors ride with the detector."""
        state: dict[str, Any] = {
            "kernel": None if self._kernel is None else self._kernel.to_state(),
        }
        if self._builder is not None:
            state["delta"] = {
                "builder": self._builder.to_state(),
                "warm_labels": (
                    None if self._warm_labels is None else self._warm_labels.copy()
                ),
                "warm_trusted": self._warm_trusted,
                "verify_counter": self._verify_counter,
            }
        return state

    def restore_state(self, state: dict[str, Any] | None) -> None:
        """Adopt a :meth:`to_state` snapshot (None leaves a fresh pipeline).

        A missing/None kernel entry on a fast/delta-engine pipeline is
        legal — the kernel simply refreshes exactly on its next round — but
        it breaks the bit-identical-resume promise, so checkpoints always
        carry the kernel when an incremental engine is active.  The same
        holds for the delta entry: without it the builder re-ranks from
        scratch on its first round (exact, just not a resumed cache) and
        warm starts re-arm at the next anchor.
        """
        if not state:
            return
        kernel_state = state.get("kernel")
        if kernel_state is not None and self._kernel is not None:
            self._kernel = RollingCorrelation.from_state(kernel_state)
        delta_state = state.get("delta")
        if delta_state is not None and self._builder is not None:
            self._builder = DeltaTSGBuilder.from_state(delta_state["builder"])
            warm = delta_state.get("warm_labels")
            self._warm_labels = (
                None if warm is None else np.asarray(warm, dtype=np.int64).copy()
            )
            self._warm_trusted = bool(delta_state.get("warm_trusted", False))
            self._verify_counter = int(delta_state.get("verify_counter", 0))
