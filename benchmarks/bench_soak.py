"""Chaos/soak harness for the supervised streaming runtime.

Standalone script (like ``bench_perf.py``) — run it directly:

    PYTHONPATH=src python benchmarks/bench_soak.py            # 5k-round soak
    PYTHONPATH=src python benchmarks/bench_soak.py --quick    # CI smoke

Three scenarios, one shared synthetic feed:

``overhead``
    The same live feed through a bare ``StreamingCAD`` and through the
    supervisor with everything quiet (no chaos, no checkpoints).  The
    supervisor must stay within a few percent of the bare stream and its
    records must be bit-identical.
``process-chaos``
    Seeded mid-round crashes, watchdog-tripping stalls (virtual clock) and
    torn checkpoint generations, at rates that fire hundreds of times over
    the soak.  The supervisor must finish the stream purely through
    checkpoint restore + replay, and the emitted ``RoundRecord`` sequence
    must be **bit-identical** to the fault-free run — determinism survives
    recovery.
``sensor-flapping``
    A flapping sensor (NaN square wave via
    :func:`repro.datasets.faults.inject_sensor_flapping`) must trip its
    circuit breaker, sit quarantined through the flap, pass probation once
    the sensor heals, and re-close — while every round before the flap
    stays bit-identical to the fault-free run.  (Rounds at and after the
    flap legitimately differ: quarantine masks a sensor, and masking *is*
    a data change under degraded-data semantics.)

Results go to ``BENCH_soak.json``; the chaos scenario's final
``HealthSnapshot`` goes to ``BENCH_soak_health.json`` (uploaded as a CI
artifact by the chaos-soak job).
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import CADConfig, StreamingCAD
from repro.datasets import FaultModel
from repro.runtime import (
    BreakerPolicy,
    BreakerState,
    ChaosModel,
    RetryPolicy,
    StreamSupervisor,
    SupervisorConfig,
    VirtualClock,
)
from repro.timeseries import MultivariateTimeSeries


def synthetic_values(n_sensors: int, t_total: int, seed: int = 11) -> np.ndarray:
    """Correlated sensors (shared sine drivers + noise), like bench_perf."""
    rng = np.random.default_rng(seed)
    t = np.arange(t_total)
    periods = rng.uniform(120.0, 400.0, 6)
    phases = rng.uniform(0.0, 6.0, 6)
    drivers = np.vstack(
        [np.sin(2.0 * np.pi * t / p + ph) for p, ph in zip(periods, phases)]
    )
    values = np.empty((n_sensors, t_total))
    for i in range(n_sensors):
        values[i] = (
            rng.uniform(0.8, 1.2) * drivers[i % len(drivers)]
            + 0.1 * rng.standard_normal(t_total)
        )
    return values


def bare_run(config: CADConfig, history: MultivariateTimeSeries, live: np.ndarray):
    """Unsupervised reference: per-sample push loop, timed."""
    stream = StreamingCAD(config, live.shape[0])
    stream.warm_up(history)
    records = []
    start = time.perf_counter()
    for column in live.T:
        record = stream.push(column)
        if record is not None:
            records.append(record)
    return records, time.perf_counter() - start


def supervised_run(
    config: CADConfig,
    history: MultivariateTimeSeries,
    live: np.ndarray,
    sup_config: SupervisorConfig,
    *,
    checkpoint_dir: Path | None = None,
    chaos: ChaosModel | None = None,
):
    supervisor = StreamSupervisor(
        config,
        live.shape[0],
        supervisor=sup_config,
        checkpoint_dir=checkpoint_dir,
        clock=VirtualClock(),
        chaos=chaos,
        resume=False,
    )
    supervisor.warm_up(history)
    start = time.perf_counter()
    records = supervisor.process_many(live)
    return records, time.perf_counter() - start, supervisor


def identical(a, b) -> bool:
    return len(a) == len(b) and all(x == y for x, y in zip(a, b))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke (seconds)")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--sensors", type=int, default=16)
    parser.add_argument("--window", type=int, default=64)
    parser.add_argument("--step", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_soak.json"), help="output JSON path"
    )
    parser.add_argument(
        "--health-out",
        type=Path,
        default=Path("BENCH_soak_health.json"),
        help="final HealthSnapshot of the chaos scenario",
    )
    args = parser.parse_args()
    rounds = args.rounds if args.rounds is not None else (300 if args.quick else 5000)
    checkpoint_every = 25 if args.quick else 100

    window, step, n = args.window, args.step, args.sensors
    live_length = window + (rounds - 1) * step
    values = synthetic_values(n, 4 * window + live_length, seed=args.seed)
    history = MultivariateTimeSeries(values[:, : 4 * window])
    live = values[:, 4 * window :]
    config = CADConfig(window=window, step=step, allow_missing=True, engine="fast")
    failures = []
    results: dict[str, dict] = {}

    # ------------------------------------------------------------- #
    # Scenario 1: overhead (quiet supervisor vs bare stream)
    # ------------------------------------------------------------- #
    # Min-of-repeats on both sides: single-run wall time jitters +/-20%
    # on small boxes, which would drown the effect being measured.  Even
    # so the number is indicative only — correctness (bit-identity) is
    # the gate; overhead is reported, not enforced, because scheduler
    # noise on shared CI boxes exceeds the effect size.
    repeats = 2 if args.quick else 3
    quiet = SupervisorConfig(checkpoint_every=0)
    base_seconds = quiet_seconds = float("inf")
    for _ in range(repeats):
        base_records, seconds = bare_run(config, history, live)
        base_seconds = min(base_seconds, seconds)
        quiet_records, seconds, _ = supervised_run(config, history, live, quiet)
        quiet_seconds = min(quiet_seconds, seconds)
    overhead = quiet_seconds / base_seconds - 1.0
    quiet_identical = identical(base_records, quiet_records)
    if not quiet_identical:
        failures.append("overhead: quiet supervised records diverged from bare stream")
    print(
        f"overhead        {len(base_records)} rounds  bare {base_seconds:6.2f}s  "
        f"supervised {quiet_seconds:6.2f}s  overhead {100 * overhead:+5.1f}%  "
        f"identical={quiet_identical}"
    )
    results["overhead"] = {
        "rounds": len(base_records),
        "bare_seconds": round(base_seconds, 3),
        "supervised_seconds": round(quiet_seconds, 3),
        "overhead_fraction": round(overhead, 4),
        "records_identical": quiet_identical,
    }

    # ------------------------------------------------------------- #
    # Scenario 2: process chaos (crash / stall / torn checkpoints)
    # ------------------------------------------------------------- #
    chaos = ChaosModel(
        seed=args.seed,
        crash_rate=0.02,
        slow_rate=0.02,
        slow_seconds=2.0,
        corrupt_rate=0.2,
    )
    chaos_config = SupervisorConfig(
        retry=RetryPolicy(max_retries=6, base_delay=0.05, seed=args.seed),
        round_deadline=1.0,
        checkpoint_every=checkpoint_every,
        keep_checkpoints=3,
    )
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        chaos_records, chaos_seconds, supervisor = supervised_run(
            config,
            history,
            live,
            chaos_config,
            checkpoint_dir=Path(tmp),
            chaos=chaos,
        )
        health = supervisor.health()
    chaos_identical = identical(base_records, chaos_records)
    if not chaos_identical:
        failures.append("process-chaos: recovered records diverged from fault-free run")
    if health.crashes_recovered == 0 or health.slow_rounds == 0:
        failures.append("process-chaos: chaos model never fired (soak proved nothing)")
    print(
        f"process-chaos   {len(chaos_records)} rounds in {chaos_seconds:6.2f}s  "
        f"crashes {health.crashes_recovered}  slow {health.slow_rounds}  "
        f"retries {health.retries}  checkpoints {health.checkpoints_written}  "
        f"identical={chaos_identical}"
    )
    results["process_chaos"] = {
        "rounds": len(chaos_records),
        "seconds": round(chaos_seconds, 3),
        "records_identical": chaos_identical,
        "health": health.to_dict(),
    }
    args.health_out.write_text(health.to_json() + "\n")

    # ------------------------------------------------------------- #
    # Scenario 3: sensor flapping -> breaker quarantine lifecycle
    # ------------------------------------------------------------- #
    flap_sensor = 3
    flap_start = live_length // 3
    flap_stop = flap_start + 30 * step
    faults = FaultModel(
        flapping=((flap_sensor, flap_start, flap_stop, step, 0.75),),
        seed=args.seed,
    )
    flapped = faults.apply(live)
    breaker_policy = BreakerPolicy(
        failure_threshold=3, open_rounds=8, probation_rounds=4
    )
    flap_config = SupervisorConfig(
        breaker=breaker_policy, checkpoint_every=checkpoint_every
    )
    with tempfile.TemporaryDirectory(prefix="repro-soak-flap-") as tmp:
        flap_records, flap_seconds, flap_supervisor = supervised_run(
            config, history, flapped, flap_config, checkpoint_dir=Path(tmp)
        )
    flap_health = flap_supervisor.health()
    breaker = flap_supervisor.breakers[flap_sensor]
    # Rounds whose window closed before the flap began saw untouched data.
    clean_prefix = sum(1 for r in base_records if r.stop <= flap_start)
    prefix_identical = identical(
        base_records[:clean_prefix], flap_records[:clean_prefix]
    )
    if not prefix_identical:
        failures.append("sensor-flapping: pre-flap rounds diverged from fault-free run")
    if flap_health.breaker_trips == 0:
        failures.append("sensor-flapping: breaker never tripped")
    if breaker.state is not BreakerState.CLOSED:
        failures.append(
            f"sensor-flapping: breaker stuck {breaker.state.value} after the flap healed"
        )
    if len(flap_records) != len(base_records):
        failures.append("sensor-flapping: stream did not complete every round")
    print(
        f"sensor-flapping {len(flap_records)} rounds in {flap_seconds:6.2f}s  "
        f"trips {flap_health.breaker_trips}  "
        f"final={breaker.state.value}  degraded {flap_health.degraded_rounds}  "
        f"prefix_identical={prefix_identical}"
    )
    results["sensor_flapping"] = {
        "rounds": len(flap_records),
        "seconds": round(flap_seconds, 3),
        "clean_prefix_rounds": clean_prefix,
        "prefix_identical": prefix_identical,
        "breaker_trips": flap_health.breaker_trips,
        "final_breaker_state": breaker.state.value,
        "health": flap_health.to_dict(),
    }

    payload = {
        "benchmark": "supervised_soak",
        "quick": args.quick,
        "config": {
            "rounds": rounds,
            "sensors": n,
            "window": window,
            "step": step,
            "seed": args.seed,
            "checkpoint_every": checkpoint_every,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
        },
        "results": results,
        "failures": failures,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out} and {args.health_out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("soak OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
