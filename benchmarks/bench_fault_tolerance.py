"""Fault tolerance: F1 degradation vs. data-fault rate.

Not a paper table — this validates the fault-tolerance layer around the
reproduction.  The clean test feed of one dataset is corrupted with
missing-at-random gaps at increasing rates (plus one whole-sensor dropout at
every non-zero rate), and CAD runs in degraded-data mode
(``allow_missing=True``) over each corrupted feed.

Expected shape: the rate-0 row is *exactly* the clean seed pipeline (the
degraded-data path fast-paths to the clean kernels when no reading is
missing), and F1 decays gracefully — not cliff-like — as the fault rate
grows, while the data-quality reports account for the corruption.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.cad_adapter import CADDetector
from repro.bench import emit, format_table, tuned_cad_config
from repro.datasets import FaultModel, load_dataset
from repro.evaluation import best_f1
from repro.timeseries import MultivariateTimeSeries

DATASET = "psm-sim"
FAULT_RATES = (0.0, 0.01, 0.02, 0.05, 0.10)
#: The sensor silenced for the whole test segment at every non-zero rate.
DROPPED_SENSOR = 0


def fault_tolerance_results() -> list[dict[str, float]]:
    data = load_dataset(DATASET)
    clean_config = tuned_cad_config(data)

    # Seed pipeline: the exact configuration every paper benchmark runs.
    baseline = CADDetector(clean_config)
    baseline.fit(data.history)
    clean_scores = baseline.score(data.test)
    clean_pa = best_f1(clean_scores, data.labels, "pa")
    clean_dpa = best_f1(clean_scores, data.labels, "dpa")

    degraded_config = replace(clean_config, allow_missing=True)
    rows = []
    for rate in FAULT_RATES:
        if rate == 0.0:
            faults = FaultModel()
        else:
            faults = FaultModel(
                missing_rate=rate,
                dropout=((DROPPED_SENSOR, 0, data.test.length),),
                seed=int(1000 * rate),
            )
        test = MultivariateTimeSeries(
            faults.apply(data.test.values), allow_missing=True
        )
        detector = CADDetector(degraded_config)
        detector.fit(data.history)
        scores = detector.score(test)
        result = detector.last_result
        degraded = result.degraded_rounds()
        rows.append(
            {
                "rate": rate,
                "f1_pa": best_f1(scores, data.labels, "pa"),
                "f1_dpa": best_f1(scores, data.labels, "dpa"),
                "degraded_rounds": float(len(degraded)),
                "total_rounds": float(len(result.rounds)),
                "clean_pa": clean_pa,
                "clean_dpa": clean_dpa,
            }
        )
    return rows


def test_fault_tolerance(once):
    rows = once(fault_tolerance_results)

    table = [
        [
            f"{row['rate']:.2f}",
            f"{100 * row['f1_pa']:.1f}",
            f"{100 * row['f1_dpa']:.1f}",
            f"{int(row['degraded_rounds'])}/{int(row['total_rounds'])}",
        ]
        for row in rows
    ]
    emit(
        "fault_tolerance",
        format_table(
            ["fault rate", "F1_PA", "F1_DPA", "degraded rounds"],
            table,
            title=f"Fault tolerance on {DATASET} (x100; dropout of sensor "
            f"{DROPPED_SENSOR} at every non-zero rate)",
        ),
    )

    # Shape 1: degraded mode on clean data IS the seed pipeline, exactly.
    clean_row = rows[0]
    assert clean_row["f1_pa"] == clean_row["clean_pa"]
    assert clean_row["f1_dpa"] == clean_row["clean_dpa"]
    assert clean_row["degraded_rounds"] == 0

    # Shape 2: every faulted run completes and reports its degradation.
    for row in rows[1:]:
        assert row["degraded_rounds"] > 0
        assert 0.0 <= row["f1_dpa"] <= 1.0

    # Shape 3: detection survives moderate corruption — at 5% missing plus a
    # dead sensor the detector must still find most injected anomalies.
    at_5pct = next(row for row in rows if row["rate"] == 0.05)
    assert at_5pct["f1_dpa"] >= 0.5 * clean_row["f1_dpa"]
