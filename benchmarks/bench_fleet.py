"""Multi-tenant fleet soak: bit-identity and throughput vs solo runs.

Standalone script (like ``bench_soak.py``) — run it directly:

    PYTHONPATH=src python benchmarks/bench_fleet.py            # full soak
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick    # CI smoke

Three scenarios, one claim: an N-tenant :class:`repro.fleet.FleetManager`
multiplexed over one shared worker pool emits, per tenant, **exactly**
the records of N solo sequential runs.

``fleet-identity``
    Fault-free: N tenants with distinct feeds (and two *engine-check*
    tenants sharing one feed on different engines) streamed through the
    fleet with stage-A offload.  Every tenant's records must be
    bit-identical to its solo ``bare_run`` oracle, and the two
    engine-check tenants must agree with each other (the engine-identity
    gate extended to fleet outputs).  Aggregate fleet throughput is
    measured against the single-tenant baseline; the >= 3x scaling gate
    is enforced only where the host has enough cores to make scaling
    physically possible (recorded either way).
``fleet-chaos-kill``
    Per-tenant crash chaos + rotated checkpoints under a fleet manifest;
    the manager is dropped cold mid-stream and a new one resumes every
    tenant from the v4 manifest.  The concatenated (index-deduplicated)
    records must equal the fault-free oracles.
``fleet-delivery``
    Envelope ingest: each tenant's feed is shuffled and redelivered by a
    seeded :class:`repro.ingest.DeliveryChaosModel` within its frontier's
    disorder horizon, with tenants' deliveries interleaved arbitrarily.
    One tenant's delivery faults must never perturb another tenant's
    rounds: all tenants must stay bit-identical to their oracles.

Results go to ``BENCH_fleet.json`` (uploaded by the fleet-soak CI job).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import CADConfig
from repro.core.parallel import shutdown_worker_pool
from repro.fleet import FleetConfig, FleetManager, TenantSpec, anomaly_feed
from repro.ingest import DeliveryChaosModel, FrontierConfig, envelopes_from_matrix
from repro.runtime import ChaosModel, SupervisorConfig, VirtualClock

from bench_soak import bare_run, identical, synthetic_values


def make_history(values: np.ndarray, window: int):
    from repro.timeseries import MultivariateTimeSeries

    return MultivariateTimeSeries(values, allow_missing=True)


def tenant_feeds(tenants, n, t_total, window, seed):
    """Per-tenant (history, live) pairs from distinct synthetic seeds."""
    feeds = {}
    for i, tenant in enumerate(tenants):
        values = synthetic_values(n, t_total + 4 * window, seed + 17 * i)
        history = make_history(values[:, : 4 * window], window)
        feeds[tenant] = (history, values[:, 4 * window :])
    return feeds


def fleet_stream(manager, tenants, feeds, *, kill_and_resume=None):
    """Drive a fleet sample-by-sample; returns (records, seconds, manager).

    ``kill_and_resume`` is ``(sample_index, remake)``: at that index the
    manager is dropped cold (no finish, no checkpoint flush) and
    ``remake()`` builds the successor, which resumes from the manifest
    and is re-fed each tenant's stream from its restored position.
    """
    t_total = feeds[tenants[0]][1].shape[1]
    records = []
    start = time.perf_counter()
    index = 0
    while index < t_total:
        for tenant in tenants:
            manager.submit(tenant, feeds[tenant][1][:, index])
        records.extend(manager.pump())
        if kill_and_resume is not None and index == kill_and_resume[0]:
            del manager
            manager = kill_and_resume[1]()
            for tenant in tenants:
                resume_from = manager.supervisor(tenant).stream.samples_seen
                for j in range(resume_from, index + 1):
                    manager.submit(tenant, feeds[tenant][1][:, j])
            records.extend(manager.drain())
            kill_and_resume = None
        index += 1
    records.extend(manager.finish())
    return records, time.perf_counter() - start, manager


def split_by_tenant(records, tenants):
    by_tenant = {tenant: [] for tenant in tenants}
    for fleet_record in records:
        by_tenant[fleet_record.tenant].append(fleet_record.record)
    return by_tenant


def dedup_by_index(records):
    """Drop re-emitted rounds after a resume (stable on sorted index)."""
    records = sorted(records, key=lambda r: r.index)
    unique = []
    for record in records:
        if not unique or record.index != unique[-1].index:
            unique.append(record)
    return unique


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke (seconds)")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_fleet.json"), help="output JSON path"
    )
    args = parser.parse_args()

    if args.quick:
        n, window, step, rounds, n_tenants, jobs = 16, 64, 8, 60, 3, 2
    else:
        n, window, step, rounds, n_tenants, jobs = 32, 128, 8, 250, 8, 4
    t_total = window + step * (rounds - 1)
    shards = 16
    cpus = os.cpu_count() or 1

    failures: list[str] = []
    results: dict[str, dict] = {}

    def config(engine="fast"):
        return CADConfig(
            window=window, step=step, engine=engine, allow_missing=True
        )

    def spec(tenant, engine="fast", **kwargs):
        return TenantSpec(tenant, config(engine), n, **kwargs)

    print(
        f"fleet soak: {n_tenants} tenants x {rounds} rounds  "
        f"n={n} w={window} s={step}  jobs={jobs} shards={shards}  cpus={cpus}"
    )

    # ------------------------------------------------------------- #
    # Scenario 1: fault-free identity + throughput scaling
    # ------------------------------------------------------------- #
    tenants = [f"tenant-{i:02d}" for i in range(n_tenants)]
    feeds = tenant_feeds(tenants, n, t_total, window, args.seed)
    # Engine-check pair: same feed, different engines, must agree.
    eng_feed = tenant_feeds(["engcheck"], n, t_total, window, args.seed + 999)[
        "engcheck"
    ]
    eng_tenants = ["engcheck-fast", "engcheck-ref"]
    feeds.update({t: eng_feed for t in eng_tenants})

    oracles = {}
    solo_seconds = {}
    for tenant in tenants:
        oracles[tenant], solo_seconds[tenant] = bare_run(
            config(), feeds[tenant][0], feeds[tenant][1]
        )
    oracles["engcheck-fast"], _ = bare_run(config(), *eng_feed)
    oracles["engcheck-ref"], _ = bare_run(config("reference"), *eng_feed)

    all_tenants = tenants + eng_tenants
    manager = FleetManager(
        [spec(t) for t in tenants]
        + [spec("engcheck-fast"), spec("engcheck-ref", engine="reference")],
        fleet=FleetConfig(shards=shards, seed=args.seed, quantum=64, offload_jobs=jobs),
    )
    manager.warm_up({t: feeds[t][0] for t in all_tenants})
    records, fleet_seconds, manager = fleet_stream(manager, all_tenants, feeds)
    by_tenant = split_by_tenant(records, all_tenants)

    per_tenant_identical = {
        tenant: identical(by_tenant[tenant], oracles[tenant])
        for tenant in all_tenants
    }
    identity_ok = all(per_tenant_identical.values())
    engine_identity = identical(by_tenant["engcheck-fast"], by_tenant["engcheck-ref"])
    if not identity_ok:
        broken = sorted(t for t, ok in per_tenant_identical.items() if not ok)
        failures.append(f"fleet-identity: tenants diverged from solo oracles: {broken}")
    if not engine_identity:
        failures.append("fleet-identity: fast and reference engines diverged in-fleet")

    total_rounds = sum(len(by_tenant[t]) for t in all_tenants)
    solo_total = sum(solo_seconds.values())
    single_rps = len(oracles[tenants[0]]) / max(solo_seconds[tenants[0]], 1e-9)
    aggregate_rps = total_rounds / max(fleet_seconds, 1e-9)
    speedup = aggregate_rps / max(single_rps, 1e-9)
    throughput_gate = (not args.quick) and cpus >= 8
    if throughput_gate and speedup < 3.0:
        failures.append(
            f"fleet-identity: aggregate throughput {speedup:.2f}x single-tenant, "
            "gate requires >= 3x at equal pool size"
        )
    health = manager.health()
    print(
        f"fleet-identity    {total_rounds} rounds in {fleet_seconds:6.2f}s  "
        f"(solo total {solo_total:6.2f}s)  aggregate {aggregate_rps:7.1f} r/s  "
        f"single {single_rps:7.1f} r/s  speedup {speedup:4.2f}x  "
        f"identical={identity_ok} engines={engine_identity}"
    )
    results["fleet_identity"] = {
        "tenants": len(all_tenants),
        "rounds_total": total_rounds,
        "seconds": round(fleet_seconds, 3),
        "solo_seconds_total": round(solo_total, 3),
        "records_identical": identity_ok,
        "engine_identity": engine_identity,
        "per_tenant_identical": per_tenant_identical,
        "aggregate_rounds_per_sec": round(aggregate_rps, 2),
        "single_rounds_per_sec": round(single_rps, 2),
        "speedup_vs_single": round(speedup, 3),
        "throughput_gate_enforced": throughput_gate,
        "offloaded_rounds": health.offloaded_rounds,
        "abnormal_feed": len(anomaly_feed(records)),
    }
    if health.offloaded_rounds == 0:
        failures.append("fleet-identity: no rounds were offloaded to the pool")

    # ------------------------------------------------------------- #
    # Scenario 2: chaos + cold kill + manifest resume
    # ------------------------------------------------------------- #
    chaos_tenants = tenants[: max(3, n_tenants // 2)]
    kill_at = t_total // 2
    with tempfile.TemporaryDirectory() as tmp:
        manifest_dir = Path(tmp) / "fleet"

        def remake(resume: bool = True) -> FleetManager:
            return FleetManager(
                [
                    spec(
                        tenant,
                        supervisor=SupervisorConfig(
                            queue_capacity=4096, checkpoint_every=7
                        ),
                        chaos=ChaosModel(seed=args.seed + i, crash_rate=0.04),
                    )
                    for i, tenant in enumerate(chaos_tenants)
                ],
                fleet=FleetConfig(
                    shards=shards, seed=args.seed, quantum=64, offload_jobs=jobs
                ),
                manifest_dir=manifest_dir,
                clock=VirtualClock(),
                resume=resume,
            )

        manager = remake(resume=False)
        manager.warm_up({t: feeds[t][0] for t in chaos_tenants})
        resumed_positions = {}

        def resumed_manager() -> FleetManager:
            successor = remake()
            for tenant in chaos_tenants:
                resumed_positions[tenant] = successor.supervisor(
                    tenant
                ).stream.samples_seen
            return successor

        records, chaos_seconds, manager = fleet_stream(
            manager,
            chaos_tenants,
            feeds,
            kill_and_resume=(kill_at, resumed_manager),
        )
        health = manager.health()

    by_tenant = split_by_tenant(records, chaos_tenants)
    chaos_identical = all(
        identical(dedup_by_index(by_tenant[tenant]), oracles[tenant])
        for tenant in chaos_tenants
    )
    if not chaos_identical:
        failures.append("fleet-chaos-kill: records diverged from fault-free oracles")
    if health.crashes_recovered == 0:
        failures.append("fleet-chaos-kill: chaos never crashed a round (proved nothing)")
    if health.checkpoints_written == 0:
        failures.append("fleet-chaos-kill: no checkpoints were written")
    if any(resumed_positions[t] == 0 for t in chaos_tenants):
        failures.append(
            "fleet-chaos-kill: a tenant resumed from scratch (manifest "
            f"restored positions {resumed_positions})"
        )
    print(
        f"fleet-chaos-kill  {sum(len(v) for v in by_tenant.values())} records "
        f"in {chaos_seconds:6.2f}s  crashes {health.crashes_recovered}  "
        f"fallbacks {health.stage_fallbacks}  checkpoints "
        f"{health.checkpoints_written}  identical={chaos_identical}"
    )
    results["fleet_chaos_kill"] = {
        "tenants": len(chaos_tenants),
        "kill_at_sample": kill_at,
        "seconds": round(chaos_seconds, 3),
        "records_identical": chaos_identical,
        "crashes_recovered": health.crashes_recovered,
        "retries": health.retries,
        "stage_fallbacks": health.stage_fallbacks,
        "cache_resyncs": health.cache_resyncs,
        "checkpoints_written": health.checkpoints_written,
        "resumed_samples_seen": {
            t: resumed_positions[t] for t in sorted(resumed_positions)
        },
    }

    # ------------------------------------------------------------- #
    # Scenario 3: per-tenant delivery chaos, interleaved tenants
    # ------------------------------------------------------------- #
    horizon = 6
    delivery_tenants = tenants[: max(3, n_tenants // 2)]
    deliveries = {}
    for i, tenant in enumerate(delivery_tenants):
        clean = list(
            envelopes_from_matrix(feeds[tenant][1], tenant=tenant)
        )
        chaos = DeliveryChaosModel(
            seed=args.seed + 31 * i,
            out_of_order_rate=0.25,
            max_disorder=horizon,
            redelivery_rate=0.05,
        )
        deliveries[tenant] = chaos.deliver(clean)

    manager = FleetManager(
        [
            spec(
                tenant,
                frontier=FrontierConfig(n_sensors=n, disorder_horizon=horizon),
            )
            for tenant in delivery_tenants
        ],
        fleet=FleetConfig(shards=shards, seed=args.seed, quantum=64, offload_jobs=jobs),
    )
    manager.warm_up({t: feeds[t][0] for t in delivery_tenants})
    records = []
    start = time.perf_counter()
    cursors = {t: 0 for t in delivery_tenants}
    burst = 4 * n  # envelopes per tenant per scheduling turn
    remaining = True
    while remaining:
        remaining = False
        for tenant in delivery_tenants:
            queue = deliveries[tenant]
            cursor = cursors[tenant]
            if cursor < len(queue):
                remaining = True
                for envelope in queue[cursor : cursor + burst]:
                    manager.ingest(envelope)
                cursors[tenant] = cursor + burst
        records.extend(manager.pump())
    records.extend(manager.drain())
    records.extend(manager.finish())
    delivery_seconds = time.perf_counter() - start
    health = manager.health()

    by_tenant = split_by_tenant(records, delivery_tenants)
    delivery_identical = all(
        identical(by_tenant[tenant], oracles[tenant]) for tenant in delivery_tenants
    )
    if not delivery_identical:
        failures.append("fleet-delivery: delivery chaos perturbed a tenant's rounds")
    if health.samples_reordered == 0:
        failures.append("fleet-delivery: nothing was reordered (proved nothing)")
    if health.samples_deduped == 0:
        failures.append("fleet-delivery: nothing was redelivered (proved nothing)")
    print(
        f"fleet-delivery    {sum(len(v) for v in by_tenant.values())} records "
        f"in {delivery_seconds:6.2f}s  reordered {health.samples_reordered}  "
        f"deduped {health.samples_deduped}  identical={delivery_identical}"
    )
    results["fleet_delivery"] = {
        "tenants": len(delivery_tenants),
        "horizon": horizon,
        "seconds": round(delivery_seconds, 3),
        "records_identical": delivery_identical,
        "samples_reordered": health.samples_reordered,
        "samples_deduped": health.samples_deduped,
    }

    shutdown_worker_pool()
    results["all_outputs_identical"] = bool(
        identity_ok and engine_identity and chaos_identical and delivery_identical
    )

    payload = {
        "benchmark": "fleet_soak",
        "quick": args.quick,
        "config": {
            "tenants": n_tenants,
            "rounds_per_tenant": rounds,
            "sensors": n,
            "window": window,
            "step": step,
            "shards": shards,
            "offload_jobs": jobs,
            "seed": args.seed,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
            "cpus": cpus,
        },
        "results": results,
        "failures": failures,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("fleet soak OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
