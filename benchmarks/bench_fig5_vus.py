"""Figure 5: VUS-ROC and VUS-PR after PA and after DPA, all methods.

Expected shape (paper): CAD achieves the highest volumes with only a small
PA -> DPA drop, and keeps its level on the larger IS datasets where the
baselines fall off.
"""

from __future__ import annotations

from repro.baselines import METHOD_NAMES
from repro.bench import TABLE3_DATASETS, emit, format_table, run_method
from repro.datasets import load_dataset
from repro.evaluation import vus


def fig5_results() -> dict[str, dict[str, dict[str, float]]]:
    """{method: {dataset: {vus_roc_pa, vus_pr_pa, vus_roc_dpa, vus_pr_dpa}}}"""
    results: dict[str, dict[str, dict[str, float]]] = {}
    for method in METHOD_NAMES:
        per_dataset = {}
        for dataset_name in TABLE3_DATASETS:
            labels = load_dataset(dataset_name).labels
            scores = run_method(method, dataset_name, seed=0).scores
            after_pa = vus(scores, labels, mode="pa")
            after_dpa = vus(scores, labels, mode="dpa")
            per_dataset[dataset_name] = {
                "vus_roc_pa": after_pa.vus_roc,
                "vus_pr_pa": after_pa.vus_pr,
                "vus_roc_dpa": after_dpa.vus_roc,
                "vus_pr_dpa": after_dpa.vus_pr,
            }
        results[method] = per_dataset
    return results


def test_fig5_vus(once):
    results = once(fig5_results)

    for metric, label in (
        ("vus_roc", "VUS-ROC"),
        ("vus_pr", "VUS-PR"),
    ):
        headers = ["Method"]
        for dataset_name in TABLE3_DATASETS:
            headers += [f"{dataset_name} PA", f"{dataset_name} DPA"]
        rows = []
        for method in METHOD_NAMES:
            row: list[object] = [method]
            for dataset_name in TABLE3_DATASETS:
                cell = results[method][dataset_name]
                row += [
                    f"{100 * cell[f'{metric}_pa']:.1f}",
                    f"{100 * cell[f'{metric}_dpa']:.1f}",
                ]
            rows.append(row)
        emit(
            f"fig5_{metric}",
            format_table(headers, rows, title=f"Figure 5: {label} after PA / DPA (x100)"),
        )

    # Shape: DPA never beats PA, and CAD's drop stays small on average.
    for method in METHOD_NAMES:
        for dataset_name in TABLE3_DATASETS:
            cell = results[method][dataset_name]
            assert cell["vus_roc_dpa"] <= cell["vus_roc_pa"] + 0.02
