"""Table IV: abnormal time and abnormal sensor detection on SMD.

Runs the methods on the SMD subset simulations (paper: 28 subsets, no
warm-up for CAD's statistics beyond each subset's own history segment) and
reports mean ± std F1_PA / F1_DPA plus "OP": on how many subsets CAD
outperforms each baseline.  The sensor part compares CAD's F1_sensor with
ECOD and RCoders — the only baselines with sensor attribution.

Expected shape (paper): CAD outperforms the deep and univariate baselines
on most subsets and beats ECOD/RCoders on F1_sensor on all subsets.
"""

from __future__ import annotations

import numpy as np

from conftest import smd_subset_count
from repro.baselines import (
    METHOD_NAMES,
    deterministic_methods,
    make_detector,
    sensors_from_scores,
)
from repro.bench import emit, format_table, run_repeats, tuned_cad_config
from repro.datasets import load_dataset, smd_subset_names
from repro.evaluation import f1_sensor


def smd_time_results(subsets: list[str]) -> dict[str, dict[str, dict[str, float]]]:
    """{method: {subset: {"pa": mean, "dpa": mean}}}"""
    deterministic = set(deterministic_methods())
    results: dict[str, dict[str, dict[str, float]]] = {}
    for method in METHOD_NAMES:
        per_subset = {}
        for subset in subsets:
            labels = load_dataset(subset).labels
            runs = run_repeats(method, subset, method in deterministic)
            per_subset[subset] = {
                "pa": float(np.mean([run.f1(labels, "pa") for run in runs])),
                "dpa": float(np.mean([run.f1(labels, "dpa") for run in runs])),
            }
        results[method] = per_subset
    return results


def smd_sensor_results(subsets: list[str]) -> dict[str, dict[str, float]]:
    """F1_sensor per subset for the three attribution-capable methods."""
    results: dict[str, dict[str, float]] = {"CAD": {}, "ECOD": {}, "RCoders": {}}
    for subset in subsets:
        data = load_dataset(subset)
        cad = make_detector("CAD", cad_config=tuned_cad_config(data))
        cad.fit(data.history)
        cad.score(data.test)
        results["CAD"][subset] = f1_sensor(
            cad.predicted_events(), data.events, data.n_sensors
        ).f1
        for name in ("ECOD", "RCoders"):
            detector = make_detector(name, seed=0)
            detector.fit(data.history)
            matrix = detector.sensor_scores(data.test)
            events = sensors_from_scores(matrix, data.events)
            results[name][subset] = f1_sensor(events, data.events, data.n_sensors).f1
    return results


def test_table4_smd(once):
    subsets = smd_subset_names()[: smd_subset_count()]

    def experiment():
        return smd_time_results(subsets), smd_sensor_results(subsets)

    time_results, sensor_results = once(experiment)

    headers = ["Method", "OP_PA", "F1_PA mean±std", "OP_DPA", "F1_DPA mean±std", "OP_sensor"]
    rows: list[list[object]] = []
    cad = time_results["CAD"]
    for method in METHOD_NAMES:
        per = time_results[method]
        pa_values = [per[s]["pa"] for s in subsets]
        dpa_values = [per[s]["dpa"] for s in subsets]
        if method == "CAD":
            op_pa = op_dpa = "-"
        else:
            op_pa = sum(1 for s in subsets if cad[s]["pa"] > per[s]["pa"])
            op_dpa = sum(1 for s in subsets if cad[s]["dpa"] > per[s]["dpa"])
        if method in ("ECOD", "RCoders"):
            op_sensor = sum(
                1
                for s in subsets
                if sensor_results["CAD"][s] > sensor_results[method][s]
            )
        else:
            op_sensor = "-" if method == "CAD" else "/"
        rows.append(
            [
                method,
                op_pa,
                f"{100 * np.mean(pa_values):.1f}±{100 * np.std(pa_values):.1f}",
                op_dpa,
                f"{100 * np.mean(dpa_values):.1f}±{100 * np.std(dpa_values):.1f}",
                op_sensor,
            ]
        )

    emit(
        "table4_smd",
        format_table(
            headers,
            rows,
            title=f"Table IV: SMD ({len(subsets)} subsets; OP = #subsets CAD outperforms)",
        ),
    )

    # Shape: CAD's sensor localisation holds its own against ECOD (the
    # paper reports 28/28 wins over both ECOD and RCoders; on these
    # simulations RCoders' per-sensor reconstruction errors localise the
    # injected faults unusually well — recorded as a deviation in
    # EXPERIMENTS.md, reported in the table above).
    ecod_wins = sum(
        1 for s in subsets if sensor_results["CAD"][s] >= sensor_results["ECOD"][s]
    )
    assert ecod_wins >= len(subsets) / 2, "CAD should match/beat ECOD on F1_sensor"
