"""Figure 7: case study — how early is each method's first alarm?

Takes one SMD subset simulation, picks its first labelled anomaly, and
reports each method's detection offset (points after onset; the paper's
figure annotates "CAD, USAD and S2G identify this anomaly once it occurs,
while other methods take at most 1,285 time points").  Also reports CAD's
detected abnormal sensors against the labelled ones.
"""

from __future__ import annotations

from repro.baselines import METHOD_NAMES, make_detector
from repro.bench import emit, format_table, run_method, tuned_cad_config
from repro.datasets import load_dataset
from repro.evaluation import best_predictions, detection_delays

CASE_DATASET = "smd-sim-06"


def fig7_results() -> tuple[dict[str, list], list[int], frozenset[int]]:
    dataset = load_dataset(CASE_DATASET)
    delays = {}
    for method in METHOD_NAMES:
        run = run_method(method, CASE_DATASET, seed=0)
        predictions = best_predictions(run.scores, dataset.labels, "dpa")
        delays[method] = detection_delays(predictions, dataset.labels)

    cad = make_detector("CAD", cad_config=tuned_cad_config(dataset))
    cad.fit(dataset.history)
    cad.score(dataset.test)
    first_event = dataset.events[0]
    detected_sensors: frozenset[int] = frozenset()
    for start, stop, sensors in cad.predicted_events():
        if start < first_event.stop and first_event.start < stop:
            detected_sensors |= sensors
    return delays, [e.start for e in dataset.events], first_event.sensors


def test_fig7_case_study(once):
    delays, onsets, true_sensors = once(fig7_results)

    headers = ["Method", *[f"anomaly@{start}" for start in onsets]]
    rows = []
    for method, per_anomaly in delays.items():
        rows.append(
            [
                method,
                *["miss" if d is None else f"+{d}" for d in per_anomaly],
            ]
        )
    table = format_table(
        headers, rows, title=f"Figure 7 case study on {CASE_DATASET}: first-alarm delay (points)"
    )
    table += f"\n\nLabelled sensors of anomaly 1: {sorted(true_sensors)}"

    emit("fig7_case_study", table)

    # Shape: CAD detects the case-study anomalies it flags with small delay
    # relative to the slowest detector.
    cad_delays = [d for d in delays["CAD"] if d is not None]
    assert cad_delays, "CAD should detect at least one case-study anomaly"
