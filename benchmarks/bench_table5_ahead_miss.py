"""Table V: the relative DaE measures Ahead and Miss (CAD vs each baseline).

For every baseline, binarise both methods' scores at their DPA-optimal
thresholds and compute Ahead (fraction of CAD-detected anomalies CAD finds
first) and Miss (fraction of CAD-missed anomalies the baseline finds).

Expected shape (paper): Ahead >= 50% against most baselines with small
Miss — CAD detects anomalies earlier than the competition.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import METHOD_NAMES
from repro.bench import TABLE3_DATASETS, emit, format_table, run_method
from repro.datasets import load_dataset
from repro.evaluation import ahead_miss, best_predictions


def table5_results() -> dict[str, dict[str, tuple[float, float]]]:
    """{baseline: {dataset: (ahead, miss)}} of CAD vs baseline."""
    results: dict[str, dict[str, tuple[float, float]]] = {}
    predictions = {}
    for dataset_name in TABLE3_DATASETS:
        labels = load_dataset(dataset_name).labels
        for method in METHOD_NAMES:
            run = run_method(method, dataset_name, seed=0)
            predictions[(method, dataset_name)] = best_predictions(
                run.scores, labels, "dpa"
            )
    for method in METHOD_NAMES:
        if method == "CAD":
            continue
        per_dataset = {}
        for dataset_name in TABLE3_DATASETS:
            labels = load_dataset(dataset_name).labels
            relative = ahead_miss(
                predictions[("CAD", dataset_name)],
                predictions[(method, dataset_name)],
                labels,
            )
            per_dataset[dataset_name] = (relative.ahead, relative.miss)
        results[method] = per_dataset
    return results


def test_table5_ahead_miss(once):
    results = once(table5_results)

    headers = ["CAD vs"]
    for dataset_name in TABLE3_DATASETS:
        headers += [f"{dataset_name} Ah", f"{dataset_name} Ms"]
    rows = []
    for method, per_dataset in results.items():
        row: list[object] = [method]
        for dataset_name in TABLE3_DATASETS:
            ahead, miss = per_dataset[dataset_name]
            row += [f"{100 * ahead:.1f}", f"{100 * miss:.1f}"]
        rows.append(row)

    emit(
        "table5_ahead_miss",
        format_table(headers, rows, title="Table V: Ahead (Ah) and Miss (Ms), x100"),
    )

    # Shape: on average CAD detects at least half of its detections first.
    aheads = [a for per in results.values() for a, _ in per.values()]
    assert float(np.mean(aheads)) >= 0.4, "CAD should mostly detect anomalies first"
