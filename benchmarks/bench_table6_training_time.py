"""Table VI: training time of the MTS methods (seconds).

For CAD "training" is the warm-up pass; for LOF/ECOD/IForest it is model
fitting; for USAD/RCoders it is neural training.

Expected shape (paper): CAD's warm-up is orders of magnitude cheaper than
the deep methods' training.
"""

from __future__ import annotations

from repro.baselines import MTS_METHOD_NAMES
from repro.bench import TABLE3_DATASETS, emit, format_table, run_method


def test_table6_training_time(once):
    def experiment():
        times = {}
        for method in MTS_METHOD_NAMES:
            times[method] = {
                dataset: run_method(method, dataset, seed=0).fit_seconds
                for dataset in TABLE3_DATASETS
            }
        return times

    times = once(experiment)

    headers = ["Method", *TABLE3_DATASETS]
    rows = [
        [method, *(f"{times[method][d]:.2f}" for d in TABLE3_DATASETS)]
        for method in MTS_METHOD_NAMES
    ]
    emit(
        "table6_training_time",
        format_table(headers, rows, title="Table VI: training / warm-up time (s)"),
    )

    # Shape: CAD's warm-up beats the neural baselines' training.
    for dataset in TABLE3_DATASETS:
        assert times["CAD"][dataset] < max(
            times["USAD"][dataset], times["RCoders"][dataset]
        ) * 20, "CAD warm-up should not dwarf neural training"
