"""Table VII: testing (detection) time and CAD's time per round (TPR).

TPR must stay below the step duration for real-time operation (Section
VI-D): ``TPR < s / freq``.  The bench reports the maximum sampling
frequency CAD could sustain on each dataset.

Expected shape (paper): CAD's detection takes seconds and TPR is
milliseconds, supporting real-time rates far above typical sensor
frequencies.
"""

from __future__ import annotations

from repro.baselines import METHOD_NAMES
from repro.bench import TABLE3_DATASETS, emit, format_table, run_method, tuned_cad_config
from repro.datasets import load_dataset


def test_table7_testing_time(once):
    def experiment():
        times = {}
        for method in METHOD_NAMES:
            times[method] = {
                dataset: run_method(method, dataset, seed=0).score_seconds
                for dataset in TABLE3_DATASETS
            }
        # CAD's rounds per dataset derive from the tuned window spec.
        rounds = {}
        for dataset_name in TABLE3_DATASETS:
            dataset = load_dataset(dataset_name)
            config = tuned_cad_config(dataset)
            rounds[dataset_name] = (
                dataset.test.length - config.window
            ) // config.step + 1
        return times, rounds

    times, rounds = once(experiment)

    headers = ["Method", *TABLE3_DATASETS]
    rows = []
    for method in METHOD_NAMES:
        rows.append(
            [method, *(f"{times[method][d]:.2f}" for d in TABLE3_DATASETS)]
        )
        if method == "CAD":
            tpr_cells = []
            for dataset in TABLE3_DATASETS:
                tpr_ms = 1000.0 * times["CAD"][dataset] / rounds[dataset]
                tpr_cells.append(f"{tpr_ms:.1f}ms")
            rows.append(["TPR", *tpr_cells])

    emit(
        "table7_testing_time",
        format_table(headers, rows, title="Table VII: testing time (s) and CAD TPR"),
    )

    # Shape: real-time feasibility — TPR well under one second per round.
    for dataset in TABLE3_DATASETS:
        tpr = times["CAD"][dataset] / rounds[dataset]
        assert tpr < 1.0, f"CAD TPR on {dataset} too slow for real-time operation"
