"""Figure 4: Ahead/Miss outperformance counts on the SMD subsets.

For each baseline, compute CAD's Ahead and Miss on every SMD subset, then
sweep the ratio q from 0 to 1 and count the subsets with Ahead > q (left
plot) and Miss < q (right plot).

Expected shape (paper): most subsets sit at Ahead > 50% and more than half
at Miss < 50%.
"""

from __future__ import annotations

import numpy as np

from conftest import smd_subset_count
from repro.baselines import METHOD_NAMES
from repro.bench import emit, format_series, run_method
from repro.datasets import load_dataset, smd_subset_names
from repro.evaluation import ahead_miss, best_predictions


def fig4_pairs() -> dict[str, list]:
    subsets = smd_subset_names()[: smd_subset_count()]
    pairs: dict[str, list] = {m: [] for m in METHOD_NAMES if m != "CAD"}
    for subset in subsets:
        labels = load_dataset(subset).labels
        cad_pred = best_predictions(
            run_method("CAD", subset, seed=0).scores, labels, "dpa"
        )
        for method in pairs:
            other = best_predictions(
                run_method(method, subset, seed=0).scores, labels, "dpa"
            )
            pairs[method].append(ahead_miss(cad_pred, other, labels))
    return pairs


def test_fig4_ahead_miss_smd(once):
    pairs = once(fig4_pairs)
    ratios = np.linspace(0.0, 1.0, 11)

    sections = []
    for method, relative in pairs.items():
        aheads = np.array([p.ahead for p in relative])
        misses = np.array([p.miss for p in relative])
        ahead_counts = [(aheads > q).sum() for q in ratios]
        miss_counts = [(misses < q).sum() for q in ratios]
        sections.append(
            format_series(f"CAD vs {method}: #subsets with Ahead > q", ratios, ahead_counts)
        )
        sections.append(
            format_series(f"CAD vs {method}: #subsets with Miss < q", ratios, miss_counts)
        )

    emit("fig4_ahead_miss_smd", "\n\n".join(sections))

    # Shape: at q = 0.5, most comparisons favour CAD on Ahead.
    total = 0
    favourable = 0
    for relative in pairs.values():
        for p in relative:
            total += 1
            favourable += p.ahead > 0.5
    assert favourable >= total * 0.4, "CAD should lead on Ahead for most subsets"
