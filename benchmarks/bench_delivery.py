"""Delivery-chaos soak for the ingest frontier.

Standalone script (like ``bench_soak.py``) — run it directly:

    PYTHONPATH=src python benchmarks/bench_delivery.py            # full soak
    PYTHONPATH=src python benchmarks/bench_delivery.py --quick    # CI smoke

Three scenarios, one shared synthetic feed:

``frontier-overhead``
    The same clean, in-order feed pushed directly into ``StreamingCAD``
    and routed through an ``IngestFrontier`` as one-reading-per-envelope
    deliveries.  The frontier's records must be bit-identical and its
    per-envelope overhead is reported.
``delivery-chaos``
    A seeded :class:`repro.ingest.DeliveryChaosModel` shuffles delivery
    within the frontier's disorder horizon, redelivers a slice of
    envelopes (some far beyond the horizon) and skews every producer
    clock — under a supervised stream with checkpoints enabled.  The
    frontier must absorb all of it: the emitted ``RoundRecord`` sequence
    must be **bit-identical** to the fault-free run, and the health
    counters must show the chaos actually fired (reordered, deduped and
    late-dropped all nonzero — late drops are redelivered copies whose
    original already landed, so no data is lost).
``late-data``
    Delivery delays deliberately exceed the horizon, so real readings
    miss their flush — the one fault class the frontier cannot hide.
    Quantifies the two late policies: ``nan_patch`` preserves the round
    grid and degrades (NaN cells into degraded-data masking), ``drop``
    skips incomplete rows and shifts the grid.

Results go to ``BENCH_delivery.json``; the chaos scenario's final
``HealthSnapshot`` goes to ``BENCH_delivery_health.json`` (both uploaded
as CI artifacts by the delivery-chaos job).
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import CADConfig, StreamingCAD
from repro.ingest import (
    DeliveryChaosModel,
    FrontierConfig,
    IngestFrontier,
    envelopes_from_matrix,
)
from repro.runtime import StreamSupervisor, SupervisorConfig, VirtualClock
from repro.timeseries import MultivariateTimeSeries

from bench_soak import bare_run, identical, synthetic_values


def frontier_run(
    config: CADConfig,
    history: MultivariateTimeSeries,
    envelopes,
    frontier_config: FrontierConfig,
):
    """Unsupervised frontier loop: push envelopes, stream flushed rows."""
    frontier = IngestFrontier(frontier_config)
    stream = StreamingCAD(config, frontier_config.n_sensors)
    stream.warm_up(history)
    records = []
    start = time.perf_counter()
    for envelope in envelopes:
        frontier.push(envelope)
        while (row := frontier.pop_ready()) is not None:
            record = stream.push(row)
            if record is not None:
                records.append(record)
    for row in frontier.drain():
        record = stream.push(row)
        if record is not None:
            records.append(record)
    return records, time.perf_counter() - start, frontier


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke (seconds)")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--sensors", type=int, default=16)
    parser.add_argument("--window", type=int, default=64)
    parser.add_argument("--step", type=int, default=4)
    parser.add_argument("--horizon", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_delivery.json"), help="output JSON path"
    )
    parser.add_argument(
        "--health-out",
        type=Path,
        default=Path("BENCH_delivery_health.json"),
        help="final HealthSnapshot of the delivery-chaos scenario",
    )
    args = parser.parse_args()
    rounds = args.rounds if args.rounds is not None else (300 if args.quick else 2000)
    checkpoint_every = 25 if args.quick else 100

    window, step, n = args.window, args.step, args.sensors
    horizon = args.horizon
    live_length = window + (rounds - 1) * step
    values = synthetic_values(n, 4 * window + live_length, seed=args.seed)
    history = MultivariateTimeSeries(values[:, : 4 * window])
    live = values[:, 4 * window :]
    config = CADConfig(window=window, step=step, allow_missing=True, engine="fast")
    clean_envelopes = list(envelopes_from_matrix(live))
    failures = []
    results: dict[str, dict] = {}

    base_records, base_seconds = bare_run(config, history, live)

    # ------------------------------------------------------------- #
    # Scenario 1: frontier overhead (clean in-order envelopes)
    # ------------------------------------------------------------- #
    clean_config = FrontierConfig(n_sensors=n, disorder_horizon=horizon)
    clean_records, clean_seconds, clean_frontier = frontier_run(
        config, history, clean_envelopes, clean_config
    )
    clean_identical = identical(base_records, clean_records)
    if not clean_identical:
        failures.append(
            "frontier-overhead: clean-delivery records diverged from direct push"
        )
    stats = clean_frontier.stats()
    if stats.reordered or stats.deduped or stats.late_dropped or stats.rows_dropped:
        failures.append("frontier-overhead: clean delivery tripped fault counters")
    # Wall time includes per-envelope python dispatch; indicative only —
    # correctness (bit-identity) is the gate, like bench_soak's overhead.
    overhead = clean_seconds / base_seconds - 1.0
    per_envelope_us = 1e6 * clean_seconds / max(1, len(clean_envelopes))
    print(
        f"frontier-overhead {len(clean_records)} rounds  direct {base_seconds:6.2f}s  "
        f"frontier {clean_seconds:6.2f}s  {per_envelope_us:5.1f}us/envelope  "
        f"identical={clean_identical}"
    )
    results["frontier_overhead"] = {
        "rounds": len(clean_records),
        "envelopes": len(clean_envelopes),
        "direct_seconds": round(base_seconds, 3),
        "frontier_seconds": round(clean_seconds, 3),
        "overhead_fraction": round(overhead, 4),
        "per_envelope_us": round(per_envelope_us, 2),
        "records_identical": clean_identical,
    }

    # ------------------------------------------------------------- #
    # Scenario 2: delivery chaos under the supervisor (bit-identity)
    # ------------------------------------------------------------- #
    # Originals delayed at most `horizon` ticks always beat the flush;
    # redelivered copies may lag up to 4x the horizon, so a slice of them
    # arrives late and exercises the drop path with nothing to lose.
    chaos = DeliveryChaosModel(
        seed=args.seed,
        out_of_order_rate=0.25,
        max_disorder=horizon,
        redelivery_rate=0.05,
        redelivery_max_delay=4 * horizon,
        skew_magnitude=0.4,
    )
    delivered = chaos.deliver(clean_envelopes)
    chaos_frontier = IngestFrontier(
        FrontierConfig(
            n_sensors=n, disorder_horizon=horizon, skew=chaos.skews(n)
        )
    )
    with tempfile.TemporaryDirectory(prefix="repro-delivery-") as tmp:
        supervisor = StreamSupervisor(
            config,
            n,
            supervisor=SupervisorConfig(checkpoint_every=checkpoint_every),
            checkpoint_dir=Path(tmp),
            clock=VirtualClock(),
            frontier=chaos_frontier,
            resume=False,
        )
        supervisor.warm_up(history)
        start = time.perf_counter()
        chaos_records = supervisor.ingest_many(delivered)
        chaos_records.extend(supervisor.finish())
        chaos_seconds = time.perf_counter() - start
        health = supervisor.health()
    chaos_identical = identical(base_records, chaos_records)
    if not chaos_identical:
        failures.append(
            "delivery-chaos: records under chaotic delivery diverged from clean run"
        )
    if health.samples_reordered == 0:
        failures.append("delivery-chaos: nothing was reordered (soak proved nothing)")
    if health.samples_deduped == 0:
        failures.append("delivery-chaos: nothing was deduped (soak proved nothing)")
    if health.samples_late_dropped == 0:
        failures.append("delivery-chaos: nothing arrived late (soak proved nothing)")
    print(
        f"delivery-chaos    {len(chaos_records)} rounds in {chaos_seconds:6.2f}s  "
        f"delivered {len(delivered)}  reordered {health.samples_reordered}  "
        f"deduped {health.samples_deduped}  late {health.samples_late_dropped}  "
        f"identical={chaos_identical}"
    )
    results["delivery_chaos"] = {
        "rounds": len(chaos_records),
        "seconds": round(chaos_seconds, 3),
        "envelopes_delivered": len(delivered),
        "records_identical": chaos_identical,
        "health": health.to_dict(),
    }
    args.health_out.write_text(health.to_json() + "\n")

    # ------------------------------------------------------------- #
    # Scenario 3: late data beyond the horizon (policy comparison)
    # ------------------------------------------------------------- #
    late_chaos = DeliveryChaosModel(
        seed=args.seed + 1,
        out_of_order_rate=0.10,
        max_disorder=3 * horizon,
    )
    late_delivered = late_chaos.deliver(clean_envelopes)
    policies: dict[str, dict] = {}
    for policy in ("nan_patch", "drop"):
        records, seconds, frontier = frontier_run(
            config,
            history,
            late_delivered,
            FrontierConfig(
                n_sensors=n, disorder_horizon=horizon, late_policy=policy
            ),
        )
        stats = frontier.stats()
        degraded = sum(
            1 for r in records if r.quality is not None and r.quality.degraded
        )
        policies[policy] = {
            "rounds": len(records),
            "seconds": round(seconds, 3),
            "late_dropped": stats.late_dropped,
            "cells_nan_patched": stats.nan_patched,
            "rows_dropped": stats.rows_dropped,
            "rows_emitted": stats.rows_emitted,
            "degraded_rounds": degraded,
        }
        print(
            f"late-data/{policy:9s} {len(records)} rounds  "
            f"late {stats.late_dropped}  patched {stats.nan_patched}  "
            f"rows dropped {stats.rows_dropped}  degraded rounds {degraded}"
        )
    if policies["nan_patch"]["cells_nan_patched"] == 0:
        failures.append("late-data: nan_patch never patched a cell")
    if policies["nan_patch"]["rows_emitted"] != live.shape[1]:
        failures.append("late-data: nan_patch did not preserve the round grid")
    if policies["drop"]["rows_dropped"] == 0:
        failures.append("late-data: drop never dropped a row")
    if policies["drop"]["rows_emitted"] >= policies["nan_patch"]["rows_emitted"]:
        failures.append("late-data: drop emitted no fewer rows than nan_patch")
    results["late_data"] = {
        "max_disorder": 3 * horizon,
        "horizon": horizon,
        "policies": policies,
    }

    payload = {
        "benchmark": "delivery_soak",
        "quick": args.quick,
        "config": {
            "rounds": rounds,
            "sensors": n,
            "window": window,
            "step": step,
            "horizon": horizon,
            "seed": args.seed,
            "checkpoint_every": checkpoint_every,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
        },
        "results": results,
        "failures": failures,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out} and {args.health_out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("delivery soak OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
