"""Table III: abnormal time detection by PA and DPA.

Reproduces the paper's main effectiveness table: grid-searched F1_PA and
F1_DPA of all ten methods on the PSM/SWaT/IS-1/IS-2 simulations (mean ± std
over repeats for the stochastic methods) plus the average-rank column.

Expected shape (paper): CAD achieves the best average rank; every method
has F1_DPA <= F1_PA; deterministic methods have std 0.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import METHOD_NAMES, deterministic_methods
from repro.bench import TABLE3_DATASETS, emit, format_table, run_repeats
from repro.datasets import load_dataset
from repro.evaluation import average_rank


def table3_results() -> dict[str, dict[str, dict[str, tuple[float, float]]]]:
    """{method: {dataset: {"pa"/"dpa": (mean, std)}}} over repeats."""
    deterministic = set(deterministic_methods())
    results: dict[str, dict[str, dict[str, tuple[float, float]]]] = {}
    for method in METHOD_NAMES:
        per_dataset = {}
        for dataset_name in TABLE3_DATASETS:
            labels = load_dataset(dataset_name).labels
            runs = run_repeats(method, dataset_name, method in deterministic)
            pa = [run.f1(labels, "pa") for run in runs]
            dpa = [run.f1(labels, "dpa") for run in runs]
            per_dataset[dataset_name] = {
                "pa": (float(np.mean(pa)), float(np.std(pa))),
                "dpa": (float(np.mean(dpa)), float(np.std(dpa))),
            }
        results[method] = per_dataset
    return results


def test_table3_pa_dpa(once):
    results = once(table3_results)

    columns = []
    for dataset_name in TABLE3_DATASETS:
        for mode in ("pa", "dpa"):
            columns.append(
                {m: results[m][dataset_name][mode][0] for m in METHOD_NAMES}
            )
    ranks = average_rank(columns)

    headers = ["Method"]
    for dataset_name in TABLE3_DATASETS:
        headers += [f"{dataset_name} F1_PA", f"{dataset_name} F1_DPA"]
    headers.append("Rank")

    rows = []
    for method in METHOD_NAMES:
        row: list[object] = [method]
        for dataset_name in TABLE3_DATASETS:
            for mode in ("pa", "dpa"):
                mean, std = results[method][dataset_name][mode]
                cell = f"{100 * mean:.1f}"
                if std > 1e-9:
                    cell += f"±{100 * std:.1f}"
                row.append(cell)
        row.append(f"{ranks[method]:.1f}")
        rows.append(row)

    emit(
        "table3_pa_dpa",
        format_table(headers, rows, title="Table III: F1_PA / F1_DPA (x100) and average rank"),
    )

    # Shape assertions from the paper.
    for method in METHOD_NAMES:
        for dataset_name in TABLE3_DATASETS:
            pa_mean = results[method][dataset_name]["pa"][0]
            dpa_mean = results[method][dataset_name]["dpa"][0]
            assert dpa_mean <= pa_mean + 1e-9, f"{method}/{dataset_name}: DPA > PA"
    assert ranks["CAD"] <= sorted(ranks.values())[2], "CAD should rank near the top"
