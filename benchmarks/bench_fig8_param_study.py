"""Figure 8: parameter study — w/|T|, s/w, tau, theta and k sweeps.

Sweeps each CAD hyper-parameter on three datasets (PSM, one SMD subset,
SWaT in the paper) with the others held at their tuned values, reporting
grid-searched F1_PA and F1_DPA per setting.

Expected shapes (paper): best accuracy at small-to-moderate w/|T| and small
s/w; tau peaking around 0.4-0.6; small theta preferred; moderate k (too
large k admits weak-correlation noise).
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines import CADDetector
from repro.bench import emit, format_series, probe_rc_level, tuned_cad_config
from repro.core import CADConfig
from repro.datasets import load_dataset
from repro.evaluation import best_f1

PARAM_DATASETS = ("psm-sim", "smd-sim-07", "swat-sim")


def _evaluate(dataset, config: CADConfig) -> tuple[float, float]:
    detector = CADDetector(config)
    detector.fit(dataset.history)
    scores = detector.score(dataset.test)
    return (
        best_f1(scores, dataset.labels, "pa"),
        best_f1(scores, dataset.labels, "dpa"),
    )


def fig8_results() -> dict[str, dict[str, list[tuple[float, float, float]]]]:
    """{dataset: {parameter: [(value, f1_pa, f1_dpa), ...]}}"""
    results: dict[str, dict[str, list[tuple[float, float, float]]]] = {}
    for dataset_name in PARAM_DATASETS:
        dataset = load_dataset(dataset_name)
        base = tuned_cad_config(dataset)
        length = dataset.test.length
        sweeps: dict[str, list[tuple[float, float, float]]] = {}

        window_ratios = (0.01, 0.02, 0.03, 0.05, 0.10)
        sweeps["w_over_T"] = []
        for ratio in window_ratios:
            window = max(10, int(ratio * length))
            step = max(2, window // 10)
            config = replace(base, window=window, step=min(step, window - 1))
            pa, dpa = _evaluate(dataset, config)
            sweeps["w_over_T"].append((ratio, pa, dpa))

        step_ratios = (0.05, 0.1, 0.2, 0.4)
        sweeps["s_over_w"] = []
        for ratio in step_ratios:
            step = max(1, min(base.window - 1, int(ratio * base.window)))
            config = replace(base, step=step)
            pa, dpa = _evaluate(dataset, config)
            sweeps["s_over_w"].append((ratio, pa, dpa))

        sweeps["tau"] = []
        for tau in (0.3, 0.4, 0.5, 0.6, 0.7, 0.8):
            pa, dpa = _evaluate(dataset, replace(base, tau=tau))
            sweeps["tau"].append((tau, pa, dpa))

        rc_level = probe_rc_level(dataset)
        sweeps["theta"] = []
        for fraction in (0.3, 0.5, 0.7, 0.9, 1.1):
            theta = min(0.95, max(0.01, fraction * rc_level))
            pa, dpa = _evaluate(dataset, replace(base, theta=theta))
            sweeps["theta"].append((fraction, pa, dpa))

        sweeps["k"] = []
        for k in (5, 10, 15, 20):
            if k >= dataset.n_sensors:
                continue
            pa, dpa = _evaluate(dataset, replace(base, k=k))
            sweeps["k"].append((k, pa, dpa))

        results[dataset_name] = sweeps
    return results


def test_fig8_param_study(once):
    results = once(fig8_results)

    sections = []
    for dataset_name, sweeps in results.items():
        for parameter, points in sweeps.items():
            xs = [p[0] for p in points]
            sections.append(
                format_series(
                    f"{dataset_name}: F1_PA vs {parameter}",
                    xs,
                    [100 * p[1] for p in points],
                )
            )
            sections.append(
                format_series(
                    f"{dataset_name}: F1_DPA vs {parameter}",
                    xs,
                    [100 * p[2] for p in points],
                )
            )
    emit("fig8_param_study", "\n\n".join(sections))

    # Shape: a small-to-moderate window beats the largest window swept.
    for dataset_name, sweeps in results.items():
        window_points = sweeps["w_over_T"]
        best_small = max(p[1] for p in window_points[:3])
        largest = window_points[-1][1]
        assert best_small >= largest - 0.05, (
            f"{dataset_name}: moderate windows should not lose badly to huge ones"
        )
