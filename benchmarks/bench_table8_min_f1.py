"""Table VIII: minimum F1_PA / F1_DPA over repeats (robustness).

Deterministic methods (CAD, LOF, ECOD, S2G) produce identical output every
run, so their minimum equals their mean; stochastic methods show a gap.

Expected shape (paper): CAD's minimum equals its mean (zero variance),
while the stochastic methods' minima fall below their means.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import METHOD_NAMES, deterministic_methods
from repro.bench import TABLE3_DATASETS, emit, format_table, run_repeats
from repro.datasets import load_dataset


def table8_results() -> dict[str, dict[str, dict[str, float]]]:
    deterministic = set(deterministic_methods())
    results: dict[str, dict[str, dict[str, float]]] = {}
    for method in METHOD_NAMES:
        per_dataset = {}
        for dataset_name in TABLE3_DATASETS:
            labels = load_dataset(dataset_name).labels
            runs = run_repeats(method, dataset_name, method in deterministic)
            pa = [run.f1(labels, "pa") for run in runs]
            dpa = [run.f1(labels, "dpa") for run in runs]
            per_dataset[dataset_name] = {
                "min_pa": float(np.min(pa)),
                "min_dpa": float(np.min(dpa)),
                "mean_pa": float(np.mean(pa)),
                "mean_dpa": float(np.mean(dpa)),
            }
        results[method] = per_dataset
    return results


def test_table8_min_f1(once):
    results = once(table8_results)

    headers = ["Method"]
    for dataset_name in TABLE3_DATASETS:
        headers += [f"{dataset_name} minPA", f"{dataset_name} minDPA"]
    rows = []
    for method in METHOD_NAMES:
        row: list[object] = [method]
        for dataset_name in TABLE3_DATASETS:
            cell = results[method][dataset_name]
            row += [f"{100 * cell['min_pa']:.1f}", f"{100 * cell['min_dpa']:.1f}"]
        rows.append(row)

    emit(
        "table8_min_f1",
        format_table(headers, rows, title="Table VIII: minimum F1_PA / F1_DPA (x100)"),
    )

    # Shape: deterministic methods have min == mean on every dataset.
    for method in deterministic_methods():
        for dataset_name in TABLE3_DATASETS:
            cell = results[method][dataset_name]
            assert abs(cell["min_pa"] - cell["mean_pa"]) < 1e-12
            assert abs(cell["min_dpa"] - cell["mean_dpa"]) < 1e-12
