"""Round-pipeline throughput: seed vs incremental vs delta vs parallel.

Unlike the paper benchmarks (pytest modules under this directory), this is
a standalone script — run it directly:

    PYTHONPATH=src python benchmarks/bench_perf.py            # full grid
    PYTHONPATH=src python benchmarks/bench_perf.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_perf.py --quick --profile

It measures stage A of a CAD round (window -> correlation -> TSG ->
communities) across four modes over a grid of sensor counts:

``seed``
    ``engine="reference"`` — the original pipeline: full Pearson matrix
    every round, dict graph, dict Louvain.
``incremental``
    ``engine="fast"``, one process — rolling-correlation kernel, CSR
    TSG, array-backed Louvain.
``delta``
    ``engine="delta"`` — everything in ``incremental`` plus
    round-over-round TSG maintenance: cached top-k candidate sets with a
    separation certificate, patched CSR assembly, anchored full re-ranks
    (DESIGN.md §10).
``parallel``
    ``engine="fast"`` fanned over the persistent 2-worker shared-memory
    pool (:func:`repro.core.parallel.iter_round_communities`).  Segments
    too short to cut at an anchor run in-process — dispatching one chunk
    to a pool is pure overhead, which is what used to make this mode
    *slower* than seed at small ``n``.

Timing is min-of-repeats (the box this grew up on jitters +/-10%), and
every mode's community labels are cross-checked for equality — the fast
paths must not buy speed with different answers.  Results go to
``BENCH_perf.json``; ``--profile`` adds a per-stage breakdown (correlation
update / TSG build / Louvain / co-appearance) per engine to the payload.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.config import CADConfig
from repro.core.coappearance import CoAppearanceTracker
from repro.core.parallel import get_worker_pool, iter_round_communities
from repro.core.pipeline import CommunityPipeline
from repro.graph import (
    DeltaTSGBuilder,
    absolute_weight_graph,
    knn_graph,
    louvain,
    prune_weak_edges,
)
from repro.graph.csr import louvain_labels_csr, tsg_csr
from repro.timeseries.correlation import pearson_matrix
from repro.timeseries.rolling import RollingCorrelation

MODES = ("seed", "incremental", "delta", "parallel")

#: Engines whose stages --profile breaks down (parallel shares the fast
#: engine's stages, so profiling it separately would double-count).
PROFILE_MODES = ("seed", "incremental", "delta")

STAGES = ("corr_update", "tsg_build", "louvain", "coappearance")


def synthetic_values(n_sensors: int, t_total: int, seed: int = 7) -> np.ndarray:
    """Correlated multi-sensor series: 8 shared drivers plus sensor noise.

    Shared drivers give the TSG real community structure, so Louvain does
    representative work instead of collapsing to singletons.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(t_total)
    periods = rng.uniform(120.0, 400.0, 8)
    phases = rng.uniform(0.0, 6.0, 8)
    drivers = np.vstack(
        [np.sin(2.0 * np.pi * t / p + ph) for p, ph in zip(periods, phases)]
    )
    values = np.empty((n_sensors, t_total))
    for i in range(n_sensors):
        values[i] = (
            rng.uniform(0.8, 1.2) * drivers[i % len(drivers)]
            + 0.1 * rng.standard_normal(t_total)
        )
    return values


def run_mode(
    mode: str, values: np.ndarray, config: CADConfig, rounds: int, repeats: int
) -> tuple[float, list[tuple[int, ...]]]:
    """Best per-round wall time (ms) over ``repeats`` runs, plus the labels."""
    n_sensors = values.shape[0]
    step, window = config.step, config.window
    windows = [values[:, r * step : r * step + window] for r in range(rounds)]
    if mode == "parallel":
        # Pool spin-up is a one-off process cost, not a per-round cost;
        # warm it outside the timed region like any persistent service.
        get_worker_pool(2)
    best_ms = float("inf")
    labels: list[tuple[int, ...]] = []
    for _ in range(repeats):
        pipeline = CommunityPipeline(config, n_sensors)
        start = time.perf_counter()
        if mode == "parallel":
            stages = list(iter_round_communities(pipeline, windows, n_jobs=2))
        else:
            stages = [pipeline.process(w) for w in windows]
        elapsed_ms = (time.perf_counter() - start) * 1000.0 / rounds
        best_ms = min(best_ms, elapsed_ms)
        labels = [stage.labels for stage in stages]
    return best_ms, labels


def profile_mode(
    mode: str, values: np.ndarray, config: CADConfig, rounds: int
) -> dict[str, float]:
    """Cumulative per-stage wall time (ms/round) for one engine.

    Runs the engine's own building blocks directly — the same calls the
    pipeline makes — with a timer between stages.  Per-stage numbers carry
    the timer-call overhead the un-instrumented pipeline does not pay, so
    they explain *where* a round's time goes rather than re-measuring the
    totals above.
    """
    n_sensors = values.shape[0]
    step, window = config.step, config.window
    k = config.effective_k(n_sensors)
    windows = [values[:, r * step : r * step + window] for r in range(rounds)]
    totals = dict.fromkeys(STAGES, 0.0)
    tracker = CoAppearanceTracker(n_sensors)
    kernel = RollingCorrelation(
        n_sensors,
        window,
        step,
        refresh_every=config.corr_refresh,
        min_overlap=config.min_overlap(),
    )
    builder = DeltaTSGBuilder(n_sensors, k, config.tau)
    for round_windows in windows:
        t0 = time.perf_counter()
        if mode == "seed":
            corr = pearson_matrix(round_windows)
        else:
            anchor = kernel.next_update_is_anchor
            corr = kernel.update(round_windows, assume_finite=True)
        t1 = time.perf_counter()
        if mode == "seed":
            tsg_dict = prune_weak_edges(knn_graph(corr, k), config.tau)
        elif mode == "delta":
            tsg = builder.build(corr, full=anchor)
        else:
            tsg = tsg_csr(corr, k, config.tau).absolute()
        t2 = time.perf_counter()
        if mode == "seed":
            labels_arr = np.array(louvain(absolute_weight_graph(tsg_dict)).labels)
        else:
            labels_arr = louvain_labels_csr(tsg)
        t3 = time.perf_counter()
        tracker.update(labels_arr)
        t4 = time.perf_counter()
        totals["corr_update"] += t1 - t0
        totals["tsg_build"] += t2 - t1
        totals["louvain"] += t3 - t2
        totals["coappearance"] += t4 - t3
    return {stage: round(totals[stage] * 1000.0 / rounds, 4) for stage in STAGES}


def mode_config(mode: str, args: argparse.Namespace) -> CADConfig:
    if mode == "seed":
        engine = "reference"
    elif mode == "delta":
        engine = "delta"
    else:
        engine = "fast"
    return CADConfig(
        window=args.window,
        step=args.step,
        k=args.k,
        tau=args.tau,
        engine=engine,
        corr_refresh=args.refresh,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid for CI smoke (seconds instead of minutes)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="add a per-stage timing breakdown (corr/TSG/Louvain/"
        "co-appearance) per engine to the JSON payload",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_perf.json"), help="output JSON path"
    )
    parser.add_argument("--window", type=int, default=None)
    parser.add_argument("--step", type=int, default=8)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--tau", type=float, default=0.5)
    parser.add_argument("--refresh", type=int, default=64)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()

    if args.quick:
        grid = [48, 96, 256]
        args.window = args.window or 600
        args.rounds = args.rounds or 24
        args.repeats = args.repeats or 3
    else:
        grid = [48, 96, 256, 512]
        args.window = args.window or 3000
        args.rounds = args.rounds or 120
        args.repeats = args.repeats or 2

    results: list[dict] = []
    identical = True
    for n_sensors in grid:
        t_total = args.window + args.step * args.rounds
        values = synthetic_values(n_sensors, t_total)
        per_mode_ms: dict[str, float] = {}
        per_mode_labels: dict[str, list[tuple[int, ...]]] = {}
        for mode in MODES:
            config = mode_config(mode, args)
            ms, labels = run_mode(mode, values, config, args.rounds, args.repeats)
            per_mode_ms[mode] = ms
            per_mode_labels[mode] = labels
            print(
                f"n={n_sensors:4d}  {mode:<11s}  {ms:8.2f} ms/round  "
                f"{1000.0 / ms:8.1f} rounds/s"
            )
        match = all(
            per_mode_labels[mode] == per_mode_labels["seed"] for mode in MODES
        )
        identical = identical and match
        speedup = per_mode_ms["seed"] / per_mode_ms["incremental"]
        delta_speedup = per_mode_ms["seed"] / per_mode_ms["delta"]
        print(
            f"n={n_sensors:4d}  incremental {speedup:.2f}x  "
            f"delta {delta_speedup:.2f}x  identical={match}"
        )
        row = {
            "n_sensors": n_sensors,
            "ms_per_round": {m: round(per_mode_ms[m], 3) for m in MODES},
            "rounds_per_sec": {
                m: round(1000.0 / per_mode_ms[m], 2) for m in MODES
            },
            "incremental_speedup": round(speedup, 2),
            "delta_speedup": round(delta_speedup, 2),
            "outputs_identical": match,
        }
        if args.profile:
            row["profile_ms_per_round"] = {
                mode: profile_mode(mode, values, mode_config(mode, args), args.rounds)
                for mode in PROFILE_MODES
            }
            for mode in PROFILE_MODES:
                stages = row["profile_ms_per_round"][mode]
                breakdown = "  ".join(f"{s}={stages[s]:.3f}" for s in STAGES)
                print(f"n={n_sensors:4d}  profile {mode:<11s}  {breakdown}")
        results.append(row)

    payload = {
        "benchmark": "round_pipeline_throughput",
        "quick": args.quick,
        "config": {
            "window": args.window,
            "step": args.step,
            "k": args.k,
            "tau": args.tau,
            "corr_refresh": args.refresh,
            "rounds": args.rounds,
            "repeats": args.repeats,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
        },
        "results": results,
        "all_outputs_identical": identical,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not identical:
        print("FAIL: engine outputs diverged")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
