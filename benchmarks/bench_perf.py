"""Round-pipeline throughput: seed vs incremental vs parallel engines.

Unlike the paper benchmarks (pytest modules under this directory), this is
a standalone script — run it directly:

    PYTHONPATH=src python benchmarks/bench_perf.py            # full grid
    PYTHONPATH=src python benchmarks/bench_perf.py --quick    # CI smoke

It measures stage A of a CAD round (window -> correlation -> TSG ->
communities) across three modes over a grid of sensor counts:

``seed``
    ``engine="reference"`` — the original pipeline: full Pearson matrix
    every round, dict graph, dict Louvain.
``incremental``
    ``engine="fast"``, one process — rolling-correlation kernel, CSR
    TSG, array-backed Louvain.
``parallel``
    ``engine="fast"`` fanned over a 2-worker process pool
    (:func:`repro.core.parallel.iter_round_communities`).  On a
    single-core box this mode only pays pickling overhead; it earns its
    keep on multi-core hardware.

Timing is min-of-repeats (the box this grew up on jitters +/-10%), and
every mode's community labels are cross-checked for equality — the fast
paths must not buy speed with different answers.  Results go to
``BENCH_perf.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.config import CADConfig
from repro.core.parallel import iter_round_communities
from repro.core.pipeline import CommunityPipeline

MODES = ("seed", "incremental", "parallel")


def synthetic_values(n_sensors: int, t_total: int, seed: int = 7) -> np.ndarray:
    """Correlated multi-sensor series: 8 shared drivers plus sensor noise.

    Shared drivers give the TSG real community structure, so Louvain does
    representative work instead of collapsing to singletons.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(t_total)
    periods = rng.uniform(120.0, 400.0, 8)
    phases = rng.uniform(0.0, 6.0, 8)
    drivers = np.vstack(
        [np.sin(2.0 * np.pi * t / p + ph) for p, ph in zip(periods, phases)]
    )
    values = np.empty((n_sensors, t_total))
    for i in range(n_sensors):
        values[i] = (
            rng.uniform(0.8, 1.2) * drivers[i % len(drivers)]
            + 0.1 * rng.standard_normal(t_total)
        )
    return values


def run_mode(
    mode: str, values: np.ndarray, config: CADConfig, rounds: int, repeats: int
) -> tuple[float, list[tuple[int, ...]]]:
    """Best per-round wall time (ms) over ``repeats`` runs, plus the labels."""
    n_sensors = values.shape[0]
    step, window = config.step, config.window
    windows = [values[:, r * step : r * step + window] for r in range(rounds)]
    best_ms = float("inf")
    labels: list[tuple[int, ...]] = []
    for _ in range(repeats):
        pipeline = CommunityPipeline(config, n_sensors)
        start = time.perf_counter()
        if mode == "parallel":
            stages = list(iter_round_communities(pipeline, windows, n_jobs=2))
        else:
            stages = [pipeline.process(w) for w in windows]
        elapsed_ms = (time.perf_counter() - start) * 1000.0 / rounds
        best_ms = min(best_ms, elapsed_ms)
        labels = [stage.labels for stage in stages]
    return best_ms, labels


def mode_config(mode: str, args: argparse.Namespace) -> CADConfig:
    return CADConfig(
        window=args.window,
        step=args.step,
        k=args.k,
        tau=args.tau,
        engine="reference" if mode == "seed" else "fast",
        corr_refresh=args.refresh,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid for CI smoke (seconds instead of minutes)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_perf.json"), help="output JSON path"
    )
    parser.add_argument("--window", type=int, default=None)
    parser.add_argument("--step", type=int, default=8)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--tau", type=float, default=0.5)
    parser.add_argument("--refresh", type=int, default=64)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()

    if args.quick:
        grid = [48, 96]
        args.window = args.window or 600
        args.rounds = args.rounds or 24
        args.repeats = args.repeats or 1
    else:
        grid = [64, 128, 256, 512]
        args.window = args.window or 3000
        args.rounds = args.rounds or 120
        args.repeats = args.repeats or 2

    results: list[dict] = []
    identical = True
    for n_sensors in grid:
        t_total = args.window + args.step * args.rounds
        values = synthetic_values(n_sensors, t_total)
        per_mode_ms: dict[str, float] = {}
        per_mode_labels: dict[str, list[tuple[int, ...]]] = {}
        for mode in MODES:
            config = mode_config(mode, args)
            ms, labels = run_mode(mode, values, config, args.rounds, args.repeats)
            per_mode_ms[mode] = ms
            per_mode_labels[mode] = labels
            print(
                f"n={n_sensors:4d}  {mode:<11s}  {ms:8.2f} ms/round  "
                f"{1000.0 / ms:8.1f} rounds/s"
            )
        match = all(
            per_mode_labels[mode] == per_mode_labels["seed"] for mode in MODES
        )
        identical = identical and match
        speedup = per_mode_ms["seed"] / per_mode_ms["incremental"]
        print(f"n={n_sensors:4d}  incremental speedup {speedup:.2f}x  identical={match}")
        results.append(
            {
                "n_sensors": n_sensors,
                "ms_per_round": {m: round(per_mode_ms[m], 3) for m in MODES},
                "rounds_per_sec": {
                    m: round(1000.0 / per_mode_ms[m], 2) for m in MODES
                },
                "incremental_speedup": round(speedup, 2),
                "outputs_identical": match,
            }
        )

    payload = {
        "benchmark": "round_pipeline_throughput",
        "quick": args.quick,
        "config": {
            "window": args.window,
            "step": args.step,
            "k": args.k,
            "tau": args.tau,
            "corr_refresh": args.refresh,
            "rounds": args.rounds,
            "repeats": args.repeats,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
        },
        "results": results,
        "all_outputs_identical": identical,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not identical:
        print("FAIL: engine outputs diverged")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
