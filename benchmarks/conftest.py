"""Shared configuration for the paper-reproduction benchmarks.

Each module regenerates one table or figure of the paper.  Experiments are
wrapped in ``benchmark.pedantic(..., rounds=1, iterations=1)`` — they are
minutes-long pipelines, not micro-benchmarks — and their outputs are printed
and persisted under ``results/``.

Knobs (environment variables):

* ``REPRO_REPEATS`` — repeats for stochastic methods (default 3; paper: 10).
* ``REPRO_SMD_SUBSETS`` — SMD subsets for Table IV / Fig. 4 (default 8 of
  28, for runtime; set 28 for the full sweep).
* ``REPRO_CACHE_DIR`` — score cache location (default ``results/cache``).
"""

import os

import pytest


def pytest_configure(config):
    # The benchmarks print the reproduced tables; -s would normally be
    # needed, so surface a hint in the header instead of silently hiding
    # the output (it is persisted under results/ regardless).
    os.environ.setdefault("REPRO_REPEATS", "3")


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1)

    return runner


def smd_subset_count() -> int:
    return max(1, min(28, int(os.environ.get("REPRO_SMD_SUBSETS", "8"))))
