"""Figure 6: scalability on IS-1 .. IS-5 (143 to 1,266 sensors).

Left plot: F1_PA and F1_DPA versus sensor count.  Right plot: CAD's time
per round (TPR) versus sensor count.

Expected shape (paper): a modest accuracy drop as the sensor count grows,
and TPR growing subquadratically in the number of sensors.
"""

from __future__ import annotations

import numpy as np

from repro.bench import emit, format_series, run_method, tuned_cad_config
from repro.datasets import load_dataset

IS_DATASETS = ("is1-sim", "is2-sim", "is3-sim", "is4-sim", "is5-sim")


def fig6_results() -> list[dict[str, float]]:
    rows = []
    for dataset_name in IS_DATASETS:
        dataset = load_dataset(dataset_name)
        run = run_method("CAD", dataset_name, seed=0)
        config = tuned_cad_config(dataset)
        n_rounds = (dataset.test.length - config.window) // config.step + 1
        rows.append(
            {
                "n_sensors": dataset.n_sensors,
                "f1_pa": run.f1(dataset.labels, "pa"),
                "f1_dpa": run.f1(dataset.labels, "dpa"),
                "tpr_ms": 1000.0 * run.score_seconds / n_rounds,
            }
        )
    return rows


def test_fig6_scalability(once):
    rows = once(fig6_results)
    ns = [row["n_sensors"] for row in rows]

    emit(
        "fig6_scalability",
        "\n\n".join(
            [
                format_series("F1_PA vs #sensors", ns, [100 * r["f1_pa"] for r in rows]),
                format_series("F1_DPA vs #sensors", ns, [100 * r["f1_dpa"] for r in rows]),
                format_series("TPR (ms) vs #sensors", ns, [r["tpr_ms"] for r in rows]),
            ]
        ),
    )

    # Shape 1: TPR grows subquadratically in the sensor count.
    growth = rows[-1]["tpr_ms"] / max(rows[0]["tpr_ms"], 1e-9)
    quadratic = (ns[-1] / ns[0]) ** 2
    assert growth < quadratic, "TPR should grow subquadratically with #sensors"

    # Shape 2: accuracy stays usable at the largest scale.
    assert rows[-1]["f1_dpa"] > 0.5, "CAD should keep detecting at 1,266 sensors"
