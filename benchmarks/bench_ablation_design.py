"""Ablations for the design choices called out in DESIGN.md §5.

Not part of the paper's evaluation — these quantify the decisions this
reproduction had to make where the paper under-specifies:

* RC aggregation: the paper's running average vs exponential decay vs a
  sliding window (the running average dilutes with service life);
* sensor attribution: transition vertices (Definitions 2-3) vs the literal
  Algorithm 2 rule (union of outlier sets);
* outlier variation counting: both directions (Definition 8) vs
  entering-only;
* round -> point marking: fresh slice vs whole window.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines import CADDetector
from repro.bench import emit, format_table, tuned_cad_config
from repro.datasets import load_dataset
from repro.evaluation import best_f1, f1_sensor

ABLATION_DATASET = "psm-sim"


def ablation_results() -> list[tuple[str, float, float, float]]:
    dataset = load_dataset(ABLATION_DATASET)
    base = tuned_cad_config(dataset)

    variants = [
        ("windowed RC (default)", base, "fresh"),
        ("running RC (paper Def. 6)", replace(base, rc_mode="running"), "fresh"),
        ("decayed RC", replace(base, rc_mode="decay", rc_decay=0.85), "fresh"),
        ("attribution=outliers", replace(base, sensor_attribution="outliers"), "fresh"),
        ("variations=enter-only", replace(base, variation_sides="enter"), "fresh"),
        ("mark=window", base, "window"),
        (
            "communities=label-propagation",
            replace(base, community_method="label_propagation"),
            "fresh",
        ),
    ]

    rows = []
    for label, config, mark in variants:
        detector = CADDetector(config, mark=mark)
        detector.fit(dataset.history)
        scores = detector.score(dataset.test)
        pa = best_f1(scores, dataset.labels, "pa")
        dpa = best_f1(scores, dataset.labels, "dpa")
        sensors = f1_sensor(
            detector.predicted_events(), dataset.events, dataset.n_sensors
        ).f1
        rows.append((label, pa, dpa, sensors))
    return rows


def test_ablation_design(once):
    rows = once(ablation_results)

    emit(
        "ablation_design",
        format_table(
            ["Variant", "F1_PA", "F1_DPA", "F1_sensor"],
            [
                [label, f"{100 * pa:.1f}", f"{100 * dpa:.1f}", f"{100 * fs:.1f}"]
                for label, pa, dpa, fs in rows
            ],
            title=f"Design ablations on {ABLATION_DATASET}",
        ),
    )

    by_label = {label: (pa, dpa, fs) for label, pa, dpa, fs in rows}
    # The windowed RC should not lose to the paper's diluting running RC.
    assert by_label["windowed RC (default)"][1] >= by_label["running RC (paper Def. 6)"][1] - 0.05
