"""Incremental-lint benchmark: cold vs warm whole-program analysis.

Standalone script (like ``bench_perf.py``) — run it directly:

    PYTHONPATH=src python benchmarks/bench_analysis.py           # full
    PYTHONPATH=src python benchmarks/bench_analysis.py --quick   # CI smoke

A cold run parses every file under ``src/repro tests benchmarks``, runs
the file rules, builds the per-file summaries and the cross-file pass.  A
warm run hashes the same files and loads one JSON document.  This script
times both against a throwaway cache directory and enforces the two
properties that make the cache trustworthy:

* **bit-identical findings** — the warm run must report exactly the cold
  run's violations (same paths, lines, rules, messages);
* **speedup floor** — the warm run must be at least ``MIN_SPEEDUP``x
  faster than the cold run (min-of-repeats timing), otherwise the cache
  is overhead masquerading as an optimisation.

Results go to ``BENCH_analysis.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.analysis import ALL_RULES, analyze_paths
from repro.analysis.cache import AnalysisCache

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Warm lint must beat cold lint by at least this factor (acceptance).
MIN_SPEEDUP = 3.0


def lint_once(targets: list[str], cache_dir: Path | None):
    cache = (
        AnalysisCache(cache_dir, ALL_RULES) if cache_dir is not None else None
    )
    start = time.perf_counter()
    report = analyze_paths(targets, root=str(REPO_ROOT), cache=cache)
    elapsed = time.perf_counter() - start
    return elapsed, report


def timed_runs(targets: list[str], repeats: int) -> dict:
    """Min-of-repeats cold and warm timings over a throwaway cache."""
    cold_times: list[float] = []
    warm_times: list[float] = []
    cold_findings: list[dict] | None = None
    warm_findings: list[dict] | None = None
    checked_files = 0

    for _ in range(repeats):
        work = Path(tempfile.mkdtemp(prefix="bench-analysis-"))
        try:
            cold_elapsed, cold_report = lint_once(targets, work)
            warm_elapsed, warm_report = lint_once(targets, work)
        finally:
            shutil.rmtree(work, ignore_errors=True)
        cold_times.append(cold_elapsed)
        warm_times.append(warm_elapsed)
        checked_files = cold_report.checked_files
        cold_findings = [v.to_json() for v in cold_report.violations]
        warm_findings = [v.to_json() for v in warm_report.violations]
        if not warm_report.project_from_cache:
            raise SystemExit("warm run did not reuse the project pass")
        if warm_report.cache_misses:
            raise SystemExit(
                f"warm run missed {warm_report.cache_misses} file records"
            )

    cold = min(cold_times)
    warm = min(warm_times)
    return {
        "checked_files": checked_files,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": cold / warm if warm > 0 else float("inf"),
        "findings": len(cold_findings or []),
        "findings_identical": cold_findings == warm_findings,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single repeat (CI smoke); default is min of 3",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_analysis.json"),
        help="output JSON path",
    )
    args = parser.parse_args()

    targets = [
        str(REPO_ROOT / "src" / "repro"),
        str(REPO_ROOT / "tests"),
        str(REPO_ROOT / "benchmarks"),
    ]
    repeats = 1 if args.quick else 3
    result = timed_runs(targets, repeats)

    payload = {
        "benchmark": "incremental-lint",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
        "repeats": repeats,
        "min_speedup_required": MIN_SPEEDUP,
        **result,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"cold {result['cold_seconds']:.3f}s, warm {result['warm_seconds']:.3f}s "
        f"({result['speedup']:.1f}x) over {result['checked_files']} files, "
        f"{result['findings']} findings"
    )
    if not result["findings_identical"]:
        print("FAIL: warm findings differ from cold findings")
        return 1
    if result["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {result['speedup']:.2f}x < {MIN_SPEEDUP}x floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
