"""Beyond-paper: the extra comparators (PCA, HBOS) against CAD.

The paper's related work cites PCA-based detection [4], [76] and
histogram-based scoring [30] but does not benchmark them; this bench slots
them into the same protocol on two datasets to round out the picture.

Caveat (EXPERIMENTS.md): the simulated datasets are built from *linear*
latent drivers, so PCA's subspace residual is essentially an oracle for the
injected correlation breaks — its near-perfect score here is an artifact of
the simulator, not a statement about real sensor data.
"""

from __future__ import annotations

import time

from repro.baselines import EXTRA_METHOD_NAMES, make_detector
from repro.bench import emit, format_table, run_method
from repro.datasets import load_dataset
from repro.evaluation import best_f1

DATASETS = ("psm-sim", "swat-sim")


def extras_results() -> list[list[object]]:
    rows = []
    for dataset_name in DATASETS:
        data = load_dataset(dataset_name)
        cad = run_method("CAD", dataset_name, seed=0)
        rows.append(
            [
                "CAD",
                dataset_name,
                f"{100 * cad.f1(data.labels, 'pa'):.1f}",
                f"{100 * cad.f1(data.labels, 'dpa'):.1f}",
                f"{cad.fit_seconds + cad.score_seconds:.2f}",
            ]
        )
        for name in EXTRA_METHOD_NAMES:
            detector = make_detector(name)
            started = time.perf_counter()
            detector.fit(data.history)
            scores = detector.score(data.test)
            elapsed = time.perf_counter() - started
            rows.append(
                [
                    name,
                    dataset_name,
                    f"{100 * best_f1(scores, data.labels, 'pa'):.1f}",
                    f"{100 * best_f1(scores, data.labels, 'dpa'):.1f}",
                    f"{elapsed:.2f}",
                ]
            )
    return rows


def test_extras_comparison(once):
    rows = once(extras_results)
    emit(
        "extras_comparison",
        format_table(
            ["Method", "Dataset", "F1_PA", "F1_DPA", "total s"],
            rows,
            title="Beyond-paper comparators: PCA and HBOS vs CAD",
        ),
    )
    assert len(rows) == len(DATASETS) * (1 + len(EXTRA_METHOD_NAMES))
