"""Quickstart: detect anomalies in a simulated sensor network with CAD.

Run with::

    python examples/quickstart.py

Generates a small community-structured MTS with labelled anomalies, warms
CAD up on the history segment, detects over the live segment, and prints
the anomalies (time spans + affected sensors) next to the ground truth.
"""

from __future__ import annotations

from repro import CAD, CADConfig
from repro.datasets import load_dataset
from repro.evaluation import best_f1


def main() -> None:
    # A 26-sensor simulation standing in for the PSM dataset (see
    # DESIGN.md): `history` is anomaly-free warm-up data, `test` contains
    # labelled anomalies.
    data = load_dataset("psm-sim")
    print(f"dataset: {data.name} — {data.n_sensors} sensors, "
          f"{data.history.length} history points, {data.test.length} test points")

    # Hyper-parameters; CADConfig.suggest picks paper-recommended values
    # from the data shape, here we also pass the dataset's k (Table II).
    config = CADConfig.suggest(
        data.test.length, data.n_sensors, k=data.recommended_k
    )
    print(f"config: w={config.window} s={config.step} k={config.k} "
          f"tau={config.tau} theta={config.theta}")

    detector = CAD(config, data.n_sensors)
    detector.warm_up(data.history)
    result = detector.detect(data.test)

    print(f"\ndetected {result.n_anomalies} anomalies:")
    for anomaly in result.anomalies:
        sensors = ", ".join(str(s) for s in sorted(anomaly.sensors))
        print(f"  points [{anomaly.start:5d}, {anomaly.stop:5d})  sensors: {sensors}")

    print("\nground truth:")
    for event in data.events:
        sensors = ", ".join(str(s) for s in sorted(event.sensors))
        print(f"  points [{event.start:5d}, {event.stop:5d})  sensors: {sensors}")

    scores = result.point_scores()
    print(f"\nF1 after Point Adjustment:       {best_f1(scores, data.labels, 'pa'):.3f}")
    print(f"F1 after Delay-Point Adjustment: {best_f1(scores, data.labels, 'dpa'):.3f}")


if __name__ == "__main__":
    main()
