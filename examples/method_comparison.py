"""Compare CAD against the paper's baselines under the DaE scheme.

Run with::

    python examples/method_comparison.py [dataset]

Runs CAD plus a few fast baselines on one simulated dataset, scores them
with grid-searched F1 after PA and DPA, and prints the relative Ahead/Miss
measures of CAD against each baseline (paper Section V).
"""

from __future__ import annotations

import sys

from repro.baselines import make_detector
from repro.bench import tuned_cad_config
from repro.datasets import load_dataset
from repro.evaluation import ahead_miss, best_f1, best_predictions

METHODS = ("CAD", "LOF", "ECOD", "IForest", "NormA")


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "psm-sim"
    data = load_dataset(dataset_name)
    print(f"dataset: {data.name} ({data.n_sensors} sensors, "
          f"{len(data.events)} labelled anomalies)\n")

    predictions = {}
    print(f"{'method':8s}  {'F1_PA':>6s}  {'F1_DPA':>6s}")
    for name in METHODS:
        if name == "CAD":
            detector = make_detector(name, cad_config=tuned_cad_config(data))
        else:
            detector = make_detector(name, seed=0)
        detector.fit(data.history)
        scores = detector.score(data.test)
        pa = best_f1(scores, data.labels, "pa")
        dpa = best_f1(scores, data.labels, "dpa")
        predictions[name] = best_predictions(scores, data.labels, "dpa")
        print(f"{name:8s}  {100 * pa:6.1f}  {100 * dpa:6.1f}")

    print("\nrelative DaE (CAD as M1):")
    print(f"{'CAD vs':8s}  {'Ahead':>6s}  {'Miss':>6s}")
    for name in METHODS:
        if name == "CAD":
            continue
        relative = ahead_miss(predictions["CAD"], predictions[name], data.labels)
        print(f"{name:8s}  {100 * relative.ahead:6.1f}  {100 * relative.miss:6.1f}")


if __name__ == "__main__":
    main()
