"""Predictive maintenance on a simulated assembly line.

Run with::

    python examples/assembly_line_monitoring.py

Models the paper's motivating scenario: a machine fault starts on one
component and propagates to neighbours over time (Section I).  The example
builds a 60-sensor line with a propagating "decouple" fault, lets CAD
monitor it, and reports how early the alarm fires relative to (a) the true
onset and (b) the point where the fault has spread to half the affected
sensors — the window in which maintenance is cheap.
"""

from __future__ import annotations

import numpy as np

from repro import CAD, CADConfig
from repro.datasets import AnomalySpec, NetworkConfig, SensorNetworkSimulator
from repro.timeseries import MultivariateTimeSeries


def main() -> None:
    simulator = SensorNetworkSimulator(
        NetworkConfig(n_sensors=60, n_communities=6, seed=42)
    )
    history = simulator.generate(3000)

    # A fault hits 8 sensors of one community, spreading across the first
    # half of its 600-point span.
    community = simulator.community_of
    victims = tuple(int(s) for s in np.flatnonzero(community == 2)[:8])
    fault = AnomalySpec(
        start=2200,
        stop=2800,
        sensors=victims,
        kind="decouple",
        propagate=True,
    )
    live = simulator.generate(4000, [fault], t0=3000)

    config = CADConfig.suggest(4000, 60, k=8, theta=0.12)
    detector = CAD(config, 60)
    detector.warm_up(history.series)
    result = detector.detect(live.series)

    print(f"fault: sensors {victims} decouple from t=2200, "
          f"fully spread by t={fault.onset(victims[-1])}")
    print(f"CAD: {result.n_anomalies} anomalies detected\n")

    first_alarm = None
    for anomaly in result.anomalies:
        overlap = anomaly.start < fault.stop + config.window and fault.start < anomaly.stop
        marker = " <-- fault" if overlap else ""
        print(f"  alarm at [{anomaly.start:5d}, {anomaly.stop:5d}) "
              f"sensors {sorted(anomaly.sensors)}{marker}")
        if overlap and first_alarm is None:
            first_alarm = anomaly

    if first_alarm is None:
        print("\nno alarm overlapped the fault — try a lower theta")
        return

    lead = fault.onset(victims[len(victims) // 2]) - first_alarm.start
    print(f"\nfirst alarm at t={first_alarm.start} "
          f"({first_alarm.start - fault.start:+d} points after onset)")
    if lead > 0:
        print(f"that is {lead} points BEFORE the fault reaches half the "
              f"affected sensors — maintenance can start while the damage is local")
    correct = set(first_alarm.sensors) & set(victims)
    print(f"sensors correctly implicated in the first alarm: {sorted(correct)}")


if __name__ == "__main__":
    main()
