"""Streaming detection: CAD as a live monitor (paper Section IV-F).

Run with::

    python examples/streaming_detection.py

Simulates a sensor feed arriving one sample at a time.  CAD warms up on
historical data, then scores every freshly completed window; abnormal
rounds raise alarms immediately — this is the "real-time" operating mode
the paper's Table VII analyses (TPR must stay below the step duration).
"""

from __future__ import annotations

import time

from repro import CADConfig, StreamingCAD
from repro.bench import probe_rc_level
from repro.datasets import load_dataset


def main() -> None:
    data = load_dataset("smd-sim-01")
    # theta must sit below the dataset's normal RC level (see
    # examples/parameter_tuning.py for the full workflow).
    theta = 0.7 * probe_rc_level(data)
    config = CADConfig.suggest(
        data.test.length, data.n_sensors, k=data.recommended_k, theta=theta
    )

    stream = StreamingCAD(config, data.n_sensors)
    stream.warm_up(data.history)
    print(f"warmed up on {data.history.length} historical points; "
          f"streaming {data.test.length} live samples...")

    alarms = 0
    rounds = 0
    started = time.perf_counter()
    for t in range(data.test.length):
        record = stream.push(data.test.values[:, t])
        if record is None:
            continue
        rounds += 1
        if record.abnormal:
            alarms += 1
            sensors = ", ".join(str(s) for s in sorted(record.variations))
            print(f"  t={t:5d}  ALARM  n_r={record.n_variations:3d} "
                  f"(mu={record.mean:.2f}, sigma={record.std:.2f})  sensors: {sensors}")
    elapsed = time.perf_counter() - started

    tpr_ms = 1000.0 * elapsed / max(rounds, 1)
    print(f"\n{rounds} rounds, {alarms} alarms, {elapsed:.2f}s total "
          f"-> {tpr_ms:.1f} ms per round")
    print(f"max sustainable sampling rate: ~{config.step / (tpr_ms / 1000):.0f} Hz "
          f"(real-time if the sensors sample slower than this)")

    print("\nground-truth anomaly onsets:",
          ", ".join(str(e.start) for e in data.events))


if __name__ == "__main__":
    main()
