"""Tuning CAD's theta: the RC-level probe workflow.

Run with::

    python examples/parameter_tuning.py

The outlier threshold theta (Definition 7) must sit just below the
dataset's normal ratio-of-co-appearance level, which scales with community
size over ``n - 1`` — a fixed theta cannot fit every sensor network.  This
example shows the recommended workflow: probe the RC distribution with a
throw-away detector, then sweep theta over fractions of the probed level.
"""

from __future__ import annotations

import numpy as np

from repro import CAD, CADConfig
from repro.bench import probe_rc_level
from repro.datasets import load_dataset
from repro.evaluation import best_f1


def main() -> None:
    data = load_dataset("swat-sim")
    print(f"dataset: {data.name} ({data.n_sensors} sensors)")

    rc_level = probe_rc_level(data)
    print(f"probed median RC under normal operation: {rc_level:.3f}")
    print("(vertices whose RC falls below theta become outliers, so theta "
          "must sit below this level)\n")

    print(f"{'fraction':>8s}  {'theta':>6s}  {'F1_PA':>6s}  {'F1_DPA':>6s}  {'#anomalies':>10s}")
    best = (None, -1.0)
    for fraction in (0.4, 0.55, 0.7, 0.85, 1.0, 1.3):
        theta = float(np.clip(fraction * rc_level, 0.01, 0.95))
        config = CADConfig.suggest(
            data.test.length, data.n_sensors, k=data.recommended_k, theta=theta
        )
        detector = CAD(config, data.n_sensors)
        detector.warm_up(data.history)
        result = detector.detect(data.test)
        scores = result.point_scores()
        pa = best_f1(scores, data.labels, "pa")
        dpa = best_f1(scores, data.labels, "dpa")
        print(f"{fraction:8.2f}  {theta:6.3f}  {100 * pa:6.1f}  {100 * dpa:6.1f}  "
              f"{result.n_anomalies:10d}")
        if dpa > best[1]:
            best = (theta, dpa)

    print(f"\nbest theta: {best[0]:.3f} (F1_DPA {100 * best[1]:.1f})")
    print("fractions above 1.0 make most vertices chronic outliers and "
          "detection collapses — the sweep shows the cliff.")


if __name__ == "__main__":
    main()
