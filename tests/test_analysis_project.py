"""Whole-program analysis tests: the project index / call graph, the
cross-file rules R11-R14, the incremental cache, the SARIF emitter, and
the pragma-parser regressions.

Each rule gets a miniature on-disk project (packages with real
``__init__.py`` chains) because the behaviour under test is exactly the
cross-file part: pairing a writer in one module with a reader in another,
resolving a call through an import alias, invalidating a cached artefact
through the module graph.
"""

import ast
import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, analyze_paths
from repro.analysis.cache import (
    AnalysisCache,
    content_hash,
    ruleset_signature,
)
from repro.analysis.callgraph import resolve_call
from repro.analysis.engine import analyze_paths as engine_analyze_paths
from repro.analysis.engine import parse_pragmas_source
from repro.analysis.project import (
    build_project,
    module_name_for,
    summarize_module,
)
from repro.analysis.sarif import sarif_report

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_tree(root: Path, files: dict) -> Path:
    """Materialise ``{relpath: source}`` under ``root`` (dedented)."""
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def lint_tree(root: Path, rules=ALL_RULES, cache=None):
    return analyze_paths([str(root)], rules, root=str(root), cache=cache)


def findings(root: Path, rule_id: str, **kwargs):
    report = lint_tree(root, **kwargs)
    assert not report.parse_failures, report.parse_failures
    return [v for v in report.violations if v.rule == rule_id]


def fixture_project(root: Path):
    """Build a ProjectContext over every .py file under ``root``."""
    summaries = {}
    for path in sorted(root.rglob("*.py")):
        relpath = path.as_posix()
        module, is_package = module_name_for(path)
        tree = ast.parse(path.read_text(encoding="utf-8"))
        summaries[relpath] = summarize_module(tree, module, is_package)
    return build_project(summaries, {}, {})


# --------------------------------------------------------------------- #
# Project index and call-graph resolution
# --------------------------------------------------------------------- #


class TestCallGraphResolution:
    def test_local_call_resolves(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """\
                def helper():
                    return 1

                def entry():
                    return helper()
                """,
        })
        project = fixture_project(tmp_path)
        relpath = (tmp_path / "pkg/a.py").as_posix()
        assert resolve_call(project, relpath, "entry", "helper") == "pkg.a:helper"

    def test_imported_alias_resolves_cross_module(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """\
                def target():
                    return 1
                """,
            "pkg/b.py": """\
                from .a import target as t

                def caller():
                    return t()
                """,
        })
        project = fixture_project(tmp_path)
        relpath = (tmp_path / "pkg/b.py").as_posix()
        assert resolve_call(project, relpath, "caller", "t") == "pkg.a:target"

    def test_reexport_chain_resolves(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "from .impl import thing\n",
            "pkg/impl.py": """\
                def thing():
                    return 1
                """,
            "pkg/use.py": """\
                from . import thing

                def caller():
                    return thing()
                """,
        })
        project = fixture_project(tmp_path)
        relpath = (tmp_path / "pkg/use.py").as_posix()
        assert project.resolve(relpath, "thing") == "pkg.impl.thing"
        assert resolve_call(project, relpath, "caller", "thing") == "pkg.impl:thing"

    def test_method_self_call_resolves(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """\
                class Box:
                    def inner(self):
                        return 1

                    def outer(self):
                        return self.inner()
                """,
        })
        project = fixture_project(tmp_path)
        relpath = (tmp_path / "pkg/a.py").as_posix()
        resolved = resolve_call(project, relpath, "Box.outer", "self.inner")
        assert resolved == "pkg.a:Box.inner"

    def test_transitive_callees_cross_module(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """\
                from .b import middle

                def entry():
                    return middle()
                """,
            "pkg/b.py": """\
                def leaf():
                    return 1

                def middle():
                    return leaf()
                """,
        })
        project = fixture_project(tmp_path)
        callees = project.callgraph.transitive_callees("pkg.a:entry")
        assert "pkg.b:middle" in callees
        assert "pkg.b:leaf" in callees


# --------------------------------------------------------------------- #
# R11 — checkpoint save/load key symmetry
# --------------------------------------------------------------------- #

_SYMMETRIC = {
    "pkg/__init__.py": "",
    "pkg/state.py": """\
        class Engine:
            def to_state(self):
                return {"alpha": self.alpha, "beta": self.beta}

            def from_state(self, state):
                self.alpha = state["alpha"]
                self.beta = state.get("beta", 0.0)
        """,
}


class TestR11CheckpointContract:
    def test_symmetric_pair_is_clean(self, tmp_path):
        write_tree(tmp_path, _SYMMETRIC)
        assert findings(tmp_path, "R11") == []

    def test_orphaned_write_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": """\
                class Engine:
                    def to_state(self):
                        return {"alpha": 1, "dropped": 2}

                    def from_state(self, state):
                        self.alpha = state["alpha"]
                """,
        })
        hits = findings(tmp_path, "R11")
        assert len(hits) == 1
        assert "'dropped'" in hits[0].message
        assert "never consumed" in hits[0].message

    def test_hard_read_of_unwritten_key_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": """\
                class Engine:
                    def to_state(self):
                        return {"alpha": 1}

                    def from_state(self, state):
                        self.alpha = state["alpha"]
                        self.beta = state["beta"]
                """,
        })
        hits = findings(tmp_path, "R11")
        assert len(hits) == 1
        assert "'beta'" in hits[0].message
        assert "KeyError" in hits[0].message

    def test_cross_file_save_load_pair(self, tmp_path):
        """save_*/load_* in different modules still pair up (global-unique
        fallback) — the orphaned key is found across the file boundary."""
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/writer.py": """\
                def save_snapshot(engine):
                    return {"kept": engine.kept, "lost": engine.lost}
                """,
            "pkg/reader.py": """\
                def load_snapshot(state):
                    return state["kept"]
                """,
        })
        hits = findings(tmp_path, "R11")
        assert len(hits) == 1
        assert "'lost'" in hits[0].message
        assert hits[0].path.endswith("writer.py")

    def test_callee_reads_count_via_call_graph(self, tmp_path):
        """Keys consumed inside a same-module helper the reader calls are
        part of the reader's contract (closure expansion)."""
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": """\
                def save_snapshot(engine):
                    return {"alpha": 1, "beta": 2}

                def _apply_beta(engine, state):
                    engine.beta = state["beta"]

                def load_snapshot(engine, state):
                    engine.alpha = state["alpha"]
                    _apply_beta(engine, state)
                """,
        })
        assert findings(tmp_path, "R11") == []

    def test_thin_wrapper_loader_pairs_by_name_not_by_fallback(self, tmp_path):
        """An exact-name loader that only delegates (no key facts of its
        own) still claims its writer; an unrelated loader in the same
        module must not be mis-paired with it."""
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": """\
                def save_snapshot(engine):
                    return {"kept": engine.kept}

                def load_snapshot(state):
                    return _apply(state)

                def _apply(state):
                    return state["kept"]

                def save_manifest(path):
                    return {"format": "m", "shards": 4}

                def load_manifest(state):
                    return (state["format"], state["shards"])
                """,
        })
        assert findings(tmp_path, "R11") == []

    def test_const_loop_keys_are_enumerated(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": """\
                def save_arrays(engine):
                    out = {}
                    for name in ("baseline", "sums"):
                        out[name] = getattr(engine, name)
                    out["count"] = engine.count
                    return out

                def load_arrays(engine, state):
                    for name in ("baseline", "sums"):
                        setattr(engine, name, state[name])
                    engine.count = state["count"]
                """,
        })
        assert findings(tmp_path, "R11") == []


_MIGRATION_KEYS = ("engine", "corr_refresh", "n_jobs", "louvain_verify")

_MIGRATION_TEMPLATE = """\
    def save_checkpoint(stream):
        # Version-1 layout: the migration keys did not exist yet.
        return {{"version": 1, "payload": stream.payload}}

    def load_checkpoint(state):
        version = state["version"]
        if version == 1:
    {setdefaults}
        return (
            state["payload"],
            state["engine"],
            state["corr_refresh"],
            state["n_jobs"],
            state["louvain_verify"],
        )
    """


def _migration_source(drop: str | None = None) -> str:
    lines = [
        f'        state.setdefault("{key}", None)'
        for key in _MIGRATION_KEYS
        if key != drop
    ]
    return _MIGRATION_TEMPLATE.format(setdefaults="\n".join(lines))


class TestR11VersionCoverage:
    """R11 provably covers the checkpoint versions: with every migration
    default in place the fixture is clean, and deleting ANY single one
    turns a hard read of an unwritten (v1) key into a finding."""

    def test_full_migration_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/ckpt.py": _migration_source(),
        })
        assert findings(tmp_path, "R11") == []

    @pytest.mark.parametrize("key", _MIGRATION_KEYS)
    def test_deleting_any_migration_default_trips_r11(self, tmp_path, key):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/ckpt.py": _migration_source(drop=key),
        })
        hits = findings(tmp_path, "R11")
        assert len(hits) == 1
        assert f"'{key}'" in hits[0].message


# --------------------------------------------------------------------- #
# R12 — lock/queue acquisition-order cycles
# --------------------------------------------------------------------- #


class TestR12LockOrder:
    def test_consistent_order_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/locks.py": """\
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def first():
                    with A:
                        with B:
                            pass

                def second():
                    with A:
                        with B:
                            pass
                """,
        })
        assert findings(tmp_path, "R12") == []

    def test_opposite_orders_in_one_module_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/locks.py": """\
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def ab():
                    with A:
                        with B:
                            pass

                def ba():
                    with B:
                        with A:
                            pass
                """,
        })
        hits = findings(tmp_path, "R12")
        assert hits, "AB/BA inversion not reported"
        assert any("cycle" in v.message for v in hits)

    def test_cross_module_cycle_via_call_graph(self, tmp_path):
        """alpha holds its lock and calls into beta (and vice versa): the
        cycle only exists through the resolved call graph."""
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/alpha.py": """\
                import threading

                from . import beta

                A = threading.Lock()

                def grab():
                    with A:
                        pass

                def outer():
                    with A:
                        beta.grab()
                """,
            "pkg/beta.py": """\
                import threading

                from . import alpha

                B = threading.Lock()

                def grab():
                    with B:
                        pass

                def outer():
                    with B:
                        alpha.grab()
                """,
        })
        hits = findings(tmp_path, "R12")
        assert hits, "cross-module acquisition cycle not reported"
        assert any("pkg.alpha.A" in v.message for v in hits)
        assert any("pkg.beta.B" in v.message for v in hits)

    def test_self_reacquire_of_plain_lock_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/locks.py": """\
                import threading

                A = threading.Lock()

                def twice():
                    with A:
                        with A:
                            pass
                """,
        })
        hits = findings(tmp_path, "R12")
        assert len(hits) == 1
        assert "self-deadlock" in hits[0].message

    def test_self_reacquire_of_rlock_is_clean(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/locks.py": """\
                import threading

                A = threading.RLock()

                def twice():
                    with A:
                        with A:
                            pass
                """,
        })
        assert findings(tmp_path, "R12") == []

    def test_real_runtime_has_no_cycles(self):
        """Acceptance: R12 reports zero lock-order cycles on the real
        codebase (repro.runtime + repro.core.parallel)."""
        report = analyze_paths([str(REPO_ROOT / "src" / "repro")])
        assert [v for v in report.violations if v.rule == "R12"] == []


# --------------------------------------------------------------------- #
# R13 — config / CLI / docs drift
# --------------------------------------------------------------------- #


class TestR13ConfigDrift:
    def test_unknown_keyword_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/config.py": """\
                from dataclasses import dataclass

                @dataclass
                class Cfg:
                    alpha: int = 1
                    beta: float = 2.0
                """,
            "pkg/use.py": """\
                from .config import Cfg

                def make():
                    return Cfg(alpha=2, gamma=3)
                """,
        })
        hits = findings(tmp_path, "R13")
        assert len(hits) == 1
        assert "'gamma'" in hits[0].message
        assert hits[0].path.endswith("use.py")

    def test_known_keywords_clean(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/config.py": """\
                from dataclasses import dataclass

                @dataclass
                class Cfg:
                    alpha: int = 1
                """,
            "pkg/use.py": """\
                from .config import Cfg

                def make():
                    return Cfg(alpha=2)
                """,
        })
        assert findings(tmp_path, "R13") == []

    def test_dead_flag_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cli.py": """\
                import argparse

                def main():
                    parser = argparse.ArgumentParser()
                    parser.add_argument("--used-flag", type=int)
                    parser.add_argument("--dead-flag", type=int)
                    args = parser.parse_args()
                    return args.used_flag
                """,
        })
        hits = findings(tmp_path, "R13")
        assert len(hits) == 1
        assert "--dead-flag" in hits[0].message

    def test_args_read_without_flag_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cli.py": """\
                import argparse

                def main():
                    parser = argparse.ArgumentParser()
                    parser.add_argument("--real", type=int)
                    args = parser.parse_args()
                    return args.real + args.phantom
                """,
        })
        hits = findings(tmp_path, "R13")
        assert len(hits) == 1
        assert "args.phantom" in hits[0].message

    def test_subparser_dest_is_not_dead(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cli.py": """\
                import argparse

                def main():
                    parser = argparse.ArgumentParser()
                    sub = parser.add_subparsers(dest="command")
                    sub.add_parser("run")
                    args = parser.parse_args()
                    return args.command
                """,
        })
        assert findings(tmp_path, "R13") == []

    def test_undocumented_cadconfig_field_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "README.md": "# Fixture\n\nKnobs: `alpha` is documented here.\n",
            "pkg/__init__.py": "",
            "pkg/config.py": """\
                from dataclasses import dataclass

                @dataclass
                class CADConfig:
                    alpha: int = 1
                    hidden_knob: float = 0.5
                """,
        })
        hits = findings(tmp_path, "R13")
        assert len(hits) == 1
        assert "hidden_knob" in hits[0].message

    def test_dashed_doc_mention_counts(self, tmp_path):
        write_tree(tmp_path, {
            "README.md": "# Fixture\n\nUse `alpha` or `--hidden-knob`.\n",
            "pkg/__init__.py": "",
            "pkg/config.py": """\
                from dataclasses import dataclass

                @dataclass
                class CADConfig:
                    alpha: int = 1
                    hidden_knob: float = 0.5
                """,
        })
        assert findings(tmp_path, "R13") == []


# --------------------------------------------------------------------- #
# R14 — exception-taxonomy discipline
# --------------------------------------------------------------------- #

_TAXONOMY = {
    "pkg/__init__.py": "",
    "pkg/runtime/__init__.py": "",
    "pkg/runtime/errors.py": """\
        class BaseError(Exception):
            pass

        class WorkerError(BaseError):
            pass
        """,
}


class TestR14ExceptionTaxonomy:
    def test_builtin_raise_in_runtime_flagged(self, tmp_path):
        write_tree(tmp_path, dict(_TAXONOMY, **{
            "pkg/runtime/worker.py": """\
                def run(n):
                    if n < 0:
                        raise ValueError(f"bad n: {n}")
                    return n
                """,
        }))
        hits = findings(tmp_path, "R14")
        assert len(hits) == 1
        assert "ValueError" in hits[0].message

    def test_taxonomy_raise_is_clean(self, tmp_path):
        write_tree(tmp_path, dict(_TAXONOMY, **{
            "pkg/runtime/worker.py": """\
                from .errors import WorkerError

                def run(n):
                    if n < 0:
                        raise WorkerError(f"bad n: {n}")
                    return n
                """,
        }))
        assert findings(tmp_path, "R14") == []

    def test_subclass_defined_outside_errors_is_clean(self, tmp_path):
        """The taxonomy closes over subclasses: deriving locally from a
        taxonomy class keeps the raise typed."""
        write_tree(tmp_path, dict(_TAXONOMY, **{
            "pkg/runtime/worker.py": """\
                from .errors import WorkerError

                class LocalError(WorkerError):
                    pass

                def run(n):
                    if n < 0:
                        raise LocalError(f"bad n: {n}")
                    return n
                """,
        }))
        assert findings(tmp_path, "R14") == []

    def test_not_implemented_error_allowed(self, tmp_path):
        write_tree(tmp_path, dict(_TAXONOMY, **{
            "pkg/runtime/worker.py": """\
                def run(n):
                    raise NotImplementedError
                """,
        }))
        assert findings(tmp_path, "R14") == []

    def test_fleet_package_in_scope(self, tmp_path):
        # The fleet runtime joined the taxonomy contract alongside
        # runtime/ and ingest/.
        write_tree(tmp_path, dict(_TAXONOMY, **{
            "pkg/fleet/__init__.py": "",
            "pkg/fleet/manager.py": """\
                def route(tenant):
                    if not tenant:
                        raise KeyError(tenant)
                    return tenant
                """,
        }))
        hits = findings(tmp_path, "R14")
        assert len(hits) == 1
        assert "KeyError" in hits[0].message

    def test_outside_runtime_is_out_of_scope(self, tmp_path):
        write_tree(tmp_path, dict(_TAXONOMY, **{
            "pkg/other.py": """\
                def run(n):
                    if n < 0:
                        raise ValueError(f"bad n: {n}")
                    return n
                """,
        }))
        assert findings(tmp_path, "R14") == []

    def test_runtime_errors_derive_from_builtins(self):
        """The real migration keeps pre-taxonomy except-clauses working."""
        from repro.runtime.errors import ConfigurationError, QueueEmptyError

        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(QueueEmptyError, IndexError)


# --------------------------------------------------------------------- #
# R5 on the call graph — cross-module dispatch targets
# --------------------------------------------------------------------- #


class TestR5CrossModule:
    def test_imported_worker_with_global_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/workers.py": """\
                COUNTER = []

                def bad_worker(chunk):
                    global COUNTER
                    COUNTER = [chunk]
                    return chunk
                """,
            "pkg/driver.py": """\
                from .workers import bad_worker

                def dispatch(pool, chunks):
                    return [pool.submit(bad_worker, c) for c in chunks]
                """,
        })
        hits = [
            v
            for v in findings(tmp_path, "R5")
            if v.path.endswith("driver.py")
        ]
        assert hits, "cross-module worker global not reported at dispatch site"
        assert any("global" in v.message for v in hits)

    def test_clean_imported_worker_passes(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/workers.py": """\
                def good_worker(chunk):
                    return chunk * 2
                """,
            "pkg/driver.py": """\
                from .workers import good_worker

                def dispatch(pool, chunks):
                    return [pool.submit(good_worker, c) for c in chunks]
                """,
        })
        assert [
            v
            for v in findings(tmp_path, "R5")
            if v.path.endswith("driver.py")
        ] == []


# --------------------------------------------------------------------- #
# Incremental cache
# --------------------------------------------------------------------- #

_CACHE_TREE = {
    "pkg/__init__.py": "",
    "pkg/base.py": """\
        def leaf():
            return 1
        """,
    "pkg/mid.py": """\
        from .base import leaf

        def middle():
            return leaf()
        """,
    "pkg/top.py": """\
        from .mid import middle

        def entry():
            return middle()
        """,
}


class TestAnalysisCache:
    def test_warm_run_is_bit_identical_and_fully_cached(self, tmp_path):
        root = write_tree(tmp_path / "tree", _CACHE_TREE)
        cache_dir = tmp_path / "cache"

        cold_cache = AnalysisCache(cache_dir, ALL_RULES)
        cold = lint_tree(root, cache=cold_cache)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(_CACHE_TREE)
        assert not cold.project_from_cache
        assert (cache_dir / "analysis-cache.json").exists()

        warm_cache = AnalysisCache(cache_dir, ALL_RULES)
        warm = lint_tree(root, cache=warm_cache)
        assert warm.cache_hits == len(_CACHE_TREE)
        assert warm.cache_misses == 0
        assert warm.project_from_cache
        assert [v.to_json() for v in warm.violations] == [
            v.to_json() for v in cold.violations
        ]

    def test_content_change_invalidates_one_file(self, tmp_path):
        root = write_tree(tmp_path / "tree", _CACHE_TREE)
        cache_dir = tmp_path / "cache"
        lint_tree(root, cache=AnalysisCache(cache_dir, ALL_RULES))

        (root / "pkg/base.py").write_text(
            "def leaf():\n    return 2\n", encoding="utf-8"
        )
        cache = AnalysisCache(cache_dir, ALL_RULES)
        report = lint_tree(root, cache=cache)
        assert report.cache_misses == 1
        assert report.cache_hits == len(_CACHE_TREE) - 1
        # The global digest moved, so the cross-file pass re-ran.
        assert not report.project_from_cache

    def test_transitive_dependency_invalidation(self, tmp_path):
        root = write_tree(tmp_path / "tree", _CACHE_TREE)
        cache_dir = tmp_path / "cache"
        cache = AnalysisCache(cache_dir, ALL_RULES)
        lint_tree(root, cache=cache)

        relpaths = {
            name: (root / f"pkg/{name}.py").as_posix()
            for name in ("base", "mid", "top")
        }
        hashes = {path: cache._files[path]["hash"] for path in cache._files}
        # Pretend base.py changed: its importers are stale transitively.
        hashes[relpaths["base"]] = content_hash("changed")
        stale = AnalysisCache(cache_dir, ALL_RULES).stale_files(hashes)
        assert relpaths["base"] in stale
        assert relpaths["mid"] in stale
        assert relpaths["top"] in stale
        assert (root / "pkg/__init__.py").as_posix() not in stale

    def test_rule_set_change_drops_cache(self, tmp_path):
        root = write_tree(tmp_path / "tree", _CACHE_TREE)
        cache_dir = tmp_path / "cache"
        lint_tree(root, cache=AnalysisCache(cache_dir, ALL_RULES))

        subset = ALL_RULES[:5]
        assert ruleset_signature(subset) != ruleset_signature(ALL_RULES)
        report = lint_tree(
            root, rules=subset, cache=AnalysisCache(cache_dir, subset)
        )
        assert report.cache_hits == 0
        assert report.cache_misses == len(_CACHE_TREE)

    def test_removed_file_is_pruned(self, tmp_path):
        root = write_tree(tmp_path / "tree", _CACHE_TREE)
        cache_dir = tmp_path / "cache"
        lint_tree(root, cache=AnalysisCache(cache_dir, ALL_RULES))

        (root / "pkg/top.py").unlink()
        lint_tree(root, cache=AnalysisCache(cache_dir, ALL_RULES))
        payload = json.loads(
            (cache_dir / "analysis-cache.json").read_text(encoding="utf-8")
        )
        assert (root / "pkg/top.py").as_posix() not in payload["files"]


# --------------------------------------------------------------------- #
# SARIF emitter
# --------------------------------------------------------------------- #


class TestSarif:
    def test_report_structure(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": """\
                def save_snapshot(engine):
                    return {"kept": 1, "lost": 2}

                def load_snapshot(state):
                    return state["kept"]
                """,
        })
        report = lint_tree(root)
        new = [v for v in report.violations if v.rule == "R11"]
        assert new
        sarif = sarif_report(new, [], [], ALL_RULES)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {f"R{i}" for i in range(1, 15)} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "R11"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("pkg/state.py")
        assert location["region"]["startLine"] == new[0].line

    def test_grandfathered_become_suppressed_notes(self):
        from repro.analysis.rules import Violation

        violation = Violation(
            path="pkg/x.py", line=3, col=1, rule="R1",
            message="msg", source="for x in s:",
        )
        sarif = sarif_report([], [violation], [], ALL_RULES)
        result = sarif["runs"][0]["results"][0]
        assert result["level"] == "note"
        assert result["suppressions"][0]["kind"] == "external"


# --------------------------------------------------------------------- #
# Pragma parser regressions
# --------------------------------------------------------------------- #


class TestPragmaRobustness:
    def test_multiple_pragmas_on_one_line_merge(self):
        source = "x = 1  # repro: noqa[R1] ... # repro: noqa[R2]\n"
        pragmas = parse_pragmas_source(source)
        assert pragmas[1] == frozenset({"R1", "R2"})

    def test_bare_noqa_dominates_scoped(self):
        source = "x = 1  # repro: noqa # repro: noqa[R2]\n"
        pragmas = parse_pragmas_source(source)
        assert pragmas[1] is None

    def test_pragma_inside_string_literal_ignored(self):
        source = 'x = "text with # repro: noqa[R1] inside"\n'
        assert parse_pragmas_source(source) == {}

    def test_pragma_after_string_still_applies(self):
        source = 'x = "# repro: noqa[R9]"  # repro: noqa[R1]\n'
        pragmas = parse_pragmas_source(source)
        assert pragmas[1] == frozenset({"R1"})

    def test_string_pragma_does_not_suppress(self, tmp_path):
        """End-to-end: a pragma-looking string must not hide a finding."""
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/code.py": """\
                def f(items):
                    marker = "# repro: noqa[R1]"
                    out = []
                    for x in set(items):
                        out.append(x)
                    return marker, out
                """,
        })
        assert findings(root, "R1"), "string literal suppressed a finding"


# --------------------------------------------------------------------- #
# Acceptance breakage: seeding a real save/load mismatch
# --------------------------------------------------------------------- #


class TestAcceptanceBreakageR11:
    def test_seeded_key_mismatch_in_real_tree_is_caught(self, tmp_path):
        """Add a save/load pair to the real checkpoint module whose writer
        emits a key the loader never consumes: the gate must trip."""
        dest = tmp_path / "src" / "repro"
        shutil.copytree(REPO_ROOT / "src" / "repro", dest)
        checkpoint = dest / "core" / "checkpoint.py"
        source = checkpoint.read_text(encoding="utf-8")
        source += (
            "\n\ndef save_extra_state(stream):\n"
            '    return {"kept": stream.kept, "forgotten": stream.lost}\n'
            "\n\ndef load_extra_state(state):\n"
            '    return state["kept"]\n'
        )
        checkpoint.write_text(source, encoding="utf-8")
        report = engine_analyze_paths([str(dest)])
        hits = [
            v
            for v in report.violations
            if v.rule == "R11" and v.path.endswith("checkpoint.py")
            and "'forgotten'" in v.message
        ]
        assert hits, "seeded save/load key mismatch was not caught"
