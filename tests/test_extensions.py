"""Tests for extensions: label propagation, PCA/HBOS, root cause, postprocess."""

import numpy as np
import pytest

from repro.baselines import HBOS, PCADetector, make_detector
from repro.core import (
    Anomaly,
    CAD,
    CADConfig,
    consolidate,
    drop_short,
    merge_nearby,
    propagation_order,
    rank_root_causes,
)
from repro.graph import Graph, label_propagation, louvain
from repro.timeseries import MultivariateTimeSeries, WindowSpec


def planted_graph(sizes=(4, 4, 4), bridge=0.05):
    n = sum(sizes)
    g = Graph(n)
    base = 0
    boundaries = []
    for size in sizes:
        for i in range(size):
            for j in range(i + 1, size):
                g.add_edge(base + i, base + j, 1.0)
        boundaries.append(base)
        base += size
    for a, b in zip(boundaries, boundaries[1:]):
        g.add_edge(a, b, bridge)
    return g


class TestLabelPropagation:
    def test_recovers_planted_communities(self):
        result = label_propagation(planted_graph())
        assert result.n_communities == 3
        labels = result.labels
        assert len(set(labels[:4])) == 1
        assert len(set(labels[4:8])) == 1

    def test_agrees_with_louvain_on_clean_structure(self):
        g = planted_graph()
        lp = label_propagation(g)
        lv = louvain(g)
        assert lp.n_communities == lv.n_communities

    def test_deterministic(self):
        g = planted_graph((5, 5))
        assert label_propagation(g).labels == label_propagation(g).labels

    def test_rejects_negative_weights(self):
        g = Graph(2)
        g.add_edge(0, 1, -1.0)
        with pytest.raises(ValueError):
            label_propagation(g)

    def test_isolated_vertices_stay_singleton(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        result = label_propagation(g)
        assert result.labels[2] not in (result.labels[0], result.labels[1])

    def test_cad_runs_with_label_propagation(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        from dataclasses import replace

        config = replace(toy_config, community_method="label_propagation")
        detector = CAD(config, 12)
        detector.warm_up(history)
        result = detector.detect(test)
        assert len(result.rounds) > 0


class TestPCA:
    def correlated(self, seed=0, n=6, length=500):
        rng = np.random.default_rng(seed)
        latent = rng.standard_normal((2, length))
        mix = rng.standard_normal((n, 2))
        return MultivariateTimeSeries(mix @ latent + 0.05 * rng.standard_normal((n, length)))

    def test_keeps_few_components_on_low_rank_data(self):
        detector = PCADetector(variance_fraction=0.9)
        detector.fit(self.correlated())
        assert detector.n_components <= 3

    def test_scores_off_subspace_points(self):
        train = self.correlated()
        test_values = self.correlated(seed=1, length=300).values.copy()
        test_values[:, 100:120] += np.random.default_rng(2).standard_normal(
            (6, 20)
        ) * 3.0  # structure-breaking noise
        scores = PCADetector().fit(train).score(MultivariateTimeSeries(test_values))
        assert scores[100:120].mean() > scores[:100].mean()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            PCADetector(variance_fraction=0.0)

    def test_registry(self):
        assert make_detector("PCA").deterministic


class TestHBOS:
    def test_tail_values_score_high(self):
        rng = np.random.default_rng(0)
        train = MultivariateTimeSeries(rng.normal(0, 1, (3, 800)))
        test_values = rng.normal(0, 1, (3, 200))
        test_values[1, 50:60] = 9.0
        scores = HBOS().fit(train).score(MultivariateTimeSeries(test_values))
        assert scores[50:60].mean() > scores[:50].mean() * 1.5

    def test_constant_sensor_handled(self):
        train = MultivariateTimeSeries(np.vstack([np.ones(100), np.arange(100.0)]))
        scores = HBOS().fit(train).score(train)
        assert np.isfinite(scores).all()

    def test_sensor_mismatch(self):
        train = MultivariateTimeSeries(np.random.default_rng(0).random((2, 50)))
        detector = HBOS().fit(train)
        with pytest.raises(ValueError):
            detector.score(MultivariateTimeSeries(np.zeros((3, 10))))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HBOS(n_bins=1)
        with pytest.raises(ValueError):
            HBOS(smoothing=0.0)


class TestRootCause:
    def detection(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        detector = CAD(toy_config, 12)
        detector.warm_up(history)
        return detector.detect(test)

    def test_ranking_sorted_by_evidence(self, toy_config, broken_series):
        result = self.detection(toy_config, broken_series)
        assert result.anomalies
        causes = rank_root_causes(result, result.anomalies[0])
        evidences = [c.evidence for c in causes]
        assert evidences == sorted(evidences, reverse=True)

    def test_ranking_covers_anomaly_sensors(self, toy_config, broken_series):
        result = self.detection(toy_config, broken_series)
        anomaly = result.anomalies[0]
        ranked = {c.sensor for c in rank_root_causes(result, anomaly)}
        assert anomaly.sensors <= ranked

    def test_propagation_order_sorted_by_onset(self, toy_config, broken_series):
        result = self.detection(toy_config, broken_series)
        anomaly = result.anomalies[0]
        order = propagation_order(result, anomaly)
        causes = {c.sensor: c for c in rank_root_causes(result, anomaly)}
        onsets = [causes[s].onset_round for s in order]
        assert onsets == sorted(onsets)

    def test_unknown_round_rejected(self, toy_config, broken_series):
        result = self.detection(toy_config, broken_series)
        bogus = Anomaly(
            sensors=frozenset({1}), rounds=(9999,), start=0, stop=10
        )
        with pytest.raises(ValueError):
            rank_root_causes(result, bogus)


class TestPostprocess:
    def anomaly(self, first_round, last_round, sensors, spec):
        return Anomaly(
            sensors=frozenset(sensors),
            rounds=tuple(range(first_round, last_round + 1)),
            start=spec.fresh_span(first_round)[0],
            stop=spec.round_span(last_round)[1],
        )

    def test_merge_nearby(self):
        spec = WindowSpec(10, 2)
        a = self.anomaly(2, 3, {1}, spec)
        b = self.anomaly(5, 6, {2}, spec)
        merged = merge_nearby([a, b], spec, max_gap=1)
        assert len(merged) == 1
        assert merged[0].sensors == frozenset({1, 2})
        assert merged[0].rounds == (2, 3, 4, 5, 6)

    def test_merge_respects_gap(self):
        spec = WindowSpec(10, 2)
        a = self.anomaly(2, 3, {1}, spec)
        b = self.anomaly(8, 9, {2}, spec)
        assert len(merge_nearby([a, b], spec, max_gap=1)) == 2

    def test_merge_unordered_input(self):
        spec = WindowSpec(10, 2)
        a = self.anomaly(2, 3, {1}, spec)
        b = self.anomaly(4, 5, {2}, spec)
        merged = merge_nearby([b, a], spec, max_gap=0)
        assert len(merged) == 1

    def test_drop_short(self):
        spec = WindowSpec(10, 2)
        short = self.anomaly(2, 2, {1}, spec)
        long = self.anomaly(5, 7, {2}, spec)
        assert drop_short([short, long], min_rounds=2) == [long]

    def test_consolidate(self):
        spec = WindowSpec(10, 2)
        a = self.anomaly(2, 2, {1}, spec)
        b = self.anomaly(4, 4, {2}, spec)
        c = self.anomaly(20, 20, {3}, spec)
        result = consolidate([a, b, c], spec, max_gap=1, min_rounds=2)
        assert len(result) == 1
        assert result[0].sensors == frozenset({1, 2})

    def test_invalid_params(self):
        spec = WindowSpec(10, 2)
        with pytest.raises(ValueError):
            merge_nearby([], spec, max_gap=-1)
        with pytest.raises(ValueError):
            drop_short([], min_rounds=0)
