"""Tests for the dataset simulator, anomaly injection, registry and IO."""

import numpy as np
import pytest

from repro.datasets import (
    ANOMALY_TYPES,
    AnomalySpec,
    Dataset,
    NetworkConfig,
    N_SMD_SUBSETS,
    SensorNetworkSimulator,
    build_dataset,
    dataset_names,
    export_csv,
    get_spec,
    import_csv,
    load_dataset_file,
    save_dataset,
    smd_subset_names,
)
from repro.timeseries import pearson_matrix


def small_simulator(seed=0):
    return SensorNetworkSimulator(
        NetworkConfig(n_sensors=12, n_communities=3, seed=seed)
    )


class TestAnomalySpec:
    def test_valid(self):
        spec = AnomalySpec(10, 20, (1, 2), "decouple")
        assert spec.length == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start": 10, "stop": 10, "sensors": (1,), "kind": "decouple"},
            {"start": -1, "stop": 5, "sensors": (1,), "kind": "decouple"},
            {"start": 0, "stop": 5, "sensors": (), "kind": "decouple"},
            {"start": 0, "stop": 5, "sensors": (1, 1), "kind": "decouple"},
            {"start": 0, "stop": 5, "sensors": (1,), "kind": "bogus"},
            {"start": 0, "stop": 5, "sensors": (1,), "kind": "stuck", "magnitude": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            AnomalySpec(**kwargs)

    def test_onset_without_propagation(self):
        spec = AnomalySpec(10, 50, (1, 2, 3), "decouple", propagate=False)
        assert all(spec.onset(s) == 10 for s in (1, 2, 3))

    def test_onset_with_propagation_staggered(self):
        spec = AnomalySpec(10, 50, (1, 2, 3), "decouple", propagate=True)
        onsets = [spec.onset(s) for s in (1, 2, 3)]
        assert onsets[0] == 10
        assert onsets == sorted(onsets)
        assert onsets[-1] <= 10 + 20  # within the first half


class TestSimulator:
    def test_deterministic_given_seed(self):
        a = small_simulator(5).generate(500)
        b = small_simulator(5).generate(500)
        np.testing.assert_array_equal(a.series.values, b.series.values)

    def test_different_seeds_differ(self):
        a = small_simulator(1).generate(500)
        b = small_simulator(2).generate(500)
        assert not np.array_equal(a.series.values, b.series.values)

    def test_community_correlation_structure(self):
        sim = small_simulator()
        generated = sim.generate(1500)
        corr = pearson_matrix(generated.series.values[:, :400])
        intra, inter = [], []
        for i in range(12):
            for j in range(i + 1, 12):
                same = generated.community_of[i] == generated.community_of[j]
                (intra if same else inter).append(abs(corr[i, j]))
        assert np.mean(intra) > 0.7
        assert np.mean(intra) > np.mean(inter) + 0.3

    def test_labels_match_specs(self):
        sim = small_simulator()
        specs = [AnomalySpec(100, 150, (0, 3), "decouple")]
        generated = sim.generate(400, specs)
        assert generated.labels[100:150].all()
        assert generated.labels.sum() == 50
        assert generated.events[0].sensors == frozenset({0, 3})

    def test_decouple_breaks_correlation(self):
        sim = small_simulator()
        specs = [AnomalySpec(600, 900, (0,), "decouple")]
        generated = sim.generate(1200, specs)
        values = generated.series.values
        partner = 3  # same community as sensor 0 (i % 3)
        normal = abs(pearson_matrix(values[:, 100:400])[0, partner])
        broken = abs(pearson_matrix(values[:, 600:900])[0, partner])
        assert broken < normal - 0.3

    def test_stuck_freezes_signal(self):
        sim = small_simulator()
        specs = [AnomalySpec(200, 300, (1,), "stuck")]
        generated = sim.generate(500, specs)
        assert generated.series.values[1, 200:300].std() < 0.01

    def test_anomaly_validation(self):
        sim = small_simulator()
        with pytest.raises(ValueError, match="exceeds"):
            sim.generate(100, [AnomalySpec(50, 150, (0,), "stuck")])
        with pytest.raises(ValueError, match="unknown sensor"):
            sim.generate(200, [AnomalySpec(0, 50, (99,), "stuck")])

    def test_random_anomalies_disjoint(self):
        sim = small_simulator()
        specs = sim.random_anomalies(3000, 5, (50, 120), (1, 4))
        spans = sorted((s.start, s.stop) for s in specs)
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0
        assert len(specs) == 5

    def test_random_anomalies_community_local(self):
        sim = small_simulator()
        specs = sim.random_anomalies(3000, 4, (50, 120), (2, 4))
        communities = sim.community_of
        for spec in specs:
            groups = {communities[s] for s in spec.sensors}
            assert len(groups) == 1

    def test_random_anomalies_overbooked(self):
        sim = small_simulator()
        with pytest.raises(ValueError, match="do not fit"):
            sim.random_anomalies(300, 10, (50, 100), (1, 2))

    def test_all_kinds_injectable(self):
        sim = small_simulator()
        specs = [
            AnomalySpec(100 + 200 * i, 200 + 200 * i, (i,), kind)
            for i, kind in enumerate(ANOMALY_TYPES)
        ]
        generated = sim.generate(1500, specs)
        assert np.isfinite(generated.series.values).all()


class TestRegistry:
    def test_names(self):
        names = dataset_names()
        assert "psm-sim" in names and "is5-sim" in names
        assert len(smd_subset_names()) == N_SMD_SUBSETS

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError):
            get_spec("bogus")

    def test_build_small_dataset(self):
        dataset = build_dataset(get_spec("psm-sim"))
        assert isinstance(dataset, Dataset)
        assert dataset.n_sensors == 26
        assert dataset.labels.shape == (dataset.test.length,)
        assert dataset.events
        assert 0.05 < dataset.labels.mean() < 0.5

    def test_sensor_counts_match_paper(self):
        expected = {
            "psm-sim": 26,
            "swat-sim": 51,
            "is1-sim": 143,
            "is2-sim": 264,
            "is3-sim": 406,
            "is4-sim": 702,
            "is5-sim": 1266,
        }
        for name, n in expected.items():
            assert get_spec(name).n_sensors == n
        assert get_spec("smd-sim-01").n_sensors == 38

    def test_deterministic_build(self):
        a = build_dataset(get_spec("smd-sim-01"))
        b = build_dataset(get_spec("smd-sim-01"))
        np.testing.assert_array_equal(a.test.values, b.test.values)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestIO:
    def test_npz_round_trip(self, tmp_path):
        dataset = build_dataset(get_spec("smd-sim-02"))
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        loaded = load_dataset_file(path)
        np.testing.assert_array_equal(loaded.test.values, dataset.test.values)
        np.testing.assert_array_equal(loaded.labels, dataset.labels)
        assert loaded.events == dataset.events
        assert loaded.spec == dataset.spec

    def test_csv_round_trip(self, tmp_path):
        dataset = build_dataset(get_spec("smd-sim-03"))
        path = tmp_path / "series.csv"
        export_csv(dataset.history, path)
        loaded = import_csv(path)
        assert loaded.sensor_names == dataset.history.sensor_names
        np.testing.assert_allclose(
            loaded.values, dataset.history.values, rtol=1e-4, atol=1e-4
        )

    def test_import_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            import_csv(path)

    def test_import_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError):
            import_csv(path)
