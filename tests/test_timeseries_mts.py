"""Tests for the MultivariateTimeSeries container."""

import numpy as np
import pytest

from repro.timeseries import MultivariateTimeSeries


def make_series(n=3, length=10):
    values = np.arange(n * length, dtype=float).reshape(n, length)
    return MultivariateTimeSeries(values)


class TestConstruction:
    def test_shape_properties(self):
        series = make_series(3, 10)
        assert series.n_sensors == 3
        assert series.length == 10
        assert len(series) == 10

    def test_default_sensor_names(self):
        series = make_series(2, 5)
        assert series.sensor_names == ("sensor_0", "sensor_1")

    def test_custom_sensor_names(self):
        series = MultivariateTimeSeries(np.zeros((2, 4)), ("a", "b"))
        assert series.sensor_names == ("a", "b")

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            MultivariateTimeSeries(np.zeros(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            MultivariateTimeSeries(np.zeros((0, 5)))

    def test_rejects_nan(self):
        values = np.zeros((2, 3))
        values[1, 2] = np.nan
        with pytest.raises(ValueError, match="finite"):
            MultivariateTimeSeries(values)

    def test_rejects_inf(self):
        values = np.zeros((2, 3))
        values[0, 0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            MultivariateTimeSeries(values)

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValueError, match="names"):
            MultivariateTimeSeries(np.zeros((2, 3)), ("only-one",))

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            MultivariateTimeSeries(np.zeros((2, 3)), ("x", "x"))

    def test_values_are_immutable(self):
        series = make_series()
        with pytest.raises(ValueError):
            series.values[0, 0] = 99.0

    def test_copies_input(self):
        values = np.zeros((2, 3))
        series = MultivariateTimeSeries(values)
        values[0, 0] = 42.0
        assert series.values[0, 0] == 0.0


class TestAccess:
    def test_sensor_row(self):
        series = make_series(2, 4)
        np.testing.assert_array_equal(series.sensor(1), [4, 5, 6, 7])

    def test_sensor_index_by_name(self):
        series = MultivariateTimeSeries(np.zeros((2, 3)), ("temp", "vib"))
        assert series.sensor_index("vib") == 1

    def test_sensor_index_unknown(self):
        with pytest.raises(KeyError, match="unknown sensor"):
            make_series().sensor_index("nope")

    def test_iter_sensors(self):
        series = make_series(2, 3)
        pairs = list(series.iter_sensors())
        assert [name for name, _ in pairs] == ["sensor_0", "sensor_1"]
        np.testing.assert_array_equal(pairs[1][1], [3, 4, 5])


class TestSlicing:
    def test_slice_time(self):
        series = make_series(2, 10)
        part = series.slice_time(2, 5)
        assert part.length == 3
        np.testing.assert_array_equal(part.values, series.values[:, 2:5])

    def test_slice_time_keeps_names(self):
        series = MultivariateTimeSeries(np.zeros((2, 6)), ("a", "b"))
        assert series.slice_time(0, 3).sensor_names == ("a", "b")

    @pytest.mark.parametrize("start,stop", [(-1, 3), (3, 3), (5, 2), (0, 99)])
    def test_slice_time_invalid(self, start, stop):
        with pytest.raises(ValueError):
            make_series(2, 10).slice_time(start, stop)

    def test_select_sensors(self):
        series = make_series(4, 5)
        subset = series.select_sensors([3, 1])
        assert subset.n_sensors == 2
        np.testing.assert_array_equal(subset.values[0], series.values[3])
        assert subset.sensor_names == ("sensor_3", "sensor_1")

    def test_select_sensors_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            make_series().select_sensors([])


class TestConcat:
    def test_concat_lengths(self):
        a = make_series(2, 4)
        b = make_series(2, 6)
        combined = a.concat(b)
        assert combined.length == 10
        np.testing.assert_array_equal(combined.values[:, :4], a.values)

    def test_concat_mismatched_sensors(self):
        a = MultivariateTimeSeries(np.zeros((2, 3)), ("a", "b"))
        b = MultivariateTimeSeries(np.zeros((2, 3)), ("a", "c"))
        with pytest.raises(ValueError, match="different sensors"):
            a.concat(b)


class TestFromRows:
    def test_from_rows(self):
        series = MultivariateTimeSeries.from_rows([[1, 2], [3, 4]], ["x", "y"])
        assert series.n_sensors == 2
        assert series.sensor_names == ("x", "y")
