"""End-to-end integration tests across modules."""

import numpy as np
import pytest

from repro import detect_anomalies
from repro.baselines import CADDetector, make_detector
from repro.bench import probe_rc_level, tuned_cad_config
from repro.core import CADConfig
from repro.datasets import build_dataset, get_spec, load_dataset
from repro.evaluation import (
    ahead_miss,
    best_f1,
    best_predictions,
    f1_sensor,
    vus,
)


@pytest.fixture(scope="module")
def smd():
    return load_dataset("smd-sim-05")


class TestDetectAnomaliesConvenience:
    def test_end_to_end_with_suggestion(self, smd):
        result = detect_anomalies(smd.test, history=smd.history)
        assert result.length == smd.test.length
        scores = result.point_scores()
        assert scores.shape == (smd.test.length,)

    def test_explicit_config(self, smd):
        config = CADConfig.suggest(
            smd.test.length, smd.n_sensors, theta=0.7 * probe_rc_level(smd)
        )
        result = detect_anomalies(smd.test, history=smd.history, config=config)
        assert best_f1(result.point_scores(), smd.labels, "pa") > 0.5


class TestFullPipeline:
    def test_cad_beats_chance_on_simulated_data(self, smd):
        detector = CADDetector(tuned_cad_config(smd))
        detector.fit(smd.history)
        scores = detector.score(smd.test)
        pa = best_f1(scores, smd.labels, "pa")
        assert pa > 0.6, f"CAD F1_PA {pa:.3f} too low on {smd.name}"

    def test_sensor_localisation_pipeline(self, smd):
        detector = CADDetector(tuned_cad_config(smd))
        detector.fit(smd.history)
        detector.score(smd.test)
        score = f1_sensor(detector.predicted_events(), smd.events, smd.n_sensors)
        assert score.n_events == len(smd.events)
        # Absolute localisation quality varies per subset (the paper's
        # Table IV claim is relative: CAD beats ECOD/RCoders); here we only
        # require the pipeline to produce a usable, non-degenerate score.
        assert 0.0 <= score.f1 <= 1.0
        assert len(score.per_event) == len(smd.events)

    def test_relative_evaluation_pipeline(self, smd):
        cad = CADDetector(tuned_cad_config(smd))
        cad.fit(smd.history)
        cad_pred = best_predictions(cad.score(smd.test), smd.labels, "dpa")
        ecod = make_detector("ECOD")
        ecod.fit(smd.history)
        ecod_pred = best_predictions(ecod.score(smd.test), smd.labels, "dpa")
        relative = ahead_miss(cad_pred, ecod_pred, smd.labels)
        assert relative.n_anomalies == len(smd.events)

    def test_vus_pipeline(self, smd):
        detector = make_detector("ECOD")
        detector.fit(smd.history)
        scores = detector.score(smd.test)
        result = vus(scores, smd.labels, mode="dpa")
        assert 0.0 <= result.vus_pr <= 1.0
        assert 0.0 <= result.vus_roc <= 1.0


class TestDeterminismAcrossRuns:
    def test_cad_bit_identical(self, smd):
        runs = []
        for _ in range(2):
            detector = CADDetector(
                CADConfig.suggest(smd.test.length, smd.n_sensors, theta=0.15)
            )
            detector.fit(smd.history)
            runs.append(detector.score(smd.test))
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_dataset_rebuild_identical(self):
        a = build_dataset(get_spec("smd-sim-04"))
        b = build_dataset(get_spec("smd-sim-04"))
        np.testing.assert_array_equal(a.test.values, b.test.values)
        assert a.events == b.events
