"""Tests for Time-Series Graph construction (paper Section III-B)."""

import numpy as np
import pytest

from repro.core import build_tsg, tsg_sequence
from repro.timeseries import MultivariateTimeSeries, WindowSpec, iter_windows


def correlated_window(seed=0, n=6, w=60):
    """Two 3-sensor groups driven by independent signals."""
    rng = np.random.default_rng(seed)
    t = np.arange(w)
    a = np.sin(2 * np.pi * t / 11)
    b = rng.standard_normal(w).cumsum()
    rows = []
    for i in range(n):
        driver = a if i < n // 2 else b
        rows.append(driver * rng.uniform(0.9, 1.1) + 0.01 * rng.standard_normal(w))
    return np.vstack(rows)


class TestBuildTsg:
    def test_vertices_match_sensors(self):
        tsg = build_tsg(correlated_window(), k=2, tau=0.5)
        assert tsg.n_vertices == 6

    def test_groups_internally_connected(self):
        tsg = build_tsg(correlated_window(), k=2, tau=0.5)
        for u, v, w in tsg.edges():
            assert abs(w) >= 0.5
        # Every vertex keeps at least one strong intra-group edge.
        for v in range(6):
            assert tsg.degree(v) >= 1

    def test_tau_prunes(self):
        window = correlated_window()
        loose = build_tsg(window, k=5, tau=0.0)
        strict = build_tsg(window, k=5, tau=0.9)
        assert strict.n_edges <= loose.n_edges

    def test_weights_are_signed_correlations(self):
        window = correlated_window()
        window[1] = -window[0]  # perfect anti-correlation
        tsg = build_tsg(window, k=2, tau=0.5)
        assert tsg.weight(0, 1) == pytest.approx(-1.0, abs=1e-9)

    def test_k_must_be_valid(self):
        with pytest.raises(ValueError):
            build_tsg(correlated_window(), k=6, tau=0.5)


class TestTsgSequence:
    def test_one_graph_per_window(self):
        values = np.vstack([correlated_window(seed=i).ravel()[:200] for i in range(4)])
        series = MultivariateTimeSeries(values)
        spec = WindowSpec(50, 10)
        graphs = list(tsg_sequence(iter_windows(series, spec), k=2, tau=0.1))
        assert len(graphs) == spec.n_rounds(200)
        assert all(g.n_vertices == 4 for g in graphs)
