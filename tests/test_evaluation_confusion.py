"""Tests for confusion counts and F1."""

import numpy as np
import pytest

from repro.evaluation import Confusion, confusion, f1_score, set_confusion


class TestConfusion:
    def test_counts(self):
        predictions = np.array([1, 1, 0, 0, 1])
        labels = np.array([1, 0, 1, 0, 1])
        c = confusion(predictions, labels)
        assert (c.tp, c.fp, c.fn, c.tn) == (2, 1, 1, 1)

    def test_metrics(self):
        c = Confusion(tp=2, fp=1, fn=1, tn=1)
        assert c.precision == pytest.approx(2 / 3)
        assert c.recall == pytest.approx(2 / 3)
        assert c.f1 == pytest.approx(2 / 3)
        assert c.accuracy == pytest.approx(3 / 5)

    def test_degenerate_no_predictions(self):
        c = Confusion(tp=0, fp=0, fn=3, tn=2)
        assert c.precision == 0.0
        assert c.f1 == 0.0

    def test_degenerate_no_positives(self):
        c = Confusion(tp=0, fp=2, fn=0, tn=3)
        assert c.recall == 0.0
        assert c.f1 == 0.0

    def test_perfect(self):
        predictions = np.array([0, 1, 1, 0])
        assert f1_score(predictions, predictions) == 1.0

    def test_nonbinary_treated_as_truthy(self):
        predictions = np.array([0, 2, 5])
        labels = np.array([0, 1, 1])
        assert f1_score(predictions, labels) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion(np.zeros(3), np.zeros(4))


class TestSetConfusion:
    def test_counts(self):
        c = set_confusion({1, 2, 3}, {2, 3, 4}, universe_size=10)
        assert (c.tp, c.fp, c.fn, c.tn) == (2, 1, 1, 6)

    def test_f1(self):
        c = set_confusion({1}, {1}, universe_size=5)
        assert c.f1 == 1.0

    def test_universe_too_small(self):
        with pytest.raises(ValueError):
            set_confusion({1, 2}, {3, 4}, universe_size=3)
